//! AST-to-bytecode compiler.
//!
//! Scoping model: the script body's variables are the globals; function
//! bodies have private locals unless a name is a superglobal or declared
//! with `global`. Every expression compiles to code leaving exactly one
//! value on the stack; statement expressions pop it.

use crate::ast::{AssignOp, BinOp, Expr, LValue, Script, Stmt};
use crate::builtins;
use crate::bytecode::{
    rinsn, superglobal_slot, CompiledFunction, CompiledScript, Op, ROp, SUPERGLOBALS,
};
use crate::value::{ArrayKey, PhpArray, Value};
use std::collections::HashMap;
use std::fmt;

/// Compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err(message: impl Into<String>) -> CompileError {
    CompileError {
        message: message.into(),
    }
}

/// Compiles a parsed script.
///
/// # Examples
///
/// ```
/// use orochi_php::{compile, parse_script};
///
/// let script = parse_script("<?php echo 1 + 2;").unwrap();
/// let compiled = compile("/demo.php", &script).unwrap();
/// assert!(compiled.code_size() > 0);
/// ```
pub fn compile(path: &str, script: &Script) -> Result<CompiledScript, CompileError> {
    let mut shared = Shared {
        consts: Vec::new(),
        globals: SUPERGLOBALS.iter().map(|s| s.to_string()).collect(),
        functions: HashMap::new(),
    };
    for (i, f) in script.functions.iter().enumerate() {
        if shared.functions.insert(f.name.clone(), i as u16).is_some() {
            return Err(err(format!("duplicate function {}", f.name)));
        }
    }
    // Compile main first so script-level variables claim global slots in
    // declaration order.
    let main = compile_function("{main}", &[], &script.body, &mut shared, true)?;
    let mut functions = Vec::new();
    for f in &script.functions {
        functions.push(compile_function(
            &f.name,
            &f.params,
            &f.body,
            &mut shared,
            false,
        )?);
    }
    Ok(CompiledScript {
        path: path.to_string(),
        consts: shared.consts,
        main,
        functions,
        global_names: shared.globals,
    })
}

struct Shared {
    consts: Vec<Value>,
    globals: Vec<String>,
    functions: HashMap<String, u16>,
}

impl Shared {
    fn const_idx(&mut self, v: Value) -> u16 {
        // Dedup scalar constants to keep pools small.
        for (i, existing) in self.consts.iter().enumerate() {
            if existing.identical(&v) && !matches!(v, Value::Array(_)) {
                return i as u16;
            }
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn global_slot(&mut self, name: &str) -> u16 {
        if let Some(pos) = self.globals.iter().position(|g| g == name) {
            return pos as u16;
        }
        self.globals.push(name.to_string());
        (self.globals.len() - 1) as u16
    }
}

/// Where a variable lives.
#[derive(Debug, Clone, Copy)]
enum Place {
    Local(u16),
    Global(u16),
}

struct FnCompiler<'a> {
    shared: &'a mut Shared,
    /// True when compiling the script body (all vars are globals).
    is_main: bool,
    locals: HashMap<String, u16>,
    num_locals: u16,
    global_decls: HashMap<String, u16>,
    code: Vec<Op>,
    /// Stack of loop contexts: (continue jump indices, break jump
    /// indices, continue target when already known).
    loops: Vec<LoopCtx>,
    temp_counter: u32,
}

struct LoopCtx {
    continue_jumps: Vec<usize>,
    break_jumps: Vec<usize>,
    continue_target: Option<u32>,
}

fn compile_function(
    name: &str,
    params: &[(String, Option<Expr>)],
    body: &[Stmt],
    shared: &mut Shared,
    is_main: bool,
) -> Result<CompiledFunction, CompileError> {
    let mut c = FnCompiler {
        shared,
        is_main,
        locals: HashMap::new(),
        num_locals: 0,
        global_decls: HashMap::new(),
        code: Vec::new(),
        loops: Vec::new(),
        temp_counter: 0,
    };
    let mut defaults = Vec::new();
    for (pname, default) in params {
        let slot = c.local_slot(pname);
        debug_assert_eq!(slot as usize, defaults.len(), "params claim slots first");
        match default {
            None => defaults.push(None),
            Some(expr) => {
                let v = literal_value(expr)
                    .ok_or_else(|| err(format!("non-literal default for ${pname}")))?;
                defaults.push(Some(c.shared.const_idx(v)));
            }
        }
    }
    for stmt in body {
        c.stmt(stmt)?;
    }
    c.code.push(Op::ReturnNull);
    let stack_code = c.code;
    let num_locals = c.num_locals;
    // Second pass: the register encoding. Runs after the stack pass so
    // the shared constant pool and global-slot table are already
    // populated; both encodings resolve names to the same dense indices.
    let (reg_code, register_count) = RegCompiler::compile(shared, is_main, params, body)?;
    Ok(CompiledFunction {
        name: name.to_string(),
        num_params: params.len() as u16,
        defaults,
        num_locals,
        code: stack_code,
        reg_code,
        register_count,
    })
}

/// Folds a literal expression (used for parameter defaults).
fn literal_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Int(i) => Some(Value::Int(*i)),
        Expr::Float(f) => Some(Value::Float(*f)),
        Expr::Str(s) => Some(Value::str(s.clone())),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        Expr::Null => Some(Value::Null),
        Expr::Neg(inner) => match literal_value(inner)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        },
        Expr::ArrayLit(pairs) => {
            let mut a = PhpArray::new();
            for (k, v) in pairs {
                let val = literal_value(v)?;
                match k {
                    None => {
                        a.push(val);
                    }
                    Some(kexpr) => {
                        let key = ArrayKey::from_value(&literal_value(kexpr)?);
                        a.set(key, val);
                    }
                }
            }
            Some(Value::array(a))
        }
        _ => None,
    }
}

impl FnCompiler<'_> {
    fn local_slot(&mut self, name: &str) -> u16 {
        if let Some(&slot) = self.locals.get(name) {
            return slot;
        }
        let slot = self.num_locals;
        self.locals.insert(name.to_string(), slot);
        self.num_locals += 1;
        slot
    }

    fn temp_slot(&mut self) -> u16 {
        self.temp_counter += 1;
        self.local_slot(&format!("\u{0}tmp{}", self.temp_counter))
    }

    fn place(&mut self, name: &str) -> Place {
        if let Some(slot) = superglobal_slot(name) {
            return Place::Global(slot);
        }
        if self.is_main {
            return Place::Global(self.shared.global_slot(name));
        }
        if let Some(&slot) = self.global_decls.get(name) {
            return Place::Global(slot);
        }
        Place::Local(self.local_slot(name))
    }

    fn emit_load(&mut self, place: Place) {
        self.code.push(match place {
            Place::Local(s) => Op::LoadLocal(s),
            Place::Global(s) => Op::LoadGlobal(s),
        });
    }

    fn emit_store(&mut self, place: Place) {
        self.code.push(match place {
            Place::Local(s) => Op::StoreLocal(s),
            Place::Global(s) => Op::StoreGlobal(s),
        });
    }

    fn const_op(&mut self, v: Value) {
        let idx = self.shared.const_idx(v);
        self.code.push(Op::Const(idx));
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a placeholder jump; returns its index for patching.
    fn emit_jump(&mut self, make: fn(u32) -> Op) -> usize {
        self.code.push(make(u32::MAX));
        self.code.len() - 1
    }

    fn patch(&mut self, idx: usize, target: u32) {
        let op = match self.code[idx] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfTrue(_) => Op::JumpIfTrue(target),
            Op::IterNext(_) => Op::IterNext(target),
            Op::IterNextKV(_) => Op::IterNextKV(target),
            other => unreachable!("patching non-jump {other:?}"),
        };
        self.code[idx] = op;
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Echo(exprs) => {
                for e in exprs {
                    self.expr(e)?;
                    self.code.push(Op::Echo);
                }
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Op::Pop);
            }
            Stmt::If { arms, otherwise } => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.expr(cond)?;
                    let skip = self.emit_jump(Op::JumpIfFalse);
                    for s in body {
                        self.stmt(s)?;
                    }
                    end_jumps.push(self.emit_jump(Op::Jump));
                    let here = self.here();
                    self.patch(skip, here);
                }
                for s in otherwise {
                    self.stmt(s)?;
                }
                let here = self.here();
                for j in end_jumps {
                    self.patch(j, here);
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                self.expr(cond)?;
                let exit = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: Some(start),
                });
                for s in body {
                    self.stmt(s)?;
                }
                self.code.push(Op::Jump(start));
                let end = self.here();
                self.patch(exit, end);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, start);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.expr(e)?;
                    self.code.push(Op::Pop);
                }
                let start = self.here();
                let exit = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        Some(self.emit_jump(Op::JumpIfFalse))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: None,
                });
                for s in body {
                    self.stmt(s)?;
                }
                let step_label = self.here();
                for e in step {
                    self.expr(e)?;
                    self.code.push(Op::Pop);
                }
                self.code.push(Op::Jump(start));
                let end = self.here();
                if let Some(exit) = exit {
                    self.patch(exit, end);
                }
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, step_label);
                }
            }
            Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            } => {
                self.expr(array)?;
                self.code.push(Op::IterInit);
                let start = self.here();
                let next_idx = match key_var {
                    Some(_) => self.emit_jump(Op::IterNextKV),
                    None => self.emit_jump(Op::IterNext),
                };
                // Stack after IterNextKV: [key, value]; store value
                // first, then key.
                let vplace = self.place(value_var);
                self.emit_store(vplace);
                if let Some(k) = key_var {
                    let kplace = self.place(k);
                    self.emit_store(kplace);
                }
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: Some(start),
                });
                for s in body {
                    self.stmt(s)?;
                }
                self.code.push(Op::Jump(start));
                let end = self.here();
                self.patch(next_idx, end);
                self.code.push(Op::IterPop);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    // Break jumps to `end`, where IterPop cleans up.
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, start);
                }
            }
            Stmt::Switch {
                subject,
                cases,
                default,
            } => {
                self.expr(subject)?;
                let tmp = self.temp_slot();
                self.code.push(Op::StoreLocal(tmp));
                // Dispatch: loose-compare against each case value.
                let mut case_jumps = Vec::new();
                for (value, _) in cases {
                    self.code.push(Op::LoadLocal(tmp));
                    self.expr(value)?;
                    self.code.push(Op::Eq);
                    case_jumps.push(self.emit_jump(Op::JumpIfTrue));
                }
                let default_jump = self.emit_jump(Op::Jump);
                // Bodies in source order with fallthrough; default sits
                // at its recorded position.
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: None,
                });
                let mut default_target = None;
                for (i, (_, body)) in cases.iter().enumerate() {
                    if let Some((pos, dbody)) = default {
                        if *pos == i {
                            default_target = Some(self.here());
                            for s in dbody {
                                self.stmt(s)?;
                            }
                        }
                    }
                    let here = self.here();
                    self.patch(case_jumps[i], here);
                    for s in body {
                        self.stmt(s)?;
                    }
                }
                if let Some((pos, dbody)) = default {
                    if *pos == cases.len() {
                        default_target = Some(self.here());
                        for s in dbody {
                            self.stmt(s)?;
                        }
                    }
                }
                let end = self.here();
                self.patch(default_jump, default_target.unwrap_or(end));
                let ctx = self.loops.pop().expect("switch context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                if !ctx.continue_jumps.is_empty() {
                    return Err(err("continue inside switch is not supported"));
                }
            }
            Stmt::Break => {
                let j = self.emit_jump(Op::Jump);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.break_jumps.push(j),
                    None => return Err(err("break outside loop")),
                }
            }
            Stmt::Continue => match self.loops.last_mut() {
                Some(ctx) => match ctx.continue_target {
                    Some(target) => {
                        self.code.push(Op::Jump(target));
                    }
                    None => {
                        let j = self.emit_jump(Op::Jump);
                        self.loops
                            .last_mut()
                            .expect("checked above")
                            .continue_jumps
                            .push(j);
                    }
                },
                None => return Err(err("continue outside loop")),
            },
            Stmt::Return(value) => match value {
                Some(e) => {
                    self.expr(e)?;
                    self.code.push(Op::Return);
                }
                None => self.code.push(Op::ReturnNull),
            },
            Stmt::Global(names) => {
                if self.is_main {
                    // `global` at script level is a no-op.
                    return Ok(());
                }
                for name in names {
                    let slot = self.shared.global_slot(name);
                    self.global_decls.insert(name.clone(), slot);
                }
            }
            Stmt::Unset(lv) => {
                let n = lv.path.len() as u8;
                for step in &lv.path {
                    match step {
                        Some(k) => self.expr(k)?,
                        None => return Err(err("cannot unset an append target")),
                    }
                }
                let place = self.place(&lv.var);
                self.code.push(match place {
                    Place::Local(s) => Op::UnsetPathLocal(s, n),
                    Place::Global(s) => Op::UnsetPathGlobal(s, n),
                });
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(i) => self.const_op(Value::Int(*i)),
            Expr::Float(f) => self.const_op(Value::Float(*f)),
            Expr::Str(s) => self.const_op(Value::str(s.clone())),
            Expr::Bool(b) => self.const_op(Value::Bool(*b)),
            Expr::Null => self.const_op(Value::Null),
            Expr::Var(name) => {
                let place = self.place(name);
                self.emit_load(place);
            }
            Expr::Index { base, index } => {
                self.expr(base)?;
                self.expr(index)?;
                self.code.push(Op::IndexGet);
            }
            Expr::ArrayLit(pairs) => {
                self.code.push(Op::NewArray);
                for (key, value) in pairs {
                    match key {
                        None => {
                            self.expr(value)?;
                            self.code.push(Op::AppendStack);
                        }
                        Some(k) => {
                            self.expr(k)?;
                            self.expr(value)?;
                            self.code.push(Op::InsertStack);
                        }
                    }
                }
            }
            Expr::Assign { target, op, value } => {
                self.compile_assign(target, *op, value)?;
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs)?;
                    let f1 = self.emit_jump(Op::JumpIfFalse);
                    self.expr(rhs)?;
                    let f2 = self.emit_jump(Op::JumpIfFalse);
                    self.const_op(Value::Bool(true));
                    let end = self.emit_jump(Op::Jump);
                    let fl = self.here();
                    self.patch(f1, fl);
                    self.patch(f2, fl);
                    self.const_op(Value::Bool(false));
                    let here = self.here();
                    self.patch(end, here);
                }
                BinOp::Or => {
                    self.expr(lhs)?;
                    let t1 = self.emit_jump(Op::JumpIfTrue);
                    self.expr(rhs)?;
                    let t2 = self.emit_jump(Op::JumpIfTrue);
                    self.const_op(Value::Bool(false));
                    let end = self.emit_jump(Op::Jump);
                    let tl = self.here();
                    self.patch(t1, tl);
                    self.patch(t2, tl);
                    self.const_op(Value::Bool(true));
                    let here = self.here();
                    self.patch(end, here);
                }
                _ => {
                    self.expr(lhs)?;
                    self.expr(rhs)?;
                    self.code.push(binop_code(*op));
                }
            },
            Expr::Not(inner) => {
                self.expr(inner)?;
                self.code.push(Op::Not);
            }
            Expr::Neg(inner) => {
                self.expr(inner)?;
                self.code.push(Op::Neg);
            }
            Expr::IncDec { target, inc, pre } => {
                self.compile_incdec(target, *inc, *pre)?;
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => match then {
                Some(then) => {
                    self.expr(cond)?;
                    let to_else = self.emit_jump(Op::JumpIfFalse);
                    self.expr(then)?;
                    let to_end = self.emit_jump(Op::Jump);
                    let el = self.here();
                    self.patch(to_else, el);
                    self.expr(otherwise)?;
                    let end = self.here();
                    self.patch(to_end, end);
                }
                None => {
                    // Elvis: cond ?: else — cond evaluated once.
                    self.expr(cond)?;
                    self.code.push(Op::Dup);
                    let keep = self.emit_jump(Op::JumpIfTrue);
                    self.code.push(Op::Pop);
                    self.expr(otherwise)?;
                    let end = self.here();
                    self.patch(keep, end);
                }
            },
            Expr::Call { name, args } => {
                if let Some(&fidx) = self.shared.functions.get(name) {
                    for a in args {
                        self.expr(a)?;
                    }
                    self.code.push(Op::Call(fidx, args.len() as u8));
                } else if let Some(bidx) = builtins::lookup(name) {
                    if builtins::is_byref(bidx) {
                        self.compile_byref_call(name, bidx, args)?;
                    } else {
                        for a in args {
                            self.expr(a)?;
                        }
                        self.code.push(Op::CallBuiltin(bidx, args.len() as u8));
                    }
                } else {
                    return Err(err(format!("call to undefined function {name}()")));
                }
            }
            Expr::Isset(lv) => {
                let n = lv.path.len() as u8;
                for step in &lv.path {
                    match step {
                        Some(k) => self.expr(k)?,
                        None => return Err(err("isset on append target")),
                    }
                }
                let place = self.place(&lv.var);
                self.code.push(match place {
                    Place::Local(s) => Op::IssetPathLocal(s, n),
                    Place::Global(s) => Op::IssetPathGlobal(s, n),
                });
            }
            Expr::Empty(inner) => {
                self.expr(inner)?;
                self.code.push(Op::Not);
            }
        }
        Ok(())
    }

    /// Compiles a by-reference builtin call (`sort($a)`,
    /// `array_push($a, $v)`): the target array travels as the first
    /// argument and the returned array is stored back into the variable.
    /// The builtin's PHP return value stays on the stack.
    fn compile_byref_call(
        &mut self,
        name: &str,
        bidx: u16,
        args: &[Expr],
    ) -> Result<(), CompileError> {
        let target = match args.first() {
            Some(Expr::Var(v)) => LValue {
                var: v.clone(),
                path: Vec::new(),
            },
            Some(Expr::Index { .. }) => {
                // Rebuild the lvalue from a nested index expression.
                fn unroll(e: &Expr, path: &mut Vec<Option<Expr>>) -> Option<String> {
                    match e {
                        Expr::Var(v) => Some(v.clone()),
                        Expr::Index { base, index } => {
                            let var = unroll(base, path)?;
                            path.push(Some((**index).clone()));
                            Some(var)
                        }
                        _ => None,
                    }
                }
                let mut path = Vec::new();
                let var = unroll(args.first().expect("checked above"), &mut path)
                    .ok_or_else(|| err(format!("{name}() requires a variable argument")))?;
                LValue { var, path }
            }
            _ => return Err(err(format!("{name}() requires a variable argument"))),
        };
        let place = self.place(&target.var);
        let n = target.path.len() as u8;
        // Stash path keys in temps (used for both the read and the
        // write-back).
        let temps: Vec<u16> = (0..target.path.len()).map(|_| self.temp_slot()).collect();
        for (k, t) in target.path.iter().zip(&temps) {
            self.expr(k.as_ref().expect("index paths have keys"))?;
            self.code.push(Op::StoreLocal(*t));
        }
        // Current array value as arg 0.
        self.emit_load(place);
        for t in &temps {
            self.code.push(Op::LoadLocal(*t));
            self.code.push(Op::IndexGet);
        }
        for a in &args[1..] {
            self.expr(a)?;
        }
        self.code.push(Op::CallBuiltin(bidx, args.len() as u8));
        // Stack: [new_target, ret] -> store new_target back, keep ret.
        self.code.push(Op::Swap);
        if target.path.is_empty() {
            self.emit_store(place);
        } else {
            for t in &temps {
                self.code.push(Op::LoadLocal(*t));
            }
            self.code.push(match place {
                Place::Local(s) => Op::SetPathLocal(s, n),
                Place::Global(s) => Op::SetPathGlobal(s, n),
            });
            self.code.push(Op::Pop);
        }
        Ok(())
    }

    /// Compiles assignment; leaves the assigned value on the stack.
    fn compile_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), CompileError> {
        let place = self.place(&target.var);
        if target.path.is_empty() {
            // Plain variable.
            match op {
                AssignOp::Set => self.expr(value)?,
                _ => {
                    self.emit_load(place);
                    self.expr(value)?;
                    self.code.push(compound_code(op));
                }
            }
            self.code.push(Op::Dup);
            self.emit_store(place);
            return Ok(());
        }
        // Path assignment. Appends cannot be compound.
        let has_append = target.path.iter().any(|p| p.is_none());
        if has_append {
            if op != AssignOp::Set {
                return Err(err("compound assignment to append target"));
            }
            // Only a trailing append is supported: $a[k1]..[kn][] = v.
            let (last, keys) = target.path.split_last().expect("non-empty path");
            if last.is_some() || keys.iter().any(|p| p.is_none()) {
                return Err(err("only a trailing [] append is supported"));
            }
            self.expr(value)?;
            for k in keys {
                self.expr(k.as_ref().expect("checked above"))?;
            }
            let n = target.path.len() as u8;
            self.code.push(match place {
                Place::Local(s) => Op::AppendPathLocal(s, n),
                Place::Global(s) => Op::AppendPathGlobal(s, n),
            });
            return Ok(());
        }
        let n = target.path.len() as u8;
        match op {
            AssignOp::Set => {
                self.expr(value)?;
                for k in &target.path {
                    self.expr(k.as_ref().expect("no appends in this branch"))?;
                }
                self.code.push(match place {
                    Place::Local(s) => Op::SetPathLocal(s, n),
                    Place::Global(s) => Op::SetPathGlobal(s, n),
                });
            }
            _ => {
                // Compound: stash keys in temps so they evaluate once.
                let temps: Vec<u16> = (0..target.path.len()).map(|_| self.temp_slot()).collect();
                for (k, t) in target.path.iter().zip(&temps) {
                    self.expr(k.as_ref().expect("no appends in this branch"))?;
                    self.code.push(Op::StoreLocal(*t));
                }
                // current = base[k1]..[kn]
                self.emit_load(place);
                for t in &temps {
                    self.code.push(Op::LoadLocal(*t));
                    self.code.push(Op::IndexGet);
                }
                self.expr(value)?;
                self.code.push(compound_code(op));
                for t in &temps {
                    self.code.push(Op::LoadLocal(*t));
                }
                self.code.push(match place {
                    Place::Local(s) => Op::SetPathLocal(s, n),
                    Place::Global(s) => Op::SetPathGlobal(s, n),
                });
            }
        }
        Ok(())
    }

    /// Compiles `++`/`--`; leaves the expression value (old for postfix,
    /// new for prefix).
    fn compile_incdec(
        &mut self,
        target: &LValue,
        inc: bool,
        pre: bool,
    ) -> Result<(), CompileError> {
        if target.path.is_empty() {
            let place = self.place(&target.var);
            let op = match (place, inc, pre) {
                (Place::Local(s), true, true) => Op::PreIncLocal(s),
                (Place::Local(s), true, false) => Op::PostIncLocal(s),
                (Place::Local(s), false, true) => Op::PreDecLocal(s),
                (Place::Local(s), false, false) => Op::PostDecLocal(s),
                (Place::Global(s), true, true) => Op::PreIncGlobal(s),
                (Place::Global(s), true, false) => Op::PostIncGlobal(s),
                (Place::Global(s), false, true) => Op::PreDecGlobal(s),
                (Place::Global(s), false, false) => Op::PostDecGlobal(s),
            };
            self.code.push(op);
            return Ok(());
        }
        // Path form: load-modify-store with key temps.
        let place = self.place(&target.var);
        let n = target.path.len() as u8;
        let temps: Vec<u16> = (0..target.path.len()).map(|_| self.temp_slot()).collect();
        for (k, t) in target.path.iter().zip(&temps) {
            match k {
                Some(k) => self.expr(k)?,
                None => return Err(err("increment of append target")),
            }
            self.code.push(Op::StoreLocal(*t));
        }
        self.emit_load(place);
        for t in &temps {
            self.code.push(Op::LoadLocal(*t));
            self.code.push(Op::IndexGet);
        }
        // Stack: [cur].
        if pre {
            self.const_op(Value::Int(1));
            self.code.push(if inc { Op::Add } else { Op::Sub });
            for t in &temps {
                self.code.push(Op::LoadLocal(*t));
            }
            self.code.push(match place {
                Place::Local(s) => Op::SetPathLocal(s, n),
                Place::Global(s) => Op::SetPathGlobal(s, n),
            });
        } else {
            self.code.push(Op::Dup);
            self.const_op(Value::Int(1));
            self.code.push(if inc { Op::Add } else { Op::Sub });
            for t in &temps {
                self.code.push(Op::LoadLocal(*t));
            }
            self.code.push(match place {
                Place::Local(s) => Op::SetPathLocal(s, n),
                Place::Global(s) => Op::SetPathGlobal(s, n),
            });
            self.code.push(Op::Pop);
        }
        Ok(())
    }
}

fn binop_code(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Mod => Op::Mod,
        BinOp::Concat => Op::Concat,
        BinOp::Eq => Op::Eq,
        BinOp::Ne => Op::Ne,
        BinOp::Identical => Op::Identical,
        BinOp::NotIdentical => Op::NotIdentical,
        BinOp::Lt => Op::Lt,
        BinOp::Le => Op::Le,
        BinOp::Gt => Op::Gt,
        BinOp::Ge => Op::Ge,
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops compile to jumps"),
    }
}

fn compound_code(op: AssignOp) -> Op {
    match op {
        AssignOp::Add => Op::Add,
        AssignOp::Sub => Op::Sub,
        AssignOp::Mul => Op::Mul,
        AssignOp::Div => Op::Div,
        AssignOp::Mod => Op::Mod,
        AssignOp::Concat => Op::Concat,
        AssignOp::Set => unreachable!("plain set handled separately"),
    }
}

fn reg_binop(op: BinOp) -> ROp {
    match op {
        BinOp::Add => ROp::Add,
        BinOp::Sub => ROp::Sub,
        BinOp::Mul => ROp::Mul,
        BinOp::Div => ROp::Div,
        BinOp::Mod => ROp::Mod,
        BinOp::Concat => ROp::Concat,
        BinOp::Eq => ROp::Eq,
        BinOp::Ne => ROp::Ne,
        BinOp::Identical => ROp::Identical,
        BinOp::NotIdentical => ROp::NotIdentical,
        BinOp::Lt => ROp::Lt,
        BinOp::Le => ROp::Le,
        BinOp::Gt => ROp::Gt,
        BinOp::Ge => ROp::Ge,
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops compile to jumps"),
    }
}

fn reg_compound(op: AssignOp) -> ROp {
    match op {
        AssignOp::Add => ROp::Add,
        AssignOp::Sub => ROp::Sub,
        AssignOp::Mul => ROp::Mul,
        AssignOp::Div => ROp::Div,
        AssignOp::Mod => ROp::Mod,
        AssignOp::Concat => ROp::Concat,
        AssignOp::Set => unreachable!("plain set handled separately"),
    }
}

/// True when evaluating `e` can write a variable (assignment,
/// increment/decrement, or any call — by-reference builtins mutate
/// locals and user functions mutate globals). Used to decide whether a
/// previously evaluated operand may be borrowed directly from a local's
/// register or must be copied to a temporary first.
fn may_write_vars(e: &Expr) -> bool {
    match e {
        Expr::Assign { .. } | Expr::IncDec { .. } | Expr::Call { .. } => true,
        Expr::Int(_)
        | Expr::Float(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Var(_) => false,
        Expr::Index { base, index } => may_write_vars(base) || may_write_vars(index),
        Expr::ArrayLit(pairs) => pairs
            .iter()
            .any(|(k, v)| k.as_ref().is_some_and(may_write_vars) || may_write_vars(v)),
        Expr::Binary { lhs, rhs, .. } => may_write_vars(lhs) || may_write_vars(rhs),
        Expr::Not(inner) | Expr::Neg(inner) | Expr::Empty(inner) => may_write_vars(inner),
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            may_write_vars(cond)
                || then.as_deref().is_some_and(may_write_vars)
                || may_write_vars(otherwise)
        }
        Expr::Isset(lv) => lv
            .path
            .iter()
            .any(|k| k.as_ref().is_some_and(may_write_vars)),
    }
}

/// Where a variable lives in the register encoding: locals *are*
/// registers `0..num_locals`, globals stay table slots.
#[derive(Debug, Clone, Copy)]
enum RPlace {
    Reg(u8),
    Global(u16),
}

struct RLoopCtx {
    continue_jumps: Vec<usize>,
    break_jumps: Vec<usize>,
    continue_target: Option<u16>,
}

/// The register-allocation pass. Walks the same AST as the stack pass
/// and emits the 32-bit register encoding.
///
/// Invariants that keep the two encodings replay-equivalent:
/// - every digest-mixed event (conditional jump, iterator advance) is
///   emitted in exactly the same evaluation order as the stack pass, so
///   per-request branch-event streams — and therefore control-flow
///   digests — are identical across engines;
/// - temporaries use stack discipline (`sp` high-watermark becomes
///   `register_count`); an operand is borrowed directly from a local's
///   register only when no later-evaluated sibling can write variables
///   (see [`may_write_vars`]).
struct RegCompiler<'a> {
    shared: &'a mut Shared,
    is_main: bool,
    locals: HashMap<String, u8>,
    num_locals: u16,
    global_decls: HashMap<String, u16>,
    code: Vec<u32>,
    loops: Vec<RLoopCtx>,
    /// Next free temp register; resets follow consumption.
    sp: u16,
    max_sp: u16,
}

impl<'a> RegCompiler<'a> {
    fn compile(
        shared: &'a mut Shared,
        is_main: bool,
        params: &[(String, Option<Expr>)],
        body: &[Stmt],
    ) -> Result<(Vec<u32>, u16), CompileError> {
        let mut c = RegCompiler {
            shared,
            is_main,
            locals: HashMap::new(),
            num_locals: 0,
            global_decls: HashMap::new(),
            code: Vec::new(),
            loops: Vec::new(),
            sp: 0,
            max_sp: 0,
        };
        // Pre-scan: fix the local -> register map before codegen so
        // temporaries can sit above all locals. Params claim registers
        // first, then body variables in first-use order (mirroring the
        // stack pass's `place()` decisions, including order-sensitive
        // `global` declarations).
        for (pname, _) in params {
            c.scan_var(pname);
        }
        c.scan_stmts(body)?;
        if c.num_locals > 256 {
            return Err(err("function needs more than 256 registers"));
        }
        c.global_decls.clear();
        c.sp = c.num_locals;
        c.max_sp = c.num_locals;
        for stmt in body {
            c.rstmt(stmt)?;
        }
        c.emit(rinsn::abc(ROp::ReturnNull, 0, 0, 0));
        if c.code.len() > u16::MAX as usize {
            return Err(err("function too large for register bytecode"));
        }
        Ok((c.code, c.max_sp))
    }

    // ---- pre-scan ----

    fn scan_var(&mut self, name: &str) {
        if superglobal_slot(name).is_some() || self.is_main || self.global_decls.contains_key(name)
        {
            return;
        }
        if !self.locals.contains_key(name) {
            let slot = self.num_locals;
            self.locals.insert(name.to_string(), slot.min(255) as u8);
            self.num_locals += 1;
        }
    }

    fn scan_stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            self.scan_stmt(s)?;
        }
        Ok(())
    }

    fn scan_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Echo(exprs) => {
                for e in exprs {
                    self.scan_expr(e);
                }
            }
            Stmt::Expr(e) => self.scan_expr(e),
            Stmt::If { arms, otherwise } => {
                for (cond, body) in arms {
                    self.scan_expr(cond);
                    self.scan_stmts(body)?;
                }
                self.scan_stmts(otherwise)?;
            }
            Stmt::While { cond, body } => {
                self.scan_expr(cond);
                self.scan_stmts(body)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.scan_expr(e);
                }
                if let Some(c) = cond {
                    self.scan_expr(c);
                }
                self.scan_stmts(body)?;
                for e in step {
                    self.scan_expr(e);
                }
            }
            Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            } => {
                self.scan_expr(array);
                self.scan_var(value_var);
                if let Some(k) = key_var {
                    self.scan_var(k);
                }
                self.scan_stmts(body)?;
            }
            Stmt::Switch {
                subject,
                cases,
                default,
            } => {
                self.scan_expr(subject);
                for (value, body) in cases {
                    self.scan_expr(value);
                    self.scan_stmts(body)?;
                }
                if let Some((_, dbody)) = default {
                    self.scan_stmts(dbody)?;
                }
            }
            Stmt::Break | Stmt::Continue => {}
            Stmt::Return(value) => {
                if let Some(e) = value {
                    self.scan_expr(e);
                }
            }
            Stmt::Global(names) => {
                if !self.is_main {
                    for name in names {
                        let slot = self.shared.global_slot(name);
                        self.global_decls.insert(name.clone(), slot);
                    }
                }
            }
            Stmt::Unset(lv) => self.scan_lvalue(lv),
        }
        Ok(())
    }

    fn scan_lvalue(&mut self, lv: &LValue) {
        self.scan_var(&lv.var);
        for k in lv.path.iter().flatten() {
            self.scan_expr(k);
        }
    }

    fn scan_expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null => {}
            Expr::Var(name) => self.scan_var(name),
            Expr::Index { base, index } => {
                self.scan_expr(base);
                self.scan_expr(index);
            }
            Expr::ArrayLit(pairs) => {
                for (k, v) in pairs {
                    if let Some(k) = k {
                        self.scan_expr(k);
                    }
                    self.scan_expr(v);
                }
            }
            Expr::Assign { target, value, .. } => {
                self.scan_lvalue(target);
                self.scan_expr(value);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs);
                self.scan_expr(rhs);
            }
            Expr::Not(inner) | Expr::Neg(inner) | Expr::Empty(inner) => self.scan_expr(inner),
            Expr::IncDec { target, .. } => self.scan_lvalue(target),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                self.scan_expr(cond);
                if let Some(t) = then {
                    self.scan_expr(t);
                }
                self.scan_expr(otherwise);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.scan_expr(a);
                }
            }
            Expr::Isset(lv) => self.scan_lvalue(lv),
        }
    }

    // ---- codegen plumbing ----

    fn emit(&mut self, insn: u32) {
        self.code.push(insn);
    }

    fn alloc(&mut self) -> Result<u8, CompileError> {
        if self.sp >= 256 {
            return Err(err("function needs more than 256 registers"));
        }
        let r = self.sp as u8;
        self.sp += 1;
        self.max_sp = self.max_sp.max(self.sp);
        Ok(r)
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    /// Emits a jump with a placeholder target; returns its index.
    fn emit_jump(&mut self, op: ROp, a: u8) -> usize {
        self.emit(rinsn::abx(op, a, u16::MAX));
        self.code.len() - 1
    }

    fn patch(&mut self, idx: usize, target: usize) -> Result<(), CompileError> {
        let bx =
            u16::try_from(target).map_err(|_| err("function too large for register bytecode"))?;
        self.code[idx] = rinsn::with_bx(self.code[idx], bx);
        Ok(())
    }

    fn jump_to(&mut self, target: u16) {
        self.emit(rinsn::abx(ROp::Jump, 0, target));
    }

    fn rplace(&mut self, name: &str) -> RPlace {
        if let Some(slot) = superglobal_slot(name) {
            return RPlace::Global(slot);
        }
        if self.is_main {
            return RPlace::Global(self.shared.global_slot(name));
        }
        if let Some(&slot) = self.global_decls.get(name) {
            return RPlace::Global(slot);
        }
        let slot = *self.locals.get(name).expect("pre-scan claimed every local");
        RPlace::Reg(slot)
    }

    /// Narrows a global slot to the 8-bit operand field.
    fn gslot(&self, slot: u16) -> Result<u8, CompileError> {
        u8::try_from(slot).map_err(|_| err("register bytecode supports at most 256 global slots"))
    }

    fn const_reg(&mut self, v: Value) -> Result<u8, CompileError> {
        let idx = self.shared.const_idx(v);
        let dst = self.alloc()?;
        self.emit(rinsn::abx(ROp::LoadConst, dst, idx));
        Ok(dst)
    }

    /// Evaluates `e` into register `dst` (a temp the caller allocated).
    fn rexpr_into(&mut self, e: &Expr, dst: u8) -> Result<(), CompileError> {
        let save = self.sp;
        let r = self.rexpr(e)?;
        if r != dst {
            self.emit(rinsn::abc(ROp::Move, dst, r, 0));
        }
        self.sp = save;
        Ok(())
    }

    /// Evaluates an earlier-evaluated operand, copying it out of a
    /// local's register when `later` could clobber it.
    fn operand(&mut self, e: &Expr, later_writes: bool) -> Result<u8, CompileError> {
        let r = self.rexpr(e)?;
        if later_writes && (r as u16) < self.num_locals {
            let t = self.alloc()?;
            self.emit(rinsn::abc(ROp::Move, t, r, 0));
            return Ok(t);
        }
        Ok(r)
    }

    // ---- statements ----

    fn rstmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Echo(exprs) => {
                for e in exprs {
                    let save = self.sp;
                    let r = self.rexpr(e)?;
                    self.emit(rinsn::abc(ROp::Echo, r, 0, 0));
                    self.sp = save;
                }
            }
            Stmt::Expr(e) => {
                let save = self.sp;
                self.rexpr(e)?;
                self.sp = save;
            }
            Stmt::If { arms, otherwise } => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    let save = self.sp;
                    let c = self.rexpr(cond)?;
                    let skip = self.emit_jump(ROp::JumpIfFalse, c);
                    self.sp = save;
                    for s in body {
                        self.rstmt(s)?;
                    }
                    end_jumps.push(self.emit_jump(ROp::Jump, 0));
                    let here = self.here();
                    self.patch(skip, here)?;
                }
                for s in otherwise {
                    self.rstmt(s)?;
                }
                let here = self.here();
                for j in end_jumps {
                    self.patch(j, here)?;
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                let save = self.sp;
                let c = self.rexpr(cond)?;
                let exit = self.emit_jump(ROp::JumpIfFalse, c);
                self.sp = save;
                self.loops.push(RLoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: Some(start as u16),
                });
                for s in body {
                    self.rstmt(s)?;
                }
                self.jump_to(start as u16);
                let end = self.here();
                self.patch(exit, end)?;
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end)?;
                }
                for j in ctx.continue_jumps {
                    self.patch(j, start)?;
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    let save = self.sp;
                    self.rexpr(e)?;
                    self.sp = save;
                }
                let start = self.here();
                let exit = match cond {
                    Some(c) => {
                        let save = self.sp;
                        let r = self.rexpr(c)?;
                        let j = self.emit_jump(ROp::JumpIfFalse, r);
                        self.sp = save;
                        Some(j)
                    }
                    None => None,
                };
                self.loops.push(RLoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: None,
                });
                for s in body {
                    self.rstmt(s)?;
                }
                let step_label = self.here();
                for e in step {
                    let save = self.sp;
                    self.rexpr(e)?;
                    self.sp = save;
                }
                self.jump_to(start as u16);
                let end = self.here();
                if let Some(exit) = exit {
                    self.patch(exit, end)?;
                }
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end)?;
                }
                for j in ctx.continue_jumps {
                    self.patch(j, step_label)?;
                }
            }
            Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            } => {
                let outer = self.sp;
                {
                    let save = self.sp;
                    let a = self.rexpr(array)?;
                    self.emit(rinsn::abc(ROp::IterInit, a, 0, 0));
                    self.sp = save;
                }
                // Iteration destination registers live across the whole
                // loop. A local value variable receives IterNext's
                // result directly; global targets (and all key/value
                // pairs) go through stable temps.
                enum IterDst {
                    Direct(u8),
                    ViaTemp {
                        tmp: u8,
                        place: RPlace,
                    },
                    Pair {
                        tmp: u8,
                        kplace: RPlace,
                        vplace: RPlace,
                    },
                }
                let dst = match key_var {
                    None => match self.rplace(value_var) {
                        RPlace::Reg(r) => IterDst::Direct(r),
                        place @ RPlace::Global(_) => IterDst::ViaTemp {
                            tmp: self.alloc()?,
                            place,
                        },
                    },
                    Some(k) => {
                        let tmp = self.alloc()?;
                        let tmp2 = self.alloc()?;
                        debug_assert_eq!(tmp2, tmp + 1, "KV pair temps are adjacent");
                        IterDst::Pair {
                            tmp,
                            kplace: self.rplace(k),
                            vplace: self.rplace(value_var),
                        }
                    }
                };
                let start = self.here();
                let next_idx = match &dst {
                    IterDst::Direct(r) => self.emit_jump(ROp::IterNext, *r),
                    IterDst::ViaTemp { tmp, .. } => self.emit_jump(ROp::IterNext, *tmp),
                    IterDst::Pair { tmp, .. } => self.emit_jump(ROp::IterNextKV, *tmp),
                };
                match &dst {
                    IterDst::Direct(_) => {}
                    IterDst::ViaTemp { tmp, place } => self.store_to(*place, *tmp)?,
                    IterDst::Pair {
                        tmp,
                        kplace,
                        vplace,
                    } => {
                        // Mirror the stack pass: store value, then key.
                        self.store_to(*vplace, *tmp + 1)?;
                        self.store_to(*kplace, *tmp)?;
                    }
                }
                self.loops.push(RLoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: Some(start as u16),
                });
                for s in body {
                    self.rstmt(s)?;
                }
                self.jump_to(start as u16);
                let end = self.here();
                self.patch(next_idx, end)?;
                self.emit(rinsn::abc(ROp::IterPop, 0, 0, 0));
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    // Break jumps to `end`, where IterPop cleans up.
                    self.patch(j, end)?;
                }
                for j in ctx.continue_jumps {
                    self.patch(j, start)?;
                }
                self.sp = outer;
            }
            Stmt::Switch {
                subject,
                cases,
                default,
            } => {
                let outer = self.sp;
                let subj = self.alloc()?;
                self.rexpr_into(subject, subj)?;
                let mut case_jumps = Vec::new();
                for (value, _) in cases {
                    let save = self.sp;
                    let cv = self.rexpr(value)?;
                    self.sp = save;
                    let d = self.alloc()?;
                    self.emit(rinsn::abc(ROp::Eq, d, subj, cv));
                    case_jumps.push(self.emit_jump(ROp::JumpIfTrue, d));
                    self.sp = save;
                }
                let default_jump = self.emit_jump(ROp::Jump, 0);
                self.loops.push(RLoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: None,
                });
                let mut default_target = None;
                for (i, (_, body)) in cases.iter().enumerate() {
                    if let Some((pos, dbody)) = default {
                        if *pos == i {
                            default_target = Some(self.here());
                            for s in dbody {
                                self.rstmt(s)?;
                            }
                        }
                    }
                    let here = self.here();
                    self.patch(case_jumps[i], here)?;
                    for s in body {
                        self.rstmt(s)?;
                    }
                }
                if let Some((pos, dbody)) = default {
                    if *pos == cases.len() {
                        default_target = Some(self.here());
                        for s in dbody {
                            self.rstmt(s)?;
                        }
                    }
                }
                let end = self.here();
                self.patch(default_jump, default_target.unwrap_or(end))?;
                let ctx = self.loops.pop().expect("switch context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end)?;
                }
                if !ctx.continue_jumps.is_empty() {
                    return Err(err("continue inside switch is not supported"));
                }
                self.sp = outer;
            }
            Stmt::Break => {
                let j = self.emit_jump(ROp::Jump, 0);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.break_jumps.push(j),
                    None => return Err(err("break outside loop")),
                }
            }
            Stmt::Continue => match self.loops.last_mut() {
                Some(ctx) => match ctx.continue_target {
                    Some(target) => self.jump_to(target),
                    None => {
                        let j = self.emit_jump(ROp::Jump, 0);
                        self.loops
                            .last_mut()
                            .expect("checked above")
                            .continue_jumps
                            .push(j);
                    }
                },
                None => return Err(err("continue outside loop")),
            },
            Stmt::Return(value) => match value {
                Some(e) => {
                    let save = self.sp;
                    let r = self.rexpr(e)?;
                    self.emit(rinsn::abc(ROp::Return, r, 0, 0));
                    self.sp = save;
                }
                None => self.emit(rinsn::abc(ROp::ReturnNull, 0, 0, 0)),
            },
            Stmt::Global(names) => {
                if !self.is_main {
                    for name in names {
                        let slot = self.shared.global_slot(name);
                        self.global_decls.insert(name.clone(), slot);
                    }
                }
            }
            Stmt::Unset(lv) => {
                let save = self.sp;
                let n = lv.path.len();
                let kbase = self.sp.min(255) as u8;
                for step in &lv.path {
                    match step {
                        Some(k) => {
                            let d = self.alloc()?;
                            self.rexpr_into(k, d)?;
                        }
                        None => return Err(err("cannot unset an append target")),
                    }
                }
                let (op, slot) = match self.rplace(&lv.var) {
                    RPlace::Reg(r) => (ROp::UnsetPathLocal, r),
                    RPlace::Global(g) => (ROp::UnsetPathGlobal, self.gslot(g)?),
                };
                self.emit(rinsn::abc(op, kbase, slot, n as u8));
                self.sp = save;
            }
        }
        Ok(())
    }

    fn store_to(&mut self, place: RPlace, src: u8) -> Result<(), CompileError> {
        match place {
            RPlace::Reg(r) => {
                if r != src {
                    self.emit(rinsn::abc(ROp::Move, r, src, 0));
                }
            }
            RPlace::Global(g) => {
                let g = self.gslot(g)?;
                self.emit(rinsn::abc(ROp::StoreGlobal, g, src, 0));
            }
        }
        Ok(())
    }

    // ---- expressions ----

    /// Compiles `e`, returning the register holding its value: either a
    /// temp at or above the caller's save point (still allocated), or a
    /// local's register — valid until the next potentially-writing
    /// construct, which operand ordering guards against.
    fn rexpr(&mut self, e: &Expr) -> Result<u8, CompileError> {
        match e {
            Expr::Int(i) => self.const_reg(Value::Int(*i)),
            Expr::Float(f) => self.const_reg(Value::Float(*f)),
            Expr::Str(s) => self.const_reg(Value::str(s.clone())),
            Expr::Bool(b) => self.const_reg(Value::Bool(*b)),
            Expr::Null => self.const_reg(Value::Null),
            Expr::Var(name) => match self.rplace(name) {
                RPlace::Reg(r) => Ok(r),
                RPlace::Global(g) => {
                    let g = self.gslot(g)?;
                    let dst = self.alloc()?;
                    self.emit(rinsn::abc(ROp::LoadGlobal, dst, g, 0));
                    Ok(dst)
                }
            },
            Expr::Index { base, index } => {
                let save = self.sp;
                let rb = self.operand(base, may_write_vars(index))?;
                let ri = self.rexpr(index)?;
                self.sp = save;
                let dst = self.alloc()?;
                self.emit(rinsn::abc(ROp::IndexGet, dst, rb, ri));
                Ok(dst)
            }
            Expr::ArrayLit(pairs) => {
                let arr = self.alloc()?;
                self.emit(rinsn::abc(ROp::NewArray, arr, 0, 0));
                for (key, value) in pairs {
                    let save = self.sp;
                    match key {
                        None => {
                            let v = self.rexpr(value)?;
                            self.emit(rinsn::abc(ROp::ArrayAppend, arr, v, 0));
                        }
                        Some(k) => {
                            let rk = self.operand(k, may_write_vars(value))?;
                            let rv = self.rexpr(value)?;
                            self.emit(rinsn::abc(ROp::ArrayInsert, arr, rk, rv));
                        }
                    }
                    self.sp = save;
                }
                Ok(arr)
            }
            Expr::Assign { target, op, value } => self.reg_assign(target, *op, value),
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    let d = self.alloc()?;
                    let save = self.sp;
                    let l = self.rexpr(lhs)?;
                    let f1 = self.emit_jump(ROp::JumpIfFalse, l);
                    self.sp = save;
                    let r = self.rexpr(rhs)?;
                    let f2 = self.emit_jump(ROp::JumpIfFalse, r);
                    self.sp = save;
                    let t_idx = self.shared.const_idx(Value::Bool(true));
                    self.emit(rinsn::abx(ROp::LoadConst, d, t_idx));
                    let end = self.emit_jump(ROp::Jump, 0);
                    let fl = self.here();
                    self.patch(f1, fl)?;
                    self.patch(f2, fl)?;
                    let f_idx = self.shared.const_idx(Value::Bool(false));
                    self.emit(rinsn::abx(ROp::LoadConst, d, f_idx));
                    let here = self.here();
                    self.patch(end, here)?;
                    Ok(d)
                }
                BinOp::Or => {
                    let d = self.alloc()?;
                    let save = self.sp;
                    let l = self.rexpr(lhs)?;
                    let t1 = self.emit_jump(ROp::JumpIfTrue, l);
                    self.sp = save;
                    let r = self.rexpr(rhs)?;
                    let t2 = self.emit_jump(ROp::JumpIfTrue, r);
                    self.sp = save;
                    let f_idx = self.shared.const_idx(Value::Bool(false));
                    self.emit(rinsn::abx(ROp::LoadConst, d, f_idx));
                    let end = self.emit_jump(ROp::Jump, 0);
                    let tl = self.here();
                    self.patch(t1, tl)?;
                    self.patch(t2, tl)?;
                    let t_idx = self.shared.const_idx(Value::Bool(true));
                    self.emit(rinsn::abx(ROp::LoadConst, d, t_idx));
                    let here = self.here();
                    self.patch(end, here)?;
                    Ok(d)
                }
                _ => {
                    let save = self.sp;
                    let rl = self.operand(lhs, may_write_vars(rhs))?;
                    let rr = self.rexpr(rhs)?;
                    self.sp = save;
                    let dst = self.alloc()?;
                    self.emit(rinsn::abc(reg_binop(*op), dst, rl, rr));
                    Ok(dst)
                }
            },
            Expr::Not(inner) => {
                let save = self.sp;
                let r = self.rexpr(inner)?;
                self.sp = save;
                let dst = self.alloc()?;
                self.emit(rinsn::abc(ROp::Not, dst, r, 0));
                Ok(dst)
            }
            Expr::Neg(inner) => {
                let save = self.sp;
                let r = self.rexpr(inner)?;
                self.sp = save;
                let dst = self.alloc()?;
                self.emit(rinsn::abc(ROp::Neg, dst, r, 0));
                Ok(dst)
            }
            Expr::IncDec { target, inc, pre } => self.reg_incdec(target, *inc, *pre),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => match then {
                Some(then) => {
                    let d = self.alloc()?;
                    let save = self.sp;
                    let c = self.rexpr(cond)?;
                    let to_else = self.emit_jump(ROp::JumpIfFalse, c);
                    self.sp = save;
                    self.rexpr_into(then, d)?;
                    let to_end = self.emit_jump(ROp::Jump, 0);
                    let el = self.here();
                    self.patch(to_else, el)?;
                    self.rexpr_into(otherwise, d)?;
                    let end = self.here();
                    self.patch(to_end, end)?;
                    Ok(d)
                }
                None => {
                    // Elvis: cond ?: else — cond evaluated once.
                    let d = self.alloc()?;
                    self.rexpr_into(cond, d)?;
                    let keep = self.emit_jump(ROp::JumpIfTrue, d);
                    self.rexpr_into(otherwise, d)?;
                    let end = self.here();
                    self.patch(keep, end)?;
                    Ok(d)
                }
            },
            Expr::Call { name, args } => {
                if let Some(&fidx) = self.shared.functions.get(name) {
                    let fidx = u8::try_from(fidx)
                        .map_err(|_| err("register bytecode supports at most 256 functions"))?;
                    let base = self.sp.min(255) as u8;
                    for a in args {
                        let d = self.alloc()?;
                        self.rexpr_into(a, d)?;
                    }
                    if args.is_empty() {
                        self.alloc()?;
                    }
                    self.emit(rinsn::abc(ROp::Call, fidx, base, args.len() as u8));
                    self.sp = base as u16 + 1;
                    Ok(base)
                } else if let Some(bidx) = builtins::lookup(name) {
                    if builtins::is_byref(bidx) {
                        self.reg_byref_call(name, bidx, args)
                    } else {
                        let bidx = u8::try_from(bidx)
                            .map_err(|_| err("register bytecode supports at most 256 builtins"))?;
                        let base = self.sp.min(255) as u8;
                        for a in args {
                            let d = self.alloc()?;
                            self.rexpr_into(a, d)?;
                        }
                        if args.is_empty() {
                            self.alloc()?;
                        }
                        self.emit(rinsn::abc(ROp::CallBuiltin, bidx, base, args.len() as u8));
                        self.sp = base as u16 + 1;
                        Ok(base)
                    }
                } else {
                    Err(err(format!("call to undefined function {name}()")))
                }
            }
            Expr::Isset(lv) => {
                let n = lv.path.len();
                let kbase = self.alloc()?;
                for (i, step) in lv.path.iter().enumerate() {
                    let d = if i == 0 { kbase } else { self.alloc()? };
                    match step {
                        Some(k) => self.rexpr_into(k, d)?,
                        None => return Err(err("isset on append target")),
                    }
                }
                let (op, slot) = match self.rplace(&lv.var) {
                    RPlace::Reg(r) => (ROp::IssetPathLocal, r),
                    RPlace::Global(g) => (ROp::IssetPathGlobal, self.gslot(g)?),
                };
                self.emit(rinsn::abc(op, kbase, slot, n as u8));
                self.sp = kbase as u16 + 1;
                Ok(kbase)
            }
            Expr::Empty(inner) => {
                let save = self.sp;
                let r = self.rexpr(inner)?;
                self.sp = save;
                let dst = self.alloc()?;
                self.emit(rinsn::abc(ROp::Not, dst, r, 0));
                Ok(dst)
            }
        }
    }

    fn path_set_op(&mut self, place: RPlace) -> Result<(ROp, u8), CompileError> {
        Ok(match place {
            RPlace::Reg(r) => (ROp::SetPathLocal, r),
            RPlace::Global(g) => (ROp::SetPathGlobal, self.gslot(g)?),
        })
    }

    fn reg_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
    ) -> Result<u8, CompileError> {
        let place = self.rplace(&target.var);
        if target.path.is_empty() {
            match (place, op) {
                (RPlace::Reg(var), AssignOp::Set) => {
                    let v = self.rexpr(value)?;
                    if v != var {
                        self.emit(rinsn::abc(ROp::Move, var, v, 0));
                    }
                    Ok(var)
                }
                (RPlace::Global(g), AssignOp::Set) => {
                    let g = self.gslot(g)?;
                    let v = self.rexpr(value)?;
                    self.emit(rinsn::abc(ROp::StoreGlobal, g, v, 0));
                    Ok(v)
                }
                (RPlace::Reg(var), _) => {
                    let save = self.sp;
                    let cur = if may_write_vars(value) {
                        let t = self.alloc()?;
                        self.emit(rinsn::abc(ROp::Move, t, var, 0));
                        t
                    } else {
                        var
                    };
                    let v = self.rexpr(value)?;
                    self.sp = save;
                    let dst = self.alloc()?;
                    self.emit(rinsn::abc(reg_compound(op), dst, cur, v));
                    self.emit(rinsn::abc(ROp::Move, var, dst, 0));
                    Ok(dst)
                }
                (RPlace::Global(g), _) => {
                    let g = self.gslot(g)?;
                    let save = self.sp;
                    let cur = self.alloc()?;
                    self.emit(rinsn::abc(ROp::LoadGlobal, cur, g, 0));
                    let v = self.rexpr(value)?;
                    self.sp = save;
                    let dst = self.alloc()?;
                    self.emit(rinsn::abc(reg_compound(op), dst, cur, v));
                    self.emit(rinsn::abc(ROp::StoreGlobal, g, dst, 0));
                    Ok(dst)
                }
            }
        } else {
            let has_append = target.path.iter().any(|p| p.is_none());
            if has_append {
                if op != AssignOp::Set {
                    return Err(err("compound assignment to append target"));
                }
                let (last, keys) = target.path.split_last().expect("non-empty path");
                if last.is_some() || keys.iter().any(|p| p.is_none()) {
                    return Err(err("only a trailing [] append is supported"));
                }
                let n = target.path.len() as u8;
                let pbase = self.alloc()?;
                self.rexpr_into(value, pbase)?;
                for k in keys {
                    let d = self.alloc()?;
                    self.rexpr_into(k.as_ref().expect("checked above"), d)?;
                }
                let (sop, slot) = match place {
                    RPlace::Reg(r) => (ROp::AppendPathLocal, r),
                    RPlace::Global(g) => (ROp::AppendPathGlobal, self.gslot(g)?),
                };
                self.emit(rinsn::abc(sop, pbase, slot, n));
                self.sp = pbase as u16 + 1;
                return Ok(pbase);
            }
            let n = target.path.len() as u8;
            match op {
                AssignOp::Set => {
                    // Value first, then keys — matching the stack pass's
                    // event order.
                    let pbase = self.alloc()?;
                    self.rexpr_into(value, pbase)?;
                    for k in &target.path {
                        let d = self.alloc()?;
                        self.rexpr_into(k.as_ref().expect("no appends in this branch"), d)?;
                    }
                    let (sop, slot) = self.path_set_op(place)?;
                    self.emit(rinsn::abc(sop, pbase, slot, n));
                    self.sp = pbase as u16 + 1;
                    Ok(pbase)
                }
                _ => {
                    // Compound: keys evaluate once, directly into the
                    // SetPath layout; the read chain reuses them.
                    let pbase = self.alloc()?;
                    for k in &target.path {
                        let d = self.alloc()?;
                        self.rexpr_into(k.as_ref().expect("no appends in this branch"), d)?;
                    }
                    let cur = self.alloc()?;
                    match place {
                        RPlace::Reg(r) => self.emit(rinsn::abc(ROp::Move, cur, r, 0)),
                        RPlace::Global(g) => {
                            let g = self.gslot(g)?;
                            self.emit(rinsn::abc(ROp::LoadGlobal, cur, g, 0));
                        }
                    }
                    for i in 0..n {
                        self.emit(rinsn::abc(ROp::IndexGet, cur, cur, pbase + 1 + i));
                    }
                    let v = self.rexpr(value)?;
                    self.emit(rinsn::abc(reg_compound(op), pbase, cur, v));
                    self.sp = pbase as u16 + 1 + n as u16;
                    let (sop, slot) = self.path_set_op(place)?;
                    self.emit(rinsn::abc(sop, pbase, slot, n));
                    self.sp = pbase as u16 + 1;
                    Ok(pbase)
                }
            }
        }
    }

    fn reg_incdec(&mut self, target: &LValue, inc: bool, pre: bool) -> Result<u8, CompileError> {
        let variant: u8 = match (inc, pre) {
            (true, true) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (false, false) => 3,
        };
        if target.path.is_empty() {
            let dst = self.alloc()?;
            match self.rplace(&target.var) {
                RPlace::Reg(r) => self.emit(rinsn::abc(ROp::IncDecLocal, dst, r, variant)),
                RPlace::Global(g) => {
                    let g = self.gslot(g)?;
                    self.emit(rinsn::abc(ROp::IncDecGlobal, dst, g, variant));
                }
            }
            return Ok(dst);
        }
        // Path form: read-modify-write through `Add/Sub 1`, preserving
        // the stack VM's quirk that `$a['k']--` on null yields -1.
        let place = self.rplace(&target.var);
        let n = target.path.len() as u8;
        let old = if pre { None } else { Some(self.alloc()?) };
        let pbase = self.alloc()?;
        for step in &target.path {
            let d = self.alloc()?;
            match step {
                Some(k) => self.rexpr_into(k, d)?,
                None => return Err(err("increment of append target")),
            }
        }
        let cur = self.alloc()?;
        match place {
            RPlace::Reg(r) => self.emit(rinsn::abc(ROp::Move, cur, r, 0)),
            RPlace::Global(g) => {
                let g = self.gslot(g)?;
                self.emit(rinsn::abc(ROp::LoadGlobal, cur, g, 0));
            }
        }
        for i in 0..n {
            self.emit(rinsn::abc(ROp::IndexGet, cur, cur, pbase + 1 + i));
        }
        if let Some(o) = old {
            self.emit(rinsn::abc(ROp::Move, o, cur, 0));
        }
        let one = self.const_reg(Value::Int(1))?;
        let aop = if inc { ROp::Add } else { ROp::Sub };
        self.emit(rinsn::abc(aop, pbase, cur, one));
        self.sp = pbase as u16 + 1 + n as u16;
        let (sop, slot) = self.path_set_op(place)?;
        self.emit(rinsn::abc(sop, pbase, slot, n));
        match old {
            None => {
                self.sp = pbase as u16 + 1;
                Ok(pbase)
            }
            Some(o) => {
                self.sp = o as u16 + 1;
                Ok(o)
            }
        }
    }

    /// By-reference builtin call: the target array travels in the first
    /// argument register; after the call the updated target is written
    /// back and the PHP return value (at `base+1`) is the result.
    fn reg_byref_call(&mut self, name: &str, bidx: u16, args: &[Expr]) -> Result<u8, CompileError> {
        let bidx = u8::try_from(bidx)
            .map_err(|_| err("register bytecode supports at most 256 builtins"))?;
        let target = match args.first() {
            Some(Expr::Var(v)) => LValue {
                var: v.clone(),
                path: Vec::new(),
            },
            Some(Expr::Index { .. }) => {
                fn unroll(e: &Expr, path: &mut Vec<Option<Expr>>) -> Option<String> {
                    match e {
                        Expr::Var(v) => Some(v.clone()),
                        Expr::Index { base, index } => {
                            let var = unroll(base, path)?;
                            path.push(Some((**index).clone()));
                            Some(var)
                        }
                        _ => None,
                    }
                }
                let mut path = Vec::new();
                let var = unroll(args.first().expect("checked above"), &mut path)
                    .ok_or_else(|| err(format!("{name}() requires a variable argument")))?;
                LValue { var, path }
            }
            _ => return Err(err(format!("{name}() requires a variable argument"))),
        };
        let place = self.rplace(&target.var);
        let argc = args.len() as u8;
        if target.path.is_empty() {
            let base = self.alloc()?;
            match place {
                RPlace::Reg(r) => self.emit(rinsn::abc(ROp::Move, base, r, 0)),
                RPlace::Global(g) => {
                    let g = self.gslot(g)?;
                    self.emit(rinsn::abc(ROp::LoadGlobal, base, g, 0));
                }
            }
            for a in &args[1..] {
                let d = self.alloc()?;
                self.rexpr_into(a, d)?;
            }
            if args.len() < 2 {
                self.alloc()?;
            }
            self.emit(rinsn::abc(ROp::CallBuiltin, bidx, base, argc));
            self.store_to(place, base)?;
            self.sp = base as u16 + 2;
            Ok(base + 1)
        } else {
            let n = target.path.len() as u8;
            // Layout: [pbase = write-back value, keys, base = call args].
            let pbase = self.alloc()?;
            for k in &target.path {
                let d = self.alloc()?;
                self.rexpr_into(k.as_ref().expect("index paths have keys"), d)?;
            }
            let base = self.alloc()?;
            match place {
                RPlace::Reg(r) => self.emit(rinsn::abc(ROp::Move, base, r, 0)),
                RPlace::Global(g) => {
                    let g = self.gslot(g)?;
                    self.emit(rinsn::abc(ROp::LoadGlobal, base, g, 0));
                }
            }
            for i in 0..n {
                self.emit(rinsn::abc(ROp::IndexGet, base, base, pbase + 1 + i));
            }
            for a in &args[1..] {
                let d = self.alloc()?;
                self.rexpr_into(a, d)?;
            }
            if args.len() < 2 {
                self.alloc()?;
            }
            self.emit(rinsn::abc(ROp::CallBuiltin, bidx, base, argc));
            self.emit(rinsn::abc(ROp::Move, pbase, base, 0));
            let (sop, slot) = self.path_set_op(place)?;
            self.emit(rinsn::abc(sop, pbase, slot, n));
            self.sp = base as u16 + 2;
            Ok(base + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn compile_src(src: &str) -> CompiledScript {
        compile("/t.php", &parse_script(src).unwrap()).unwrap()
    }

    #[test]
    fn superglobals_use_fixed_slots() {
        let c = compile_src("echo $_GET['a']; $x = 1;");
        assert_eq!(c.global_names[0], "_GET");
        assert_eq!(c.global_names[4], "_SERVER");
        // Script-level $x claims the next slot after superglobals.
        assert!(c.global_names.contains(&"x".to_string()));
    }

    #[test]
    fn function_locals_are_private() {
        let c = compile_src("function f($a) { $b = $a + 1; return $b; } $b = 5; echo f($b);");
        let f = &c.functions[0];
        assert_eq!(f.num_params, 1);
        assert!(f.num_locals >= 2); // $a and $b.
    }

    #[test]
    fn global_declaration_binds_to_global_slot() {
        let c = compile_src("$cfg = 1; function g() { global $cfg; return $cfg; }");
        let g = &c.functions[0];
        assert!(g.code.iter().any(|op| matches!(op, Op::LoadGlobal(_))));
    }

    #[test]
    fn jumps_are_patched() {
        let c = compile_src("if ($x) { echo 1; } else { echo 2; }");
        for op in &c.main.code {
            match op {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                    assert!(*t != u32::MAX, "unpatched jump");
                    assert!((*t as usize) <= c.main.code.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn foreach_compiles_iter_ops() {
        let c = compile_src("foreach ($a as $k => $v) { echo $v; }");
        assert!(c.main.code.iter().any(|op| matches!(op, Op::IterInit)));
        assert!(c.main.code.iter().any(|op| matches!(op, Op::IterNextKV(_))));
        assert!(c.main.code.iter().any(|op| matches!(op, Op::IterPop)));
    }

    #[test]
    fn undefined_function_is_compile_error() {
        let e = compile("/t.php", &parse_script("no_such_fn(1);").unwrap()).unwrap_err();
        assert!(e.message.contains("no_such_fn"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let src = "function f() {} function f() {}";
        assert!(compile("/t.php", &parse_script(src).unwrap()).is_err());
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(compile("/t.php", &parse_script("break;").unwrap()).is_err());
    }

    #[test]
    fn default_params_must_be_literal() {
        assert!(compile(
            "/t.php",
            &parse_script("function f($x = foo()) {}").unwrap()
        )
        .is_err());
        let ok = compile(
            "/t.php",
            &parse_script("function f($x = array(1,2), $y = -1) {}").unwrap(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn const_pool_dedups_scalars() {
        let c = compile_src("echo 'x'; echo 'x'; echo 'x';");
        let strings = c
            .consts
            .iter()
            .filter(|v| matches!(v, Value::Str(s) if s.as_str() == "x"))
            .count();
        assert_eq!(strings, 1);
    }
}
