//! AST-to-bytecode compiler.
//!
//! Scoping model: the script body's variables are the globals; function
//! bodies have private locals unless a name is a superglobal or declared
//! with `global`. Every expression compiles to code leaving exactly one
//! value on the stack; statement expressions pop it.

use crate::ast::{AssignOp, BinOp, Expr, LValue, Script, Stmt};
use crate::builtins;
use crate::bytecode::{superglobal_slot, CompiledFunction, CompiledScript, Op, SUPERGLOBALS};
use crate::value::{ArrayKey, PhpArray, Value};
use std::collections::HashMap;
use std::fmt;

/// Compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err(message: impl Into<String>) -> CompileError {
    CompileError {
        message: message.into(),
    }
}

/// Compiles a parsed script.
///
/// # Examples
///
/// ```
/// use orochi_php::{compile, parse_script};
///
/// let script = parse_script("<?php echo 1 + 2;").unwrap();
/// let compiled = compile("/demo.php", &script).unwrap();
/// assert!(compiled.code_size() > 0);
/// ```
pub fn compile(path: &str, script: &Script) -> Result<CompiledScript, CompileError> {
    let mut shared = Shared {
        consts: Vec::new(),
        globals: SUPERGLOBALS.iter().map(|s| s.to_string()).collect(),
        functions: HashMap::new(),
    };
    for (i, f) in script.functions.iter().enumerate() {
        if shared.functions.insert(f.name.clone(), i as u16).is_some() {
            return Err(err(format!("duplicate function {}", f.name)));
        }
    }
    // Compile main first so script-level variables claim global slots in
    // declaration order.
    let main = compile_function("{main}", &[], &script.body, &mut shared, true)?;
    let mut functions = Vec::new();
    for f in &script.functions {
        functions.push(compile_function(
            &f.name,
            &f.params,
            &f.body,
            &mut shared,
            false,
        )?);
    }
    Ok(CompiledScript {
        path: path.to_string(),
        consts: shared.consts,
        main,
        functions,
        global_names: shared.globals,
    })
}

struct Shared {
    consts: Vec<Value>,
    globals: Vec<String>,
    functions: HashMap<String, u16>,
}

impl Shared {
    fn const_idx(&mut self, v: Value) -> u16 {
        // Dedup scalar constants to keep pools small.
        for (i, existing) in self.consts.iter().enumerate() {
            if existing.identical(&v) && !matches!(v, Value::Array(_)) {
                return i as u16;
            }
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn global_slot(&mut self, name: &str) -> u16 {
        if let Some(pos) = self.globals.iter().position(|g| g == name) {
            return pos as u16;
        }
        self.globals.push(name.to_string());
        (self.globals.len() - 1) as u16
    }
}

/// Where a variable lives.
#[derive(Debug, Clone, Copy)]
enum Place {
    Local(u16),
    Global(u16),
}

struct FnCompiler<'a> {
    shared: &'a mut Shared,
    /// True when compiling the script body (all vars are globals).
    is_main: bool,
    locals: HashMap<String, u16>,
    num_locals: u16,
    global_decls: HashMap<String, u16>,
    code: Vec<Op>,
    /// Stack of loop contexts: (continue jump indices, break jump
    /// indices, continue target when already known).
    loops: Vec<LoopCtx>,
    temp_counter: u32,
}

struct LoopCtx {
    continue_jumps: Vec<usize>,
    break_jumps: Vec<usize>,
    continue_target: Option<u32>,
}

fn compile_function(
    name: &str,
    params: &[(String, Option<Expr>)],
    body: &[Stmt],
    shared: &mut Shared,
    is_main: bool,
) -> Result<CompiledFunction, CompileError> {
    let mut c = FnCompiler {
        shared,
        is_main,
        locals: HashMap::new(),
        num_locals: 0,
        global_decls: HashMap::new(),
        code: Vec::new(),
        loops: Vec::new(),
        temp_counter: 0,
    };
    let mut defaults = Vec::new();
    for (pname, default) in params {
        let slot = c.local_slot(pname);
        debug_assert_eq!(slot as usize, defaults.len(), "params claim slots first");
        match default {
            None => defaults.push(None),
            Some(expr) => {
                let v = literal_value(expr)
                    .ok_or_else(|| err(format!("non-literal default for ${pname}")))?;
                defaults.push(Some(c.shared.const_idx(v)));
            }
        }
    }
    for stmt in body {
        c.stmt(stmt)?;
    }
    c.code.push(Op::ReturnNull);
    Ok(CompiledFunction {
        name: name.to_string(),
        num_params: params.len() as u16,
        defaults,
        num_locals: c.num_locals,
        code: c.code,
    })
}

/// Folds a literal expression (used for parameter defaults).
fn literal_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Int(i) => Some(Value::Int(*i)),
        Expr::Float(f) => Some(Value::Float(*f)),
        Expr::Str(s) => Some(Value::str(s.clone())),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        Expr::Null => Some(Value::Null),
        Expr::Neg(inner) => match literal_value(inner)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        },
        Expr::ArrayLit(pairs) => {
            let mut a = PhpArray::new();
            for (k, v) in pairs {
                let val = literal_value(v)?;
                match k {
                    None => {
                        a.push(val);
                    }
                    Some(kexpr) => {
                        let key = ArrayKey::from_value(&literal_value(kexpr)?);
                        a.set(key, val);
                    }
                }
            }
            Some(Value::array(a))
        }
        _ => None,
    }
}

impl FnCompiler<'_> {
    fn local_slot(&mut self, name: &str) -> u16 {
        if let Some(&slot) = self.locals.get(name) {
            return slot;
        }
        let slot = self.num_locals;
        self.locals.insert(name.to_string(), slot);
        self.num_locals += 1;
        slot
    }

    fn temp_slot(&mut self) -> u16 {
        self.temp_counter += 1;
        self.local_slot(&format!("\u{0}tmp{}", self.temp_counter))
    }

    fn place(&mut self, name: &str) -> Place {
        if let Some(slot) = superglobal_slot(name) {
            return Place::Global(slot);
        }
        if self.is_main {
            return Place::Global(self.shared.global_slot(name));
        }
        if let Some(&slot) = self.global_decls.get(name) {
            return Place::Global(slot);
        }
        Place::Local(self.local_slot(name))
    }

    fn emit_load(&mut self, place: Place) {
        self.code.push(match place {
            Place::Local(s) => Op::LoadLocal(s),
            Place::Global(s) => Op::LoadGlobal(s),
        });
    }

    fn emit_store(&mut self, place: Place) {
        self.code.push(match place {
            Place::Local(s) => Op::StoreLocal(s),
            Place::Global(s) => Op::StoreGlobal(s),
        });
    }

    fn const_op(&mut self, v: Value) {
        let idx = self.shared.const_idx(v);
        self.code.push(Op::Const(idx));
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a placeholder jump; returns its index for patching.
    fn emit_jump(&mut self, make: fn(u32) -> Op) -> usize {
        self.code.push(make(u32::MAX));
        self.code.len() - 1
    }

    fn patch(&mut self, idx: usize, target: u32) {
        let op = match self.code[idx] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfTrue(_) => Op::JumpIfTrue(target),
            Op::IterNext(_) => Op::IterNext(target),
            Op::IterNextKV(_) => Op::IterNextKV(target),
            other => unreachable!("patching non-jump {other:?}"),
        };
        self.code[idx] = op;
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Echo(exprs) => {
                for e in exprs {
                    self.expr(e)?;
                    self.code.push(Op::Echo);
                }
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Op::Pop);
            }
            Stmt::If { arms, otherwise } => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.expr(cond)?;
                    let skip = self.emit_jump(Op::JumpIfFalse);
                    for s in body {
                        self.stmt(s)?;
                    }
                    end_jumps.push(self.emit_jump(Op::Jump));
                    let here = self.here();
                    self.patch(skip, here);
                }
                for s in otherwise {
                    self.stmt(s)?;
                }
                let here = self.here();
                for j in end_jumps {
                    self.patch(j, here);
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                self.expr(cond)?;
                let exit = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: Some(start),
                });
                for s in body {
                    self.stmt(s)?;
                }
                self.code.push(Op::Jump(start));
                let end = self.here();
                self.patch(exit, end);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, start);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.expr(e)?;
                    self.code.push(Op::Pop);
                }
                let start = self.here();
                let exit = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        Some(self.emit_jump(Op::JumpIfFalse))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: None,
                });
                for s in body {
                    self.stmt(s)?;
                }
                let step_label = self.here();
                for e in step {
                    self.expr(e)?;
                    self.code.push(Op::Pop);
                }
                self.code.push(Op::Jump(start));
                let end = self.here();
                if let Some(exit) = exit {
                    self.patch(exit, end);
                }
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, step_label);
                }
            }
            Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            } => {
                self.expr(array)?;
                self.code.push(Op::IterInit);
                let start = self.here();
                let next_idx = match key_var {
                    Some(_) => self.emit_jump(Op::IterNextKV),
                    None => self.emit_jump(Op::IterNext),
                };
                // Stack after IterNextKV: [key, value]; store value
                // first, then key.
                let vplace = self.place(value_var);
                self.emit_store(vplace);
                if let Some(k) = key_var {
                    let kplace = self.place(k);
                    self.emit_store(kplace);
                }
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: Some(start),
                });
                for s in body {
                    self.stmt(s)?;
                }
                self.code.push(Op::Jump(start));
                let end = self.here();
                self.patch(next_idx, end);
                self.code.push(Op::IterPop);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    // Break jumps to `end`, where IterPop cleans up.
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, start);
                }
            }
            Stmt::Switch {
                subject,
                cases,
                default,
            } => {
                self.expr(subject)?;
                let tmp = self.temp_slot();
                self.code.push(Op::StoreLocal(tmp));
                // Dispatch: loose-compare against each case value.
                let mut case_jumps = Vec::new();
                for (value, _) in cases {
                    self.code.push(Op::LoadLocal(tmp));
                    self.expr(value)?;
                    self.code.push(Op::Eq);
                    case_jumps.push(self.emit_jump(Op::JumpIfTrue));
                }
                let default_jump = self.emit_jump(Op::Jump);
                // Bodies in source order with fallthrough; default sits
                // at its recorded position.
                self.loops.push(LoopCtx {
                    continue_jumps: Vec::new(),
                    break_jumps: Vec::new(),
                    continue_target: None,
                });
                let mut default_target = None;
                for (i, (_, body)) in cases.iter().enumerate() {
                    if let Some((pos, dbody)) = default {
                        if *pos == i {
                            default_target = Some(self.here());
                            for s in dbody {
                                self.stmt(s)?;
                            }
                        }
                    }
                    let here = self.here();
                    self.patch(case_jumps[i], here);
                    for s in body {
                        self.stmt(s)?;
                    }
                }
                if let Some((pos, dbody)) = default {
                    if *pos == cases.len() {
                        default_target = Some(self.here());
                        for s in dbody {
                            self.stmt(s)?;
                        }
                    }
                }
                let end = self.here();
                self.patch(default_jump, default_target.unwrap_or(end));
                let ctx = self.loops.pop().expect("switch context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                if !ctx.continue_jumps.is_empty() {
                    return Err(err("continue inside switch is not supported"));
                }
            }
            Stmt::Break => {
                let j = self.emit_jump(Op::Jump);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.break_jumps.push(j),
                    None => return Err(err("break outside loop")),
                }
            }
            Stmt::Continue => match self.loops.last_mut() {
                Some(ctx) => match ctx.continue_target {
                    Some(target) => {
                        self.code.push(Op::Jump(target));
                    }
                    None => {
                        let j = self.emit_jump(Op::Jump);
                        self.loops
                            .last_mut()
                            .expect("checked above")
                            .continue_jumps
                            .push(j);
                    }
                },
                None => return Err(err("continue outside loop")),
            },
            Stmt::Return(value) => match value {
                Some(e) => {
                    self.expr(e)?;
                    self.code.push(Op::Return);
                }
                None => self.code.push(Op::ReturnNull),
            },
            Stmt::Global(names) => {
                if self.is_main {
                    // `global` at script level is a no-op.
                    return Ok(());
                }
                for name in names {
                    let slot = self.shared.global_slot(name);
                    self.global_decls.insert(name.clone(), slot);
                }
            }
            Stmt::Unset(lv) => {
                let n = lv.path.len() as u8;
                for step in &lv.path {
                    match step {
                        Some(k) => self.expr(k)?,
                        None => return Err(err("cannot unset an append target")),
                    }
                }
                let place = self.place(&lv.var);
                self.code.push(match place {
                    Place::Local(s) => Op::UnsetPathLocal(s, n),
                    Place::Global(s) => Op::UnsetPathGlobal(s, n),
                });
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(i) => self.const_op(Value::Int(*i)),
            Expr::Float(f) => self.const_op(Value::Float(*f)),
            Expr::Str(s) => self.const_op(Value::str(s.clone())),
            Expr::Bool(b) => self.const_op(Value::Bool(*b)),
            Expr::Null => self.const_op(Value::Null),
            Expr::Var(name) => {
                let place = self.place(name);
                self.emit_load(place);
            }
            Expr::Index { base, index } => {
                self.expr(base)?;
                self.expr(index)?;
                self.code.push(Op::IndexGet);
            }
            Expr::ArrayLit(pairs) => {
                self.code.push(Op::NewArray);
                for (key, value) in pairs {
                    match key {
                        None => {
                            self.expr(value)?;
                            self.code.push(Op::AppendStack);
                        }
                        Some(k) => {
                            self.expr(k)?;
                            self.expr(value)?;
                            self.code.push(Op::InsertStack);
                        }
                    }
                }
            }
            Expr::Assign { target, op, value } => {
                self.compile_assign(target, *op, value)?;
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs)?;
                    let f1 = self.emit_jump(Op::JumpIfFalse);
                    self.expr(rhs)?;
                    let f2 = self.emit_jump(Op::JumpIfFalse);
                    self.const_op(Value::Bool(true));
                    let end = self.emit_jump(Op::Jump);
                    let fl = self.here();
                    self.patch(f1, fl);
                    self.patch(f2, fl);
                    self.const_op(Value::Bool(false));
                    let here = self.here();
                    self.patch(end, here);
                }
                BinOp::Or => {
                    self.expr(lhs)?;
                    let t1 = self.emit_jump(Op::JumpIfTrue);
                    self.expr(rhs)?;
                    let t2 = self.emit_jump(Op::JumpIfTrue);
                    self.const_op(Value::Bool(false));
                    let end = self.emit_jump(Op::Jump);
                    let tl = self.here();
                    self.patch(t1, tl);
                    self.patch(t2, tl);
                    self.const_op(Value::Bool(true));
                    let here = self.here();
                    self.patch(end, here);
                }
                _ => {
                    self.expr(lhs)?;
                    self.expr(rhs)?;
                    self.code.push(binop_code(*op));
                }
            },
            Expr::Not(inner) => {
                self.expr(inner)?;
                self.code.push(Op::Not);
            }
            Expr::Neg(inner) => {
                self.expr(inner)?;
                self.code.push(Op::Neg);
            }
            Expr::IncDec { target, inc, pre } => {
                self.compile_incdec(target, *inc, *pre)?;
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => match then {
                Some(then) => {
                    self.expr(cond)?;
                    let to_else = self.emit_jump(Op::JumpIfFalse);
                    self.expr(then)?;
                    let to_end = self.emit_jump(Op::Jump);
                    let el = self.here();
                    self.patch(to_else, el);
                    self.expr(otherwise)?;
                    let end = self.here();
                    self.patch(to_end, end);
                }
                None => {
                    // Elvis: cond ?: else — cond evaluated once.
                    self.expr(cond)?;
                    self.code.push(Op::Dup);
                    let keep = self.emit_jump(Op::JumpIfTrue);
                    self.code.push(Op::Pop);
                    self.expr(otherwise)?;
                    let end = self.here();
                    self.patch(keep, end);
                }
            },
            Expr::Call { name, args } => {
                if let Some(&fidx) = self.shared.functions.get(name) {
                    for a in args {
                        self.expr(a)?;
                    }
                    self.code.push(Op::Call(fidx, args.len() as u8));
                } else if let Some(bidx) = builtins::lookup(name) {
                    if builtins::is_byref(bidx) {
                        self.compile_byref_call(name, bidx, args)?;
                    } else {
                        for a in args {
                            self.expr(a)?;
                        }
                        self.code.push(Op::CallBuiltin(bidx, args.len() as u8));
                    }
                } else {
                    return Err(err(format!("call to undefined function {name}()")));
                }
            }
            Expr::Isset(lv) => {
                let n = lv.path.len() as u8;
                for step in &lv.path {
                    match step {
                        Some(k) => self.expr(k)?,
                        None => return Err(err("isset on append target")),
                    }
                }
                let place = self.place(&lv.var);
                self.code.push(match place {
                    Place::Local(s) => Op::IssetPathLocal(s, n),
                    Place::Global(s) => Op::IssetPathGlobal(s, n),
                });
            }
            Expr::Empty(inner) => {
                self.expr(inner)?;
                self.code.push(Op::Not);
            }
        }
        Ok(())
    }

    /// Compiles a by-reference builtin call (`sort($a)`,
    /// `array_push($a, $v)`): the target array travels as the first
    /// argument and the returned array is stored back into the variable.
    /// The builtin's PHP return value stays on the stack.
    fn compile_byref_call(
        &mut self,
        name: &str,
        bidx: u16,
        args: &[Expr],
    ) -> Result<(), CompileError> {
        let target = match args.first() {
            Some(Expr::Var(v)) => LValue {
                var: v.clone(),
                path: Vec::new(),
            },
            Some(Expr::Index { .. }) => {
                // Rebuild the lvalue from a nested index expression.
                fn unroll(e: &Expr, path: &mut Vec<Option<Expr>>) -> Option<String> {
                    match e {
                        Expr::Var(v) => Some(v.clone()),
                        Expr::Index { base, index } => {
                            let var = unroll(base, path)?;
                            path.push(Some((**index).clone()));
                            Some(var)
                        }
                        _ => None,
                    }
                }
                let mut path = Vec::new();
                let var = unroll(args.first().expect("checked above"), &mut path)
                    .ok_or_else(|| err(format!("{name}() requires a variable argument")))?;
                LValue { var, path }
            }
            _ => return Err(err(format!("{name}() requires a variable argument"))),
        };
        let place = self.place(&target.var);
        let n = target.path.len() as u8;
        // Stash path keys in temps (used for both the read and the
        // write-back).
        let temps: Vec<u16> = (0..target.path.len()).map(|_| self.temp_slot()).collect();
        for (k, t) in target.path.iter().zip(&temps) {
            self.expr(k.as_ref().expect("index paths have keys"))?;
            self.code.push(Op::StoreLocal(*t));
        }
        // Current array value as arg 0.
        self.emit_load(place);
        for t in &temps {
            self.code.push(Op::LoadLocal(*t));
            self.code.push(Op::IndexGet);
        }
        for a in &args[1..] {
            self.expr(a)?;
        }
        self.code.push(Op::CallBuiltin(bidx, args.len() as u8));
        // Stack: [new_target, ret] -> store new_target back, keep ret.
        self.code.push(Op::Swap);
        if target.path.is_empty() {
            self.emit_store(place);
        } else {
            for t in &temps {
                self.code.push(Op::LoadLocal(*t));
            }
            self.code.push(match place {
                Place::Local(s) => Op::SetPathLocal(s, n),
                Place::Global(s) => Op::SetPathGlobal(s, n),
            });
            self.code.push(Op::Pop);
        }
        Ok(())
    }

    /// Compiles assignment; leaves the assigned value on the stack.
    fn compile_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), CompileError> {
        let place = self.place(&target.var);
        if target.path.is_empty() {
            // Plain variable.
            match op {
                AssignOp::Set => self.expr(value)?,
                _ => {
                    self.emit_load(place);
                    self.expr(value)?;
                    self.code.push(compound_code(op));
                }
            }
            self.code.push(Op::Dup);
            self.emit_store(place);
            return Ok(());
        }
        // Path assignment. Appends cannot be compound.
        let has_append = target.path.iter().any(|p| p.is_none());
        if has_append {
            if op != AssignOp::Set {
                return Err(err("compound assignment to append target"));
            }
            // Only a trailing append is supported: $a[k1]..[kn][] = v.
            let (last, keys) = target.path.split_last().expect("non-empty path");
            if last.is_some() || keys.iter().any(|p| p.is_none()) {
                return Err(err("only a trailing [] append is supported"));
            }
            self.expr(value)?;
            for k in keys {
                self.expr(k.as_ref().expect("checked above"))?;
            }
            let n = target.path.len() as u8;
            self.code.push(match place {
                Place::Local(s) => Op::AppendPathLocal(s, n),
                Place::Global(s) => Op::AppendPathGlobal(s, n),
            });
            return Ok(());
        }
        let n = target.path.len() as u8;
        match op {
            AssignOp::Set => {
                self.expr(value)?;
                for k in &target.path {
                    self.expr(k.as_ref().expect("no appends in this branch"))?;
                }
                self.code.push(match place {
                    Place::Local(s) => Op::SetPathLocal(s, n),
                    Place::Global(s) => Op::SetPathGlobal(s, n),
                });
            }
            _ => {
                // Compound: stash keys in temps so they evaluate once.
                let temps: Vec<u16> = (0..target.path.len()).map(|_| self.temp_slot()).collect();
                for (k, t) in target.path.iter().zip(&temps) {
                    self.expr(k.as_ref().expect("no appends in this branch"))?;
                    self.code.push(Op::StoreLocal(*t));
                }
                // current = base[k1]..[kn]
                self.emit_load(place);
                for t in &temps {
                    self.code.push(Op::LoadLocal(*t));
                    self.code.push(Op::IndexGet);
                }
                self.expr(value)?;
                self.code.push(compound_code(op));
                for t in &temps {
                    self.code.push(Op::LoadLocal(*t));
                }
                self.code.push(match place {
                    Place::Local(s) => Op::SetPathLocal(s, n),
                    Place::Global(s) => Op::SetPathGlobal(s, n),
                });
            }
        }
        Ok(())
    }

    /// Compiles `++`/`--`; leaves the expression value (old for postfix,
    /// new for prefix).
    fn compile_incdec(
        &mut self,
        target: &LValue,
        inc: bool,
        pre: bool,
    ) -> Result<(), CompileError> {
        if target.path.is_empty() {
            let place = self.place(&target.var);
            let op = match (place, inc, pre) {
                (Place::Local(s), true, true) => Op::PreIncLocal(s),
                (Place::Local(s), true, false) => Op::PostIncLocal(s),
                (Place::Local(s), false, true) => Op::PreDecLocal(s),
                (Place::Local(s), false, false) => Op::PostDecLocal(s),
                (Place::Global(s), true, true) => Op::PreIncGlobal(s),
                (Place::Global(s), true, false) => Op::PostIncGlobal(s),
                (Place::Global(s), false, true) => Op::PreDecGlobal(s),
                (Place::Global(s), false, false) => Op::PostDecGlobal(s),
            };
            self.code.push(op);
            return Ok(());
        }
        // Path form: load-modify-store with key temps.
        let place = self.place(&target.var);
        let n = target.path.len() as u8;
        let temps: Vec<u16> = (0..target.path.len()).map(|_| self.temp_slot()).collect();
        for (k, t) in target.path.iter().zip(&temps) {
            match k {
                Some(k) => self.expr(k)?,
                None => return Err(err("increment of append target")),
            }
            self.code.push(Op::StoreLocal(*t));
        }
        self.emit_load(place);
        for t in &temps {
            self.code.push(Op::LoadLocal(*t));
            self.code.push(Op::IndexGet);
        }
        // Stack: [cur].
        if pre {
            self.const_op(Value::Int(1));
            self.code.push(if inc { Op::Add } else { Op::Sub });
            for t in &temps {
                self.code.push(Op::LoadLocal(*t));
            }
            self.code.push(match place {
                Place::Local(s) => Op::SetPathLocal(s, n),
                Place::Global(s) => Op::SetPathGlobal(s, n),
            });
        } else {
            self.code.push(Op::Dup);
            self.const_op(Value::Int(1));
            self.code.push(if inc { Op::Add } else { Op::Sub });
            for t in &temps {
                self.code.push(Op::LoadLocal(*t));
            }
            self.code.push(match place {
                Place::Local(s) => Op::SetPathLocal(s, n),
                Place::Global(s) => Op::SetPathGlobal(s, n),
            });
            self.code.push(Op::Pop);
        }
        Ok(())
    }
}

fn binop_code(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Mod => Op::Mod,
        BinOp::Concat => Op::Concat,
        BinOp::Eq => Op::Eq,
        BinOp::Ne => Op::Ne,
        BinOp::Identical => Op::Identical,
        BinOp::NotIdentical => Op::NotIdentical,
        BinOp::Lt => Op::Lt,
        BinOp::Le => Op::Le,
        BinOp::Gt => Op::Gt,
        BinOp::Ge => Op::Ge,
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops compile to jumps"),
    }
}

fn compound_code(op: AssignOp) -> Op {
    match op {
        AssignOp::Add => Op::Add,
        AssignOp::Sub => Op::Sub,
        AssignOp::Mul => Op::Mul,
        AssignOp::Div => Op::Div,
        AssignOp::Mod => Op::Mod,
        AssignOp::Concat => Op::Concat,
        AssignOp::Set => unreachable!("plain set handled separately"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn compile_src(src: &str) -> CompiledScript {
        compile("/t.php", &parse_script(src).unwrap()).unwrap()
    }

    #[test]
    fn superglobals_use_fixed_slots() {
        let c = compile_src("echo $_GET['a']; $x = 1;");
        assert_eq!(c.global_names[0], "_GET");
        assert_eq!(c.global_names[4], "_SERVER");
        // Script-level $x claims the next slot after superglobals.
        assert!(c.global_names.contains(&"x".to_string()));
    }

    #[test]
    fn function_locals_are_private() {
        let c = compile_src("function f($a) { $b = $a + 1; return $b; } $b = 5; echo f($b);");
        let f = &c.functions[0];
        assert_eq!(f.num_params, 1);
        assert!(f.num_locals >= 2); // $a and $b.
    }

    #[test]
    fn global_declaration_binds_to_global_slot() {
        let c = compile_src("$cfg = 1; function g() { global $cfg; return $cfg; }");
        let g = &c.functions[0];
        assert!(g.code.iter().any(|op| matches!(op, Op::LoadGlobal(_))));
    }

    #[test]
    fn jumps_are_patched() {
        let c = compile_src("if ($x) { echo 1; } else { echo 2; }");
        for op in &c.main.code {
            match op {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                    assert!(*t != u32::MAX, "unpatched jump");
                    assert!((*t as usize) <= c.main.code.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn foreach_compiles_iter_ops() {
        let c = compile_src("foreach ($a as $k => $v) { echo $v; }");
        assert!(c.main.code.iter().any(|op| matches!(op, Op::IterInit)));
        assert!(c.main.code.iter().any(|op| matches!(op, Op::IterNextKV(_))));
        assert!(c.main.code.iter().any(|op| matches!(op, Op::IterPop)));
    }

    #[test]
    fn undefined_function_is_compile_error() {
        let e = compile("/t.php", &parse_script("no_such_fn(1);").unwrap()).unwrap_err();
        assert!(e.message.contains("no_such_fn"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let src = "function f() {} function f() {}";
        assert!(compile("/t.php", &parse_script(src).unwrap()).is_err());
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(compile("/t.php", &parse_script("break;").unwrap()).is_err());
    }

    #[test]
    fn default_params_must_be_literal() {
        assert!(compile(
            "/t.php",
            &parse_script("function f($x = foo()) {}").unwrap()
        )
        .is_err());
        let ok = compile(
            "/t.php",
            &parse_script("function f($x = array(1,2), $y = -1) {}").unwrap(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn const_pool_dedups_scalars() {
        let c = compile_src("echo 'x'; echo 'x'; echo 'x';");
        let strings = c
            .consts
            .iter()
            .filter(|v| matches!(v, Value::Str(s) if s.as_str() == "x"))
            .count();
        assert_eq!(strings, 1);
    }
}
