//! Abstract syntax for the PHP subset.

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Mod,
    /// `.=`
    Concat,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `.`
    Concat,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `===`
    Identical,
    /// `!==`
    NotIdentical,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit; compiled to jumps)
    And,
    /// `||` (short-circuit; compiled to jumps)
    Or,
}

/// An assignable place: a variable plus an optional index path.
/// `path` elements are `None` for the append form `$a[...][] = v`.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Variable name (without `$`).
    pub var: String,
    /// Index path; `None` means append (`[]`).
    pub path: Vec<Option<Expr>>,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Bool literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `$name`.
    Var(String),
    /// `expr[index]` (rvalue read).
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index.
        index: Box<Expr>,
    },
    /// `array(...)` / `[...]` literal; pairs of optional key and value.
    ArrayLit(Vec<(Option<Expr>, Expr)>),
    /// Assignment (also compound assignment), which is an expression in
    /// PHP.
    Assign {
        /// The assigned place.
        target: LValue,
        /// Plain or compound operator.
        op: AssignOp,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `!expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Neg(Box<Expr>),
    /// `++$x`, `$x++`, `--$x`, `$x--`.
    IncDec {
        /// The mutated place.
        target: LValue,
        /// Increment (true) or decrement.
        inc: bool,
        /// Prefix (true) or postfix.
        pre: bool,
    },
    /// `cond ? then : else` (with `then` absent for `?:`).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true; `None` encodes the Elvis form.
        then: Option<Box<Expr>>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// Function call (user function or builtin).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `isset($lv)` (language construct, not a function).
    Isset(LValue),
    /// `empty(expr)`.
    Empty(Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `echo e1, e2, ...;`
    Echo(Vec<Expr>),
    /// `if / elseif / else` chain.
    If {
        /// `(condition, body)` arms in order.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body.
        otherwise: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initializers.
        init: Vec<Expr>,
        /// Condition (absent = true).
        cond: Option<Expr>,
        /// Step expressions.
        step: Vec<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `foreach (arr as [$k =>] $v) body`.
    Foreach {
        /// The iterated expression.
        array: Expr,
        /// Key variable, if the `$k =>` form is used.
        key_var: Option<String>,
        /// Value variable.
        value_var: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `switch (subject) { case ...: ... default: ... }`.
    Switch {
        /// The switched expression.
        subject: Expr,
        /// `(match value, body)` cases in order.
        cases: Vec<(Expr, Vec<Stmt>)>,
        /// The `default` body and its position among the cases (PHP
        /// allows default anywhere; we record index into fallthrough
        /// order).
        default: Option<(usize, Vec<Stmt>)>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
    /// `global $a, $b;`
    Global(Vec<String>),
    /// `unset($lv);`
    Unset(LValue),
    /// Expression statement.
    Expr(Expr),
}

/// A user function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (case-insensitive in PHP; stored lowercased).
    pub name: String,
    /// Parameters with optional default literals.
    pub params: Vec<(String, Option<Expr>)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed script: function declarations plus top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Declared functions.
    pub functions: Vec<FunctionDecl>,
    /// Top-level statements (the "main" body).
    pub body: Vec<Stmt>,
}
