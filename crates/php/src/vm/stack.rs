//! The stack-bytecode scalar VM, retained as the differential oracle.
//!
//! This was the original scalar engine: a `Vec<Value>` operand stack,
//! per-frame locals vectors, and the push/pop instruction shapes in
//! [`crate::bytecode::Op`]. The register engine in [`super`] replaced it
//! on the hot path; this module stays behind as the semantic baseline —
//! property tests run both engines on the same inputs and require
//! identical outputs, state operations, and digests, the same oracle
//! pattern `graph::two_phase` serves for the ordering verifier.
//!
//! The control-flow digest mixes the per-request branch-event ordinal
//! (see [`super::digest_mix`]), not the program counter, so digests are
//! identical across the two bytecode encodings by construction.

use super::{
    digest_mix, fnv1a, init_globals, ops, ExecStats, RequestInput, RequestOutput, RunResult,
    VmError,
};
use crate::backend::RuntimeBackend;
use crate::builtins::{self, Host};
use crate::bytecode::{CompiledScript, Op};
use crate::value::{ArrayKey, Value};
use orochi_common::codec::Wire;

/// Which function a frame executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FnRef {
    Main,
    User(u16),
}

/// An active foreach iterator (snapshot semantics).
#[derive(Debug)]
struct ArrayIter {
    pairs: Vec<(ArrayKey, Value)>,
    pos: usize,
}

#[derive(Debug)]
struct Frame {
    func: FnRef,
    pc: usize,
    locals: Vec<Value>,
    iters: Vec<ArrayIter>,
    stack_base: usize,
}

/// The stack-bytecode scalar virtual machine.
pub struct Vm<'a> {
    script: &'a CompiledScript,
    backend: &'a mut dyn RuntimeBackend,
    pub(crate) globals: Vec<Value>,
    stack: Vec<Value>,
    frames: Vec<Frame>,
    pub(crate) output: String,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) status: u16,
    digest: u64,
    branch_events: u64,
    pub(crate) session_started: bool,
    session_cookie: Option<String>,
    pub(crate) last_insert_id: i64,
    pub(crate) last_affected: i64,
    stats: ExecStats,
    step_limit: u64,
}

/// Runs one request through a compiled script on the stack engine.
///
/// Same contract as [`super::run_request`]; kept public so property
/// tests and benchmarks can compare the engines head to head.
pub fn run_request(
    script: &CompiledScript,
    backend: &mut dyn RuntimeBackend,
    input: &RequestInput,
) -> Result<RunResult, String> {
    let mut vm = Vm::new(script, backend, input);
    let outcome = vm.run_main();
    match outcome {
        Ok(()) | Err(VmError::Exit) => {
            // End-of-request hook: leaked transactions become a
            // deterministic fatal on both the server and the verifier.
            if let Err(e) = vm.backend.end_of_request() {
                match VmError::from(e) {
                    VmError::AuditReject(m) => return Err(m),
                    VmError::Fatal(m) => return Ok(vm.into_fatal_result(m)),
                    VmError::Exit => unreachable!("end_of_request cannot exit"),
                }
            }
            // Normal completion: persist the session if one was started.
            if let Err(e) = vm.write_session_back() {
                match e {
                    VmError::AuditReject(m) => return Err(m),
                    VmError::Fatal(m) => return Ok(vm.into_fatal_result(m)),
                    VmError::Exit => unreachable!("session write cannot exit"),
                }
            }
            Ok(RunResult {
                output: RequestOutput {
                    status: vm.status,
                    headers: vm.headers.clone(),
                    body: std::mem::take(&mut vm.output),
                },
                digest: vm.digest,
                stats: vm.stats,
            })
        }
        Err(VmError::Fatal(m)) => Ok(vm.into_fatal_result(m)),
        Err(VmError::AuditReject(m)) => Err(m),
    }
}

impl<'a> Vm<'a> {
    fn new(
        script: &'a CompiledScript,
        backend: &'a mut dyn RuntimeBackend,
        input: &RequestInput,
    ) -> Self {
        Vm {
            script,
            backend,
            globals: init_globals(script, input),
            stack: Vec::with_capacity(64),
            frames: Vec::new(),
            output: String::new(),
            headers: Vec::new(),
            status: 200,
            digest: fnv1a(script.path.as_bytes()),
            branch_events: 0,
            session_started: false,
            session_cookie: input.session_cookie().map(str::to_string),
            last_insert_id: 0,
            last_affected: 0,
            stats: ExecStats::default(),
            step_limit: 200_000_000,
        }
    }

    fn into_fatal_result(mut self, message: String) -> RunResult {
        RunResult {
            output: RequestOutput {
                status: 500,
                headers: Vec::new(),
                body: format!("Fatal error: {message}"),
            },
            digest: self.digest,
            stats: std::mem::take(&mut self.stats),
        }
    }

    fn write_session_back(&mut self) -> Result<(), VmError> {
        if !self.session_started {
            return Ok(());
        }
        let Some(cookie) = self.session_cookie.clone() else {
            return Ok(());
        };
        let bytes = self.globals[3].to_wire_bytes();
        self.backend
            .register_write(&format!("reg:sess:{cookie}"), bytes)?;
        Ok(())
    }

    fn run_main(&mut self) -> Result<(), VmError> {
        self.frames.push(Frame {
            func: FnRef::Main,
            pc: 0,
            locals: vec![Value::Null; self.script.main.num_locals as usize],
            iters: Vec::new(),
            stack_base: 0,
        });
        self.interp()
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("compiler guarantees stack depth")
    }

    /// Mixes the next branch-event ordinal into the digest.
    fn mix_event(&mut self, taken: bool) {
        self.digest = digest_mix(self.digest, self.branch_events, taken);
        self.branch_events += 1;
    }

    fn interp(&mut self) -> Result<(), VmError> {
        loop {
            if self.stats.instructions >= self.step_limit {
                return Err(VmError::Fatal("execution step limit exceeded".into()));
            }
            self.stats.instructions += 1;
            let frame = self.frames.last_mut().expect("frame present while running");
            let code = match frame.func {
                FnRef::Main => &self.script.main.code,
                FnRef::User(i) => &self.script.functions[i as usize].code,
            };
            let pc = frame.pc;
            let op = code[pc];
            frame.pc += 1;
            match op {
                Op::Const(i) => self.stack.push(self.script.consts[i as usize].clone()),
                Op::LoadLocal(s) => {
                    let frame = self.frames.last().expect("running frame");
                    self.stack.push(frame.locals[s as usize].clone());
                }
                Op::StoreLocal(s) => {
                    let v = self.pop();
                    let frame = self.frames.last_mut().expect("running frame");
                    frame.locals[s as usize] = v;
                }
                Op::LoadGlobal(s) => self.stack.push(self.globals[s as usize].clone()),
                Op::StoreGlobal(s) => {
                    let v = self.pop();
                    self.globals[s as usize] = v;
                }
                Op::Pop => {
                    self.pop();
                }
                Op::Dup => {
                    let v = self.stack.last().expect("dup on non-empty stack").clone();
                    self.stack.push(v);
                }
                Op::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod | Op::Concat => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(ops::binary(op, &a, &b)?);
                }
                Op::Eq => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(a.loose_eq(&b)));
                }
                Op::Ne => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(!a.loose_eq(&b)));
                }
                Op::Identical => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(a.identical(&b)));
                }
                Op::NotIdentical => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(!a.identical(&b)));
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(Value::Bool(ops::relational(op, &a, &b)));
                }
                Op::Not => {
                    let v = self.pop();
                    self.stack.push(Value::Bool(!v.is_truthy()));
                }
                Op::Neg => {
                    let v = self.pop();
                    self.stack.push(ops::negate(&v)?);
                }
                Op::Jump(t) => {
                    self.frames.last_mut().expect("running frame").pc = t as usize;
                }
                Op::JumpIfFalse(t) => {
                    let v = self.pop();
                    let taken = !v.is_truthy();
                    self.mix_event(taken);
                    if taken {
                        self.frames.last_mut().expect("running frame").pc = t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    let v = self.pop();
                    let taken = v.is_truthy();
                    self.mix_event(taken);
                    if taken {
                        self.frames.last_mut().expect("running frame").pc = t as usize;
                    }
                }
                Op::NewArray => self.stack.push(Value::empty_array()),
                Op::AppendStack => {
                    let v = self.pop();
                    let arr = self.pop();
                    self.stack.push(ops::array_append(arr, v)?);
                }
                Op::InsertStack => {
                    let v = self.pop();
                    let k = self.pop();
                    let arr = self.pop();
                    self.stack.push(ops::array_insert(arr, &k, v)?);
                }
                Op::IndexGet => {
                    let k = self.pop();
                    let base = self.pop();
                    self.stack.push(ops::index_get(&base, &k));
                }
                Op::SetPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let value = self.pop();
                    let frame = self.frames.last_mut().expect("running frame");
                    ops::set_path(&mut frame.locals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::SetPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let value = self.pop();
                    ops::set_path(&mut self.globals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::AppendPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize - 1);
                    let value = self.pop();
                    let frame = self.frames.last_mut().expect("running frame");
                    ops::append_path(&mut frame.locals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::AppendPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize - 1);
                    let value = self.pop();
                    ops::append_path(&mut self.globals[slot as usize], &keys, value.clone())?;
                    self.stack.push(value);
                }
                Op::UnsetPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let frame = self.frames.last_mut().expect("running frame");
                    ops::unset_path(&mut frame.locals[slot as usize], &keys);
                }
                Op::UnsetPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    ops::unset_path(&mut self.globals[slot as usize], &keys);
                }
                Op::IssetPathLocal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    let frame = self.frames.last().expect("running frame");
                    self.stack.push(Value::Bool(ops::isset_path(
                        &frame.locals[slot as usize],
                        &keys,
                    )));
                }
                Op::IssetPathGlobal(slot, n) => {
                    let keys = self.pop_keys(n as usize);
                    self.stack.push(Value::Bool(ops::isset_path(
                        &self.globals[slot as usize],
                        &keys,
                    )));
                }
                Op::PreIncLocal(s)
                | Op::PostIncLocal(s)
                | Op::PreDecLocal(s)
                | Op::PostDecLocal(s) => {
                    let frame = self.frames.last_mut().expect("running frame");
                    let result = ops::incdec(&mut frame.locals[s as usize], op)?;
                    self.stack.push(result);
                }
                Op::PreIncGlobal(s)
                | Op::PostIncGlobal(s)
                | Op::PreDecGlobal(s)
                | Op::PostDecGlobal(s) => {
                    let result = ops::incdec(&mut self.globals[s as usize], op)?;
                    self.stack.push(result);
                }
                Op::Call(fidx, argc) => {
                    let func = &self.script.functions[fidx as usize];
                    let argc = argc as usize;
                    let mut locals = vec![Value::Null; func.num_locals as usize];
                    // Args are on the stack in order; fill param slots.
                    let args_start = self.stack.len() - argc;
                    for (i, v) in self.stack.drain(args_start..).enumerate() {
                        if i < func.num_params as usize {
                            locals[i] = v;
                        }
                    }
                    #[allow(clippy::needless_range_loop)]
                    for p in argc..func.num_params as usize {
                        match func.defaults[p] {
                            Some(cidx) => locals[p] = self.script.consts[cidx as usize].clone(),
                            None => {
                                return Err(VmError::Fatal(format!(
                                    "too few arguments to function {}()",
                                    func.name
                                )))
                            }
                        }
                    }
                    if self.frames.len() >= 200 {
                        return Err(VmError::Fatal("call stack depth exceeded".into()));
                    }
                    self.frames.push(Frame {
                        func: FnRef::User(fidx),
                        pc: 0,
                        locals,
                        iters: Vec::new(),
                        stack_base: self.stack.len(),
                    });
                }
                Op::CallBuiltin(bidx, argc) => {
                    let argc = argc as usize;
                    let args_start = self.stack.len() - argc;
                    let mut args: Vec<Value> = self.stack.drain(args_start..).collect();
                    if builtins::is_byref(bidx) {
                        let (new_target, ret) = builtins::dispatch_byref(bidx, &mut args)?;
                        self.stack.push(new_target);
                        self.stack.push(ret);
                    } else {
                        let ret = builtins::dispatch(bidx, &args, self)?;
                        self.stack.push(ret);
                    }
                }
                Op::Return => {
                    let value = self.pop();
                    let frame = self.frames.pop().expect("returning frame");
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    self.stack.truncate(frame.stack_base);
                    self.stack.push(value);
                }
                Op::ReturnNull => {
                    let frame = self.frames.pop().expect("returning frame");
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    self.stack.truncate(frame.stack_base);
                    self.stack.push(Value::Null);
                }
                Op::Echo => {
                    let v = self.pop();
                    self.output.push_str(&v.to_php_string());
                }
                Op::IterInit => {
                    let arr = self.pop();
                    let pairs = match &arr {
                        Value::Array(a) => a.to_pairs(),
                        // PHP warns and skips the loop for non-arrays.
                        _ => Vec::new(),
                    };
                    self.frames
                        .last_mut()
                        .expect("running frame")
                        .iters
                        .push(ArrayIter { pairs, pos: 0 });
                }
                Op::IterNext(t) | Op::IterNextKV(t) => {
                    let frame = self.frames.last_mut().expect("running frame");
                    let iter = frame.iters.last_mut().expect("IterInit precedes IterNext");
                    if iter.pos < iter.pairs.len() {
                        let (k, v) = iter.pairs[iter.pos].clone();
                        iter.pos += 1;
                        if matches!(op, Op::IterNextKV(_)) {
                            self.stack.push(k.to_value());
                        }
                        self.stack.push(v);
                        self.mix_event(true);
                    } else {
                        frame.pc = t as usize;
                        self.mix_event(false);
                    }
                }
                Op::IterPop => {
                    self.frames.last_mut().expect("running frame").iters.pop();
                }
            }
        }
    }

    fn pop_keys(&mut self, n: usize) -> Vec<Value> {
        if n == 0 {
            return Vec::new();
        }
        self.stack.split_off(self.stack.len() - n)
    }
}

impl Host for Vm<'_> {
    fn echo(&mut self, s: &str) {
        self.output.push_str(s);
    }

    fn add_header(&mut self, name: String, value: String) {
        self.headers.push((name, value));
    }

    fn set_status(&mut self, code: u16) {
        self.status = code;
    }

    fn session_start(&mut self) -> Result<(), VmError> {
        if self.session_started {
            return Ok(());
        }
        self.session_started = true;
        let Some(cookie) = self.session_cookie.clone() else {
            self.globals[3] = Value::empty_array();
            return Ok(());
        };
        let bytes = self.backend.register_read(&format!("reg:sess:{cookie}"))?;
        self.globals[3] = match bytes {
            Some(b) => Value::from_wire_bytes(&b)
                .map_err(|_| VmError::Fatal("corrupt session data".into()))?,
            None => Value::empty_array(),
        };
        Ok(())
    }

    fn kv_get(&mut self, key: &str) -> Result<Value, VmError> {
        let bytes = self.backend.kv_get("kv:apc", key)?;
        Ok(match bytes {
            Some(b) => {
                Value::from_wire_bytes(&b).map_err(|_| VmError::Fatal("corrupt apc data".into()))?
            }
            None => Value::Bool(false),
        })
    }

    fn kv_set(&mut self, key: &str, value: Option<&Value>) -> Result<(), VmError> {
        let bytes = value.map(|v| v.to_wire_bytes());
        self.backend.kv_set("kv:apc", key, bytes)?;
        Ok(())
    }

    fn db_begin(&mut self) -> Result<(), VmError> {
        self.backend.db_begin("db:main")?;
        Ok(())
    }

    fn db_query(&mut self, sql: &str) -> Result<Value, VmError> {
        let result = self.backend.db_query("db:main", sql)?;
        Ok(builtins::db_result_to_value(
            result,
            &mut self.last_insert_id,
            &mut self.last_affected,
        ))
    }

    fn db_commit(&mut self) -> Result<bool, VmError> {
        Ok(self.backend.db_commit("db:main")?)
    }

    fn db_rollback(&mut self) -> Result<(), VmError> {
        self.backend.db_rollback("db:main")?;
        Ok(())
    }

    fn db_insert_id(&mut self) -> i64 {
        self.last_insert_id
    }

    fn db_affected_rows(&mut self) -> i64 {
        self.last_affected
    }

    fn nd_time(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.time()?)
    }

    fn nd_microtime(&mut self) -> Result<f64, VmError> {
        Ok(self.backend.microtime()?)
    }

    fn nd_getpid(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.getpid()?)
    }

    fn nd_rand_raw(&mut self) -> Result<i64, VmError> {
        Ok(self.backend.mt_rand()?)
    }

    fn nd_uniqid(&mut self) -> Result<String, VmError> {
        Ok(self.backend.uniqid()?)
    }
}
