//! Recursive-descent parser for the PHP subset.

use crate::ast::{AssignOp, BinOp, Expr, FunctionDecl, LValue, Script, Stmt};
use crate::lexer::{tokenize, PhpLexError, SpannedTok, Tok};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum PhpParseError {
    /// Tokenizer failure.
    Lex(PhpLexError),
    /// Grammar failure.
    Syntax {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for PhpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhpParseError::Lex(e) => write!(f, "{e}"),
            PhpParseError::Syntax { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PhpParseError {}

impl From<PhpLexError> for PhpParseError {
    fn from(e: PhpLexError) -> Self {
        PhpParseError::Lex(e)
    }
}

/// Parses a PHP script.
///
/// # Examples
///
/// ```
/// use orochi_php::parse_script;
///
/// let script = parse_script("<?php function f($x) { return $x + 1; } echo f(1);").unwrap();
/// assert_eq!(script.functions.len(), 1);
/// assert_eq!(script.body.len(), 1);
/// ```
pub fn parse_script(src: &str) -> Result<Script, PhpParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut script = Script::default();
    while !p.done() {
        if p.peek_kw("function") {
            script.functions.push(p.function_decl()?);
        } else {
            script.body.push(p.statement()?);
        }
    }
    Ok(script)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> PhpParseError {
        PhpParseError::Syntax {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), PhpParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{sym}', found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "eof".into())
            )))
        }
    }

    fn expect_var(&mut self) -> Result<String, PhpParseError> {
        match self.peek() {
            Some(Tok::Var(n)) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.err("expected variable")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, PhpParseError> {
        match self.peek() {
            Some(Tok::Ident(n)) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, PhpParseError> {
        self.eat_kw("function");
        let name = self.expect_ident()?.to_ascii_lowercase();
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.peek_sym(")") {
            loop {
                let pname = self.expect_var()?;
                let default = if self.eat_sym("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                params.push((pname, default));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        let body = self.block()?;
        Ok(FunctionDecl { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, PhpParseError> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        while !self.peek_sym("}") {
            if self.done() {
                return Err(self.err("unterminated block"));
            }
            out.push(self.statement()?);
        }
        self.expect_sym("}")?;
        Ok(out)
    }

    /// A single statement, or a brace block flattened to its statements.
    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, PhpParseError> {
        if self.peek_sym("{") {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, PhpParseError> {
        if self.peek_kw("echo") {
            self.pos += 1;
            let mut exprs = vec![self.expr()?];
            while self.eat_sym(",") {
                exprs.push(self.expr()?);
            }
            self.expect_sym(";")?;
            return Ok(Stmt::Echo(exprs));
        }
        if self.peek_kw("if") {
            self.pos += 1;
            return self.if_tail();
        }
        if self.peek_kw("while") {
            self.pos += 1;
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.peek_kw("for") {
            self.pos += 1;
            self.expect_sym("(")?;
            let mut init = Vec::new();
            if !self.peek_sym(";") {
                init.push(self.expr()?);
                while self.eat_sym(",") {
                    init.push(self.expr()?);
                }
            }
            self.expect_sym(";")?;
            let cond = if self.peek_sym(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_sym(";")?;
            let mut step = Vec::new();
            if !self.peek_sym(")") {
                step.push(self.expr()?);
                while self.eat_sym(",") {
                    step.push(self.expr()?);
                }
            }
            self.expect_sym(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.peek_kw("foreach") {
            self.pos += 1;
            self.expect_sym("(")?;
            let array = self.expr()?;
            if !self.eat_kw("as") {
                return Err(self.err("expected 'as' in foreach"));
            }
            let first = self.expect_var()?;
            let (key_var, value_var) = if self.eat_sym("=>") {
                (Some(first), self.expect_var()?)
            } else {
                (None, first)
            };
            self.expect_sym(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            });
        }
        if self.peek_kw("switch") {
            self.pos += 1;
            self.expect_sym("(")?;
            let subject = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym("{")?;
            let mut cases = Vec::new();
            let mut default = None;
            while !self.peek_sym("}") {
                if self.eat_kw("case") {
                    let val = self.expr()?;
                    self.expect_sym(":")?;
                    let body = self.case_body()?;
                    cases.push((val, body));
                } else if self.eat_kw("default") {
                    self.expect_sym(":")?;
                    let body = self.case_body()?;
                    if default.is_some() {
                        return Err(self.err("duplicate default"));
                    }
                    default = Some((cases.len(), body));
                } else {
                    return Err(self.err("expected case/default"));
                }
            }
            self.expect_sym("}")?;
            return Ok(Stmt::Switch {
                subject,
                cases,
                default,
            });
        }
        if self.peek_kw("break") {
            self.pos += 1;
            self.expect_sym(";")?;
            return Ok(Stmt::Break);
        }
        if self.peek_kw("continue") {
            self.pos += 1;
            self.expect_sym(";")?;
            return Ok(Stmt::Continue);
        }
        if self.peek_kw("return") {
            self.pos += 1;
            let value = if self.peek_sym(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_sym(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.peek_kw("global") {
            self.pos += 1;
            let mut names = vec![self.expect_var()?];
            while self.eat_sym(",") {
                names.push(self.expect_var()?);
            }
            self.expect_sym(";")?;
            return Ok(Stmt::Global(names));
        }
        if self.peek_kw("unset") {
            self.pos += 1;
            self.expect_sym("(")?;
            let lv = self.lvalue()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(Stmt::Unset(lv));
        }
        if self.peek_sym("{") {
            // Bare block: flatten (we have no block scoping).
            let body = self.block()?;
            return Ok(Stmt::If {
                arms: vec![(Expr::Bool(true), body)],
                otherwise: vec![],
            });
        }
        let e = self.expr()?;
        self.expect_sym(";")?;
        Ok(Stmt::Expr(e))
    }

    fn if_tail(&mut self) -> Result<Stmt, PhpParseError> {
        self.expect_sym("(")?;
        let cond = self.expr()?;
        self.expect_sym(")")?;
        let body = self.stmt_or_block()?;
        let mut arms = vec![(cond, body)];
        let mut otherwise = Vec::new();
        loop {
            if self.peek_kw("elseif") {
                self.pos += 1;
                self.expect_sym("(")?;
                let c = self.expr()?;
                self.expect_sym(")")?;
                let b = self.stmt_or_block()?;
                arms.push((c, b));
            } else if self.peek_kw("else") {
                if self.peek2().is_some_and(|t| t.is_kw("if")) {
                    self.pos += 2;
                    self.expect_sym("(")?;
                    let c = self.expr()?;
                    self.expect_sym(")")?;
                    let b = self.stmt_or_block()?;
                    arms.push((c, b));
                } else {
                    self.pos += 1;
                    otherwise = self.stmt_or_block()?;
                    break;
                }
            } else {
                break;
            }
        }
        Ok(Stmt::If { arms, otherwise })
    }

    fn case_body(&mut self) -> Result<Vec<Stmt>, PhpParseError> {
        let mut out = Vec::new();
        while !self.peek_sym("}") && !self.peek_kw("case") && !self.peek_kw("default") {
            if self.done() {
                return Err(self.err("unterminated switch"));
            }
            out.push(self.statement()?);
        }
        Ok(out)
    }

    fn lvalue(&mut self) -> Result<LValue, PhpParseError> {
        let var = self.expect_var()?;
        let mut path = Vec::new();
        while self.peek_sym("[") {
            self.pos += 1;
            if self.eat_sym("]") {
                path.push(None);
            } else {
                let idx = self.expr()?;
                self.expect_sym("]")?;
                path.push(Some(idx));
            }
        }
        Ok(LValue { var, path })
    }

    // Expression precedence, loosest first:
    //   assignment > ternary > or > and > equality/relational >
    //   additive(+ - .) > multiplicative > unary > postfix > atom
    fn expr(&mut self) -> Result<Expr, PhpParseError> {
        self.assignment()
    }

    /// Checks whether an lvalue-shaped assignment starts here; PHP
    /// assignment is right-associative and an expression.
    fn assignment(&mut self) -> Result<Expr, PhpParseError> {
        if let Some(Tok::Var(_)) = self.peek() {
            // Look ahead for `$x ... op=`: try to parse an lvalue and an
            // assignment operator; backtrack otherwise.
            let save = self.pos;
            if let Ok(lv) = self.lvalue() {
                let op = match self.peek() {
                    Some(Tok::Sym("=")) => Some(AssignOp::Set),
                    Some(Tok::Sym("+=")) => Some(AssignOp::Add),
                    Some(Tok::Sym("-=")) => Some(AssignOp::Sub),
                    Some(Tok::Sym("*=")) => Some(AssignOp::Mul),
                    Some(Tok::Sym("/=")) => Some(AssignOp::Div),
                    Some(Tok::Sym("%=")) => Some(AssignOp::Mod),
                    Some(Tok::Sym(".=")) => Some(AssignOp::Concat),
                    _ => None,
                };
                if let Some(op) = op {
                    self.pos += 1;
                    let value = self.assignment()?;
                    return Ok(Expr::Assign {
                        target: lv,
                        op,
                        value: Box::new(value),
                    });
                }
            }
            self.pos = save;
        }
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, PhpParseError> {
        let cond = self.or_expr()?;
        if self.eat_sym("?") {
            if self.eat_sym(":") {
                let otherwise = self.ternary()?;
                return Ok(Expr::Ternary {
                    cond: Box::new(cond),
                    then: None,
                    otherwise: Box::new(otherwise),
                });
            }
            let then = self.expr()?;
            self.expect_sym(":")?;
            let otherwise = self.ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Some(Box::new(then)),
                otherwise: Box::new(otherwise),
            });
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> Result<Expr, PhpParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_sym("||") || self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, PhpParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_sym("&&") || self.eat_kw("and") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, PhpParseError> {
        let lhs = self.add_expr()?;
        for (sym, op) in [
            ("===", BinOp::Identical),
            ("!==", BinOp::NotIdentical),
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let rhs = self.add_expr()?;
                return Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                });
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, PhpParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else if self.eat_sym(".") {
                BinOp::Concat
            } else {
                return Ok(lhs);
            };
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, PhpParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Mul
            } else if self.eat_sym("/") {
                BinOp::Div
            } else if self.eat_sym("%") {
                BinOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, PhpParseError> {
        if self.eat_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_sym("+") {
            return self.unary();
        }
        if self.eat_sym("++") {
            let lv = self.lvalue()?;
            return Ok(Expr::IncDec {
                target: lv,
                inc: true,
                pre: true,
            });
        }
        if self.eat_sym("--") {
            let lv = self.lvalue()?;
            return Ok(Expr::IncDec {
                target: lv,
                inc: false,
                pre: true,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, PhpParseError> {
        // Postfix ++/-- only apply to lvalues; detect them first.
        if let Some(Tok::Var(_)) = self.peek() {
            let save = self.pos;
            if let Ok(lv) = self.lvalue() {
                if self.eat_sym("++") {
                    return Ok(Expr::IncDec {
                        target: lv,
                        inc: true,
                        pre: false,
                    });
                }
                if self.eat_sym("--") {
                    return Ok(Expr::IncDec {
                        target: lv,
                        inc: false,
                        pre: false,
                    });
                }
            }
            self.pos = save;
        }
        let mut expr = self.atom()?;
        while self.peek_sym("[") {
            self.pos += 1;
            let idx = self.expr()?;
            self.expect_sym("]")?;
            expr = Expr::Index {
                base: Box::new(expr),
                index: Box::new(idx),
            };
        }
        Ok(expr)
    }

    fn atom(&mut self) -> Result<Expr, PhpParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Int(i))
            }
            Some(Tok::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Float(x))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Var(n)) => {
                self.pos += 1;
                Ok(Expr::Var(n))
            }
            Some(Tok::Sym("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Sym("[")) => {
                self.pos += 1;
                let pairs = self.array_pairs("]")?;
                Ok(Expr::ArrayLit(pairs))
            }
            Some(Tok::Ident(name)) => {
                let lname = name.to_ascii_lowercase();
                self.pos += 1;
                match lname.as_str() {
                    "true" => Ok(Expr::Bool(true)),
                    "false" => Ok(Expr::Bool(false)),
                    "null" => Ok(Expr::Null),
                    "array" => {
                        self.expect_sym("(")?;
                        let pairs = self.array_pairs(")")?;
                        Ok(Expr::ArrayLit(pairs))
                    }
                    "isset" => {
                        self.expect_sym("(")?;
                        let lv = self.lvalue()?;
                        self.expect_sym(")")?;
                        Ok(Expr::Isset(lv))
                    }
                    "empty" => {
                        self.expect_sym("(")?;
                        let e = self.expr()?;
                        self.expect_sym(")")?;
                        Ok(Expr::Empty(Box::new(e)))
                    }
                    "list" => Err(self.err("list() is not supported")),
                    _ => {
                        self.expect_sym("(")?;
                        let mut args = Vec::new();
                        if !self.peek_sym(")") {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_sym(",") {
                                    break;
                                }
                            }
                        }
                        self.expect_sym(")")?;
                        Ok(Expr::Call { name: lname, args })
                    }
                }
            }
            other => Err(self.err(format!(
                "expected expression, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "eof".into())
            ))),
        }
    }

    fn array_pairs(&mut self, close: &str) -> Result<Vec<(Option<Expr>, Expr)>, PhpParseError> {
        let mut pairs = Vec::new();
        while !self.peek_sym(close) {
            let first = self.expr()?;
            if self.eat_sym("=>") {
                let value = self.expr()?;
                pairs.push((Some(first), value));
            } else {
                pairs.push((None, first));
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(close)?;
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_and_body() {
        let s = parse_script(
            "<?php
            function add($a, $b = 1) { return $a + $b; }
            echo add(2), \"\\n\";",
        )
        .unwrap();
        assert_eq!(s.functions[0].name, "add");
        assert_eq!(s.functions[0].params.len(), 2);
        assert!(s.functions[0].params[1].1.is_some());
        assert!(matches!(s.body[0], Stmt::Echo(_)));
    }

    #[test]
    fn if_elseif_else_chain() {
        let s = parse_script(
            "if ($a) { echo 1; } elseif ($b) { echo 2; } else if ($c) { echo 3; } else { echo 4; }",
        )
        .unwrap();
        match &s.body[0] {
            Stmt::If { arms, otherwise } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(otherwise.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn foreach_forms() {
        let s = parse_script("foreach ($a as $v) echo $v; foreach ($a as $k => $v) { echo $k; }")
            .unwrap();
        match &s.body[0] {
            Stmt::Foreach { key_var, .. } => assert!(key_var.is_none()),
            other => panic!("expected foreach, got {other:?}"),
        }
        match &s.body[1] {
            Stmt::Foreach { key_var, .. } => assert_eq!(key_var.as_deref(), Some("k")),
            other => panic!("expected foreach, got {other:?}"),
        }
    }

    #[test]
    fn switch_with_default() {
        let s = parse_script(
            "switch ($x) { case 1: echo 'a'; break; case 2: echo 'b'; default: echo 'c'; }",
        )
        .unwrap();
        match &s.body[0] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn nested_array_assignment() {
        let s = parse_script("$a['x'][2] = 5; $b[] = 1;").unwrap();
        match &s.body[0] {
            Stmt::Expr(Expr::Assign { target, .. }) => {
                assert_eq!(target.var, "a");
                assert_eq!(target.path.len(), 2);
                assert!(target.path[0].is_some());
            }
            other => panic!("expected assign, got {other:?}"),
        }
        match &s.body[1] {
            Stmt::Expr(Expr::Assign { target, .. }) => {
                assert_eq!(target.path, vec![None]);
            }
            other => panic!("expected append, got {other:?}"),
        }
    }

    #[test]
    fn compound_assignment_and_incdec() {
        let s = parse_script("$a += 2; $a .= 'x'; $i++; ++$j; $k--;").unwrap();
        assert!(matches!(
            &s.body[0],
            Stmt::Expr(Expr::Assign {
                op: AssignOp::Add,
                ..
            })
        ));
        assert!(matches!(
            &s.body[2],
            Stmt::Expr(Expr::IncDec {
                inc: true,
                pre: false,
                ..
            })
        ));
        assert!(matches!(
            &s.body[3],
            Stmt::Expr(Expr::IncDec {
                inc: true,
                pre: true,
                ..
            })
        ));
    }

    #[test]
    fn ternary_forms() {
        let s = parse_script("$x = $a ? 1 : 2; $y = $b ?: 3;").unwrap();
        match &s.body[1] {
            Stmt::Expr(Expr::Assign { value, .. }) => {
                assert!(matches!(**value, Expr::Ternary { then: None, .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn array_literals() {
        let s = parse_script("$a = array(1, 'k' => 2); $b = [3, 4 => 5];").unwrap();
        match &s.body[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => match &**value {
                Expr::ArrayLit(pairs) => {
                    assert_eq!(pairs.len(), 2);
                    assert!(pairs[0].0.is_none());
                    assert!(pairs[1].0.is_some());
                }
                other => panic!("expected array literal, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn isset_empty_unset() {
        let s = parse_script("if (isset($a['k']) && !empty($b)) { unset($a['k']); }").unwrap();
        assert!(matches!(&s.body[0], Stmt::If { .. }));
    }

    #[test]
    fn operator_precedence_and_or() {
        // a || b && c parses as a || (b && c).
        let s = parse_script("$x = $a || $b && $c;").unwrap();
        match &s.body[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => match &**value {
                Expr::Binary {
                    op: BinOp::Or, rhs, ..
                } => assert!(matches!(**rhs, Expr::Binary { op: BinOp::And, .. })),
                other => panic!("expected ||, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn concat_same_precedence_as_add() {
        // Left-assoc chain: ((('a' . 1) + 2) . 'b') — PHP 7 semantics.
        let s = parse_script("$x = 'a' . 1 . 'b';").unwrap();
        assert!(matches!(&s.body[0], Stmt::Expr(Expr::Assign { .. })));
    }

    #[test]
    fn errors() {
        assert!(parse_script("if ($a { }").is_err());
        assert!(parse_script("function () {}").is_err());
        assert!(parse_script("$x = ;").is_err());
        assert!(parse_script("foreach ($a as) {}").is_err());
    }

    #[test]
    fn global_statement() {
        let s = parse_script("function f() { global $db, $cfg; return $db; }").unwrap();
        assert!(matches!(&s.functions[0].body[0], Stmt::Global(names) if names.len() == 2));
    }
}
