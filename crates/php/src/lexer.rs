//! Tokenizer for the PHP subset.
//!
//! Input is plain PHP code (an optional leading `<?php` marker is
//! skipped; HTML interleaving is out of scope — applications `echo`
//! their markup). Double-quoted strings support escape sequences but not
//! variable interpolation (DESIGN.md documents the scope).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `$name`.
    Var(String),
    /// Bare identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Operator or punctuation.
    Sym(&'static str),
}

impl Tok {
    /// True if this is the given keyword (PHP keywords are
    /// case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Var(n) => write!(f, "${n}"),
            Tok::Ident(n) => write!(f, "{n}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Lexer error with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhpLexError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for PhpLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PhpLexError {}

/// A token plus its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Multi-character operators, longest first.
const SYMBOLS: &[&str] = &[
    "===", "!==", "<=>", "**=", "<<=", ">>=", "??=", "?->", "==", "!=", "<>", "<=", ">=", "&&",
    "||", "++", "--", "+=", "-=", "*=", "/=", ".=", "%=", "=>", "->", "::", "??", "<<", ">>", "(",
    ")", "{", "}", "[", "]", ",", ";", "+", "-", "*", "/", "%", ".", "=", "<", ">", "!", "?", ":",
    "&", "|", "^", "~", "@",
];

/// Tokenizes PHP source.
///
/// # Examples
///
/// ```
/// use orochi_php::lexer::{tokenize, Tok};
///
/// let toks = tokenize("<?php $x = 1 + 2;").unwrap();
/// assert_eq!(toks[0].tok, Tok::Var("x".into()));
/// assert_eq!(toks[1].tok, Tok::Sym("="));
/// ```
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>, PhpLexError> {
    let src = src.trim_start();
    let src = src.strip_prefix("<?php").unwrap_or(src);
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(PhpLexError {
                            line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start {
                    return Err(PhpLexError {
                        line,
                        message: "expected variable name after '$'".into(),
                    });
                }
                out.push(SpannedTok {
                    tok: Tok::Var(src[start..i].to_string()),
                    line,
                });
            }
            b'\'' | b'"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(PhpLexError {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&b) if b == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).copied().ok_or_else(|| PhpLexError {
                                line,
                                message: "dangling escape".into(),
                            })?;
                            // Single-quoted strings only unescape \' and
                            // \\; double-quoted support the usual set.
                            let (ch, consumed): (Option<char>, usize) = if quote == b'\'' {
                                match esc {
                                    b'\'' => (Some('\''), 2),
                                    b'\\' => (Some('\\'), 2),
                                    _ => (None, 1),
                                }
                            } else {
                                match esc {
                                    b'n' => (Some('\n'), 2),
                                    b't' => (Some('\t'), 2),
                                    b'r' => (Some('\r'), 2),
                                    b'"' => (Some('"'), 2),
                                    b'\\' => (Some('\\'), 2),
                                    b'$' => (Some('$'), 2),
                                    b'0' => (Some('\0'), 2),
                                    _ => (None, 1),
                                }
                            };
                            match ch {
                                Some(ch) => {
                                    s.push(ch);
                                    i += consumed;
                                }
                                None => {
                                    s.push('\\');
                                    i += 1;
                                }
                            }
                        }
                        Some(_) => {
                            let rest = &src[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            if ch == '\n' {
                                line += 1;
                            }
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| PhpLexError {
                        line,
                        message: format!("bad float {text}"),
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Tok::Int(v),
                        // PHP promotes overflowing int literals to float.
                        Err(_) => Tok::Float(text.parse().map_err(|_| PhpLexError {
                            line,
                            message: format!("bad number {text}"),
                        })?),
                    }
                };
                out.push(SpannedTok { tok, line });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                for sym in SYMBOLS {
                    if src[i..].starts_with(sym) {
                        // `<>` is an alias of `!=`.
                        let canonical = if *sym == "<>" { "!=" } else { sym };
                        out.push(SpannedTok {
                            tok: Tok::Sym(canonical),
                            line,
                        });
                        i += sym.len();
                        continue 'outer;
                    }
                }
                return Err(PhpLexError {
                    line,
                    message: format!("unexpected character {:?}", src[i..].chars().next()),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn variables_and_ops() {
        assert_eq!(
            toks("$a = $b . 'x';"),
            vec![
                Tok::Var("a".into()),
                Tok::Sym("="),
                Tok::Var("b".into()),
                Tok::Sym("."),
                Tok::Str("x".into()),
                Tok::Sym(";")
            ]
        );
    }

    #[test]
    fn php_tag_stripped() {
        assert_eq!(toks("<?php $x;"), toks("$x;"));
    }

    #[test]
    fn multi_char_operators_longest_match() {
        assert_eq!(
            toks("a === b !== c <= d .= e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Sym("==="),
                Tok::Ident("b".into()),
                Tok::Sym("!=="),
                Tok::Ident("c".into()),
                Tok::Sym("<="),
                Tok::Ident("d".into()),
                Tok::Sym(".="),
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![Tok::Str("a\nb".into())]);
        assert_eq!(toks(r#"'a\nb'"#), vec![Tok::Str("a\\nb".into())]);
        assert_eq!(toks(r#"'it\'s'"#), vec![Tok::Str("it's".into())]);
        assert_eq!(toks(r#""\$var""#), vec![Tok::Str("$var".into())]);
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let spanned = tokenize("// one\n# two\n/* three\nfour */\n$x").unwrap();
        assert_eq!(spanned.len(), 1);
        assert_eq!(spanned[0].line, 5);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 3.5"), vec![Tok::Int(42), Tok::Float(3.5)]);
        // Overflowing literal becomes float.
        assert!(matches!(toks("99999999999999999999")[0], Tok::Float(_)));
    }

    #[test]
    fn ne_alias() {
        assert_eq!(toks("a <> b")[1], Tok::Sym("!="));
    }

    #[test]
    fn error_on_bad_char() {
        assert!(tokenize("$x = `bad`;").is_err());
    }
}
