//! Mini-PHP: the language runtime the audited applications are written
//! in.
//!
//! OROCHI's server runs a modified PHP runtime (HHVM) that records
//! control-flow digests and state operations (§4.3, §4.7); its verifier
//! runs acc-PHP, a multivalue runtime. This crate is the from-scratch
//! equivalent of the *scalar* side, shared by the online server and the
//! verifier's per-request fallback path:
//!
//! * [`value`] — PHP values: scalars plus the ordered hash map that is
//!   the PHP array, with copy-on-write value semantics.
//! * [`lexer`] / [`parser`] / [`ast`] — a procedural PHP subset:
//!   functions, superglobals, `if`/`while`/`for`/`foreach`/`switch`,
//!   arrays, and ~70 builtins. No classes or closures (DESIGN.md
//!   documents the scope).
//! * [`compiler`] / [`bytecode`] — AST to stack bytecode. The opcode set
//!   deliberately includes the instruction categories Fig. 10
//!   benchmarks (multiply, concat, isset, jump, variable get, array
//!   set, iteration, increment, new-array, builtin call).
//! * [`vm`] — the scalar interpreter. It maintains the **control-flow
//!   digest** (updated at every conditional branch, switch dispatch,
//!   and iteration step, §4.3) and routes state operations and
//!   nondeterministic builtins through the [`backend`] traits.
//! * [`builtins`] — the builtin function registry.
//!
//! The SIMD-on-demand multivalue VM lives in `orochi-accphp` and shares
//! this crate's bytecode, values, and builtin semantics.

pub mod ast;
pub mod backend;
pub mod builtins;
pub mod bytecode;
pub mod compiler;
pub mod lexer;
pub mod parser;
pub mod value;
pub mod vm;

pub use backend::{BackendError, DbResult, DbScalar, NondetProvider, RuntimeBackend, StateBackend};
pub use bytecode::{CompiledScript, Op};
pub use compiler::compile;
pub use parser::parse_script;
pub use value::{ArrayKey, PhpArray, Value};
pub use vm::{RequestInput, RequestOutput, Vm, VmError};
