//! Builtin functions.
//!
//! Pure builtins (strings, arrays, math) are implemented directly and
//! shared verbatim by the scalar and multivalue VMs — this is what makes
//! acc-PHP's per-lane "split execution" of builtins (§4.3) trivially
//! consistent with the server. Impure builtins (output, state,
//! nondeterminism) go through the [`Host`] trait, which each VM
//! implements.
//!
//! By-reference builtins (`array_push`, `sort`, ...) use a dedicated
//! calling convention: the compiler passes the target array as the first
//! argument and stores the returned array back into the variable (see
//! `dispatch_byref`).

use crate::backend::{DbResult, DbScalar};
use crate::value::{format_php_float, ArrayKey, PhpArray, Value};
use crate::vm::VmError;
use std::sync::Arc;

/// VM services impure builtins need.
pub trait Host {
    /// Appends to the output buffer (`print`).
    fn echo(&mut self, s: &str);
    /// Adds a response header.
    fn add_header(&mut self, name: String, value: String);
    /// Sets the response status code.
    fn set_status(&mut self, code: u16);
    /// Starts the session: loads `$_SESSION` from the session register.
    fn session_start(&mut self) -> Result<(), VmError>;
    /// APC fetch (false on miss).
    fn kv_get(&mut self, key: &str) -> Result<Value, VmError>;
    /// APC store/delete.
    fn kv_set(&mut self, key: &str, value: Option<&Value>) -> Result<(), VmError>;
    /// Opens a database transaction.
    fn db_begin(&mut self) -> Result<(), VmError>;
    /// Runs one SQL statement; returns rows, true, or false.
    fn db_query(&mut self, sql: &str) -> Result<Value, VmError>;
    /// Commits; false if the transaction failed.
    fn db_commit(&mut self) -> Result<bool, VmError>;
    /// Rolls back.
    fn db_rollback(&mut self) -> Result<(), VmError>;
    /// Last INSERT auto-increment id.
    fn db_insert_id(&mut self) -> i64;
    /// Rows affected by the last write.
    fn db_affected_rows(&mut self) -> i64;
    /// `time()`.
    fn nd_time(&mut self) -> Result<i64, VmError>;
    /// `microtime(true)`.
    fn nd_microtime(&mut self) -> Result<f64, VmError>;
    /// `getpid()`.
    fn nd_getpid(&mut self) -> Result<i64, VmError>;
    /// Raw random draw for `mt_rand`/`rand`.
    fn nd_rand_raw(&mut self) -> Result<i64, VmError>;
    /// `uniqid()`.
    fn nd_uniqid(&mut self) -> Result<String, VmError>;
}

/// All builtin names, value-returning first, by-reference at the end.
pub const NAMES: &[&str] = &[
    // Strings.
    "strlen",
    "substr",
    "strpos",
    "str_replace",
    "strtolower",
    "strtoupper",
    "ucfirst",
    "trim",
    "ltrim",
    "rtrim",
    "explode",
    "implode",
    "join",
    "str_repeat",
    "sprintf",
    "number_format",
    "htmlspecialchars",
    "strcmp",
    "str_pad",
    "nl2br",
    "md5",
    "urlencode",
    "substr_count",
    // Arrays (value).
    "count",
    "sizeof",
    "array_keys",
    "array_values",
    "array_merge",
    "array_slice",
    "array_reverse",
    "in_array",
    "array_key_exists",
    "array_search",
    "array_sum",
    "range",
    "array_unique",
    "array_flip",
    "array_fill",
    // Math / types.
    "abs",
    "max",
    "min",
    "floor",
    "ceil",
    "round",
    "intdiv",
    "pow",
    "sqrt",
    "intval",
    "floatval",
    "strval",
    "boolval",
    "gettype",
    "is_int",
    "is_integer",
    "is_string",
    "is_array",
    "is_null",
    "is_numeric",
    "is_bool",
    "is_float",
    // Encoding.
    "json_encode",
    // Output / control.
    "print",
    "exit",
    "die",
    "header",
    "http_response_code",
    "setcookie",
    // State.
    "session_start",
    "apc_fetch",
    "apc_store",
    "apc_delete",
    "db_query",
    "db_begin",
    "db_commit",
    "db_rollback",
    "db_insert_id",
    "db_affected_rows",
    // Nondeterminism.
    "time",
    "microtime",
    "getpid",
    "mt_rand",
    "rand",
    "uniqid",
    "mt_getrandmax",
    // By-reference (must stay last; see BYREF_START).
    "array_push",
    "array_pop",
    "array_shift",
    "array_unshift",
    "sort",
    "rsort",
    "ksort",
    "asort",
    "arsort",
];

/// Index of the first by-reference builtin in [`NAMES`].
const BYREF_START: u16 = (NAMES.len() - 9) as u16;

/// Resolves a builtin name to its index.
pub fn lookup(name: &str) -> Option<u16> {
    NAMES.iter().position(|n| *n == name).map(|i| i as u16)
}

/// True if the builtin mutates its first argument in place.
pub fn is_byref(id: u16) -> bool {
    id >= BYREF_START
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Null)
}

fn arg_str(args: &[Value], i: usize) -> String {
    arg(args, i).to_php_string()
}

fn arg_int(args: &[Value], i: usize) -> i64 {
    arg(args, i).to_php_int()
}

fn arg_array(args: &[Value], i: usize, name: &str) -> Result<Arc<PhpArray>, VmError> {
    match arg(args, i) {
        Value::Array(a) => Ok(a),
        other => Err(VmError::Fatal(format!(
            "{name}() expects an array, {} given",
            other.type_name()
        ))),
    }
}

/// Converts a backend database result into the PHP-visible value and
/// updates the insert-id/affected bookkeeping.
pub fn db_result_to_value(result: DbResult, last_id: &mut i64, last_aff: &mut i64) -> Value {
    match result {
        DbResult::Rows(rows) => {
            let mut out = PhpArray::new();
            for row in rows {
                let mut assoc = PhpArray::new();
                for (col, cell) in row {
                    let v = match cell {
                        DbScalar::Null => Value::Null,
                        DbScalar::Int(i) => Value::Int(i),
                        DbScalar::Float(f) => Value::Float(f),
                        DbScalar::Text(s) => Value::str(s),
                    };
                    assoc.set(ArrayKey::Str(col), v);
                }
                out.push(Value::array(assoc));
            }
            Value::array(out)
        }
        DbResult::Write {
            affected,
            insert_id,
        } => {
            *last_aff = affected as i64;
            if let Some(id) = insert_id {
                *last_id = id;
            }
            Value::Bool(true)
        }
        DbResult::Failed => Value::Bool(false),
    }
}

/// Calls a value builtin. Args are borrowed so the register VM can pass
/// its marshalling buffer (and a group VM a lane slice) without moving.
pub fn dispatch(id: u16, args: &[Value], host: &mut dyn Host) -> Result<Value, VmError> {
    let name = NAMES[id as usize];
    Ok(match name {
        // ------------------------------------------------ strings
        "strlen" => Value::Int(arg_str(args, 0).len() as i64),
        "substr" => {
            let s = arg_str(args, 0);
            let chars: Vec<char> = s.chars().collect();
            let n = chars.len() as i64;
            let mut start = arg_int(args, 1);
            if start < 0 {
                start = (n + start).max(0);
            }
            let start = start.min(n) as usize;
            let len = match args.get(2) {
                None | Some(Value::Null) => n as usize - start,
                Some(v) => {
                    let l = v.to_php_int();
                    if l < 0 {
                        let end = (n + l).max(start as i64) as usize;
                        end - start
                    } else {
                        (l as usize).min(n as usize - start)
                    }
                }
            };
            Value::str(chars[start..start + len].iter().collect::<String>())
        }
        "strpos" => {
            let hay = arg_str(args, 0);
            let needle = arg_str(args, 1);
            let offset = arg_int(args, 2).max(0) as usize;
            if needle.is_empty() || offset > hay.len() {
                Value::Bool(false)
            } else {
                match hay[offset..].find(&needle) {
                    Some(pos) => Value::Int((offset + pos) as i64),
                    None => Value::Bool(false),
                }
            }
        }
        "str_replace" => {
            let subject = arg_str(args, 2);
            let result = match (arg(args, 0), arg(args, 1)) {
                (Value::Array(searches), Value::Array(replaces)) => {
                    let reps: Vec<Value> = replaces.iter().map(|(_, v)| v.clone()).collect();
                    let mut s = subject;
                    for (i, (_, search)) in searches.iter().enumerate() {
                        let rep = reps.get(i).map(|v| v.to_php_string()).unwrap_or_default();
                        s = s.replace(&search.to_php_string(), &rep);
                    }
                    s
                }
                (Value::Array(searches), rep) => {
                    let rep = rep.to_php_string();
                    let mut s = subject;
                    for (_, search) in searches.iter() {
                        s = s.replace(&search.to_php_string(), &rep);
                    }
                    s
                }
                (search, rep) => subject.replace(&search.to_php_string(), &rep.to_php_string()),
            };
            Value::str(result)
        }
        "strtolower" => Value::str(arg_str(args, 0).to_lowercase()),
        "strtoupper" => Value::str(arg_str(args, 0).to_uppercase()),
        "ucfirst" => {
            let s = arg_str(args, 0);
            let mut chars = s.chars();
            Value::str(match chars.next() {
                Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                None => s,
            })
        }
        "trim" => Value::str(arg_str(args, 0).trim().to_string()),
        "ltrim" => Value::str(arg_str(args, 0).trim_start().to_string()),
        "rtrim" => Value::str(arg_str(args, 0).trim_end().to_string()),
        "explode" => {
            let delim = arg_str(args, 0);
            if delim.is_empty() {
                return Err(VmError::Fatal("explode(): empty delimiter".into()));
            }
            let s = arg_str(args, 1);
            Value::array(PhpArray::from_values(
                s.split(&delim).map(Value::str).collect(),
            ))
        }
        "implode" | "join" => {
            // Both implode(glue, arr) and implode(arr).
            let (glue, arr) = match (arg(args, 0), arg(args, 1)) {
                (Value::Array(a), _) => (String::new(), a),
                (g, Value::Array(a)) => (g.to_php_string(), a),
                _ => return Err(VmError::Fatal("implode(): no array given".into())),
            };
            let joined = arr
                .iter()
                .map(|(_, v)| v.to_php_string())
                .collect::<Vec<_>>()
                .join(&glue);
            Value::str(joined)
        }
        "str_repeat" => {
            let s = arg_str(args, 0);
            let n = arg_int(args, 1).max(0) as usize;
            if s.len().saturating_mul(n) > 16 << 20 {
                return Err(VmError::Fatal("str_repeat(): result too large".into()));
            }
            Value::str(s.repeat(n))
        }
        "sprintf" => Value::str(sprintf(&arg_str(args, 0), &args[1..])?),
        "number_format" => {
            let n = arg(args, 0).to_php_float();
            let decimals = if args.len() > 1 {
                arg_int(args, 1).clamp(0, 12) as usize
            } else {
                0
            };
            Value::str(number_format(n, decimals))
        }
        "htmlspecialchars" => {
            let s = arg_str(args, 0);
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    '>' => out.push_str("&gt;"),
                    '"' => out.push_str("&quot;"),
                    '\'' => out.push_str("&#039;"),
                    other => out.push(other),
                }
            }
            Value::str(out)
        }
        "strcmp" => {
            let (a, b) = (arg_str(args, 0), arg_str(args, 1));
            Value::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            })
        }
        "str_pad" => {
            let s = arg_str(args, 0);
            let len = arg_int(args, 1).max(0) as usize;
            let pad = if args.len() > 2 {
                arg_str(args, 2)
            } else {
                " ".to_string()
            };
            if s.len() >= len || pad.is_empty() {
                Value::str(s)
            } else {
                let mut out = s.clone();
                let mut pad_iter = pad.chars().cycle();
                while out.len() < len {
                    out.push(pad_iter.next().expect("cycle never ends"));
                }
                Value::str(out)
            }
        }
        "nl2br" => Value::str(arg_str(args, 0).replace('\n', "<br />\n")),
        "md5" => {
            // Deterministic stand-in, NOT cryptographic: two FNV-1a
            // passes rendered as 32 hex digits (documented in DESIGN.md).
            let s = arg_str(args, 0);
            let h1 = crate::vm::fnv1a(s.as_bytes());
            let mut salted = s.into_bytes();
            salted.push(0x5c);
            let h2 = crate::vm::fnv1a(&salted);
            Value::str(format!("{h1:016x}{h2:016x}"))
        }
        "urlencode" => {
            let s = arg_str(args, 0);
            let mut out = String::new();
            for b in s.bytes() {
                match b {
                    b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => {
                        out.push(b as char)
                    }
                    b' ' => out.push('+'),
                    other => out.push_str(&format!("%{other:02X}")),
                }
            }
            Value::str(out)
        }
        "substr_count" => {
            let hay = arg_str(args, 0);
            let needle = arg_str(args, 1);
            if needle.is_empty() {
                return Err(VmError::Fatal("substr_count(): empty needle".into()));
            }
            Value::Int(hay.matches(&needle).count() as i64)
        }
        // ------------------------------------------------ arrays
        "count" | "sizeof" => match arg(args, 0) {
            Value::Array(a) => Value::Int(a.len() as i64),
            Value::Null => Value::Int(0),
            _ => Value::Int(1),
        },
        "array_keys" => {
            let a = arg_array(args, 0, "array_keys")?;
            Value::array(PhpArray::from_values(
                a.iter().map(|(k, _)| k.to_value()).collect(),
            ))
        }
        "array_values" => {
            let a = arg_array(args, 0, "array_values")?;
            Value::array(PhpArray::from_values(
                a.iter().map(|(_, v)| v.clone()).collect(),
            ))
        }
        "array_merge" => {
            let mut out = PhpArray::new();
            for v in args {
                match v {
                    Value::Array(a) => {
                        for (k, v) in a.iter() {
                            match k {
                                ArrayKey::Int(_) => {
                                    out.push(v.clone());
                                }
                                ArrayKey::Str(_) => out.set(k.clone(), v.clone()),
                            }
                        }
                    }
                    _ => return Err(VmError::Fatal("array_merge(): non-array".into())),
                }
            }
            Value::array(out)
        }
        "array_slice" => {
            let a = arg_array(args, 0, "array_slice")?;
            let pairs = a.to_pairs();
            let n = pairs.len() as i64;
            let mut offset = arg_int(args, 1);
            if offset < 0 {
                offset = (n + offset).max(0);
            }
            let offset = offset.min(n) as usize;
            let len = match args.get(2) {
                None | Some(Value::Null) => n as usize - offset,
                Some(v) => {
                    let l = v.to_php_int();
                    if l < 0 {
                        ((n + l) as usize).saturating_sub(offset)
                    } else {
                        (l as usize).min(n as usize - offset)
                    }
                }
            };
            let mut out = PhpArray::new();
            for (k, v) in pairs.into_iter().skip(offset).take(len) {
                match k {
                    ArrayKey::Int(_) => {
                        out.push(v);
                    }
                    ArrayKey::Str(_) => out.set(k, v),
                }
            }
            Value::array(out)
        }
        "array_reverse" => {
            let a = arg_array(args, 0, "array_reverse")?;
            let mut pairs = a.to_pairs();
            pairs.reverse();
            let mut out = PhpArray::new();
            for (k, v) in pairs {
                match k {
                    ArrayKey::Int(_) => {
                        out.push(v);
                    }
                    ArrayKey::Str(_) => out.set(k, v),
                }
            }
            Value::array(out)
        }
        "in_array" => {
            let needle = arg(args, 0);
            let hay = arg_array(args, 1, "in_array")?;
            let strict = arg(args, 2).is_truthy();
            let found = hay.iter().any(|(_, v)| {
                if strict {
                    needle.identical(v)
                } else {
                    needle.loose_eq(v)
                }
            });
            Value::Bool(found)
        }
        "array_key_exists" => {
            let key = ArrayKey::from_value(&arg(args, 0));
            let a = arg_array(args, 1, "array_key_exists")?;
            Value::Bool(a.has_key(&key))
        }
        "array_search" => {
            let needle = arg(args, 0);
            let hay = arg_array(args, 1, "array_search")?;
            let found = hay
                .iter()
                .find(|(_, v)| needle.loose_eq(v))
                .map(|(k, _)| k.to_value());
            found.unwrap_or(Value::Bool(false))
        }
        "array_sum" => {
            let a = arg_array(args, 0, "array_sum")?;
            let mut int_sum = 0i64;
            let mut float_sum = 0f64;
            let mut is_float = false;
            for (_, v) in a.iter() {
                match v {
                    Value::Float(f) => {
                        is_float = true;
                        float_sum += f;
                    }
                    other => match int_sum.checked_add(other.to_php_int()) {
                        Some(s) => int_sum = s,
                        None => {
                            is_float = true;
                            float_sum += other.to_php_float();
                        }
                    },
                }
            }
            if is_float {
                Value::Float(float_sum + int_sum as f64)
            } else {
                Value::Int(int_sum)
            }
        }
        "range" => {
            let (a, b) = (arg_int(args, 0), arg_int(args, 1));
            let step = if args.len() > 2 {
                arg_int(args, 2).abs().max(1)
            } else {
                1
            };
            let mut vals = Vec::new();
            if a <= b {
                let mut x = a;
                while x <= b {
                    vals.push(Value::Int(x));
                    x += step;
                }
            } else {
                let mut x = a;
                while x >= b {
                    vals.push(Value::Int(x));
                    x -= step;
                }
            }
            if vals.len() > 1 << 22 {
                return Err(VmError::Fatal("range(): result too large".into()));
            }
            Value::array(PhpArray::from_values(vals))
        }
        "array_unique" => {
            let a = arg_array(args, 0, "array_unique")?;
            let mut seen = std::collections::HashSet::new();
            let mut out = PhpArray::new();
            for (k, v) in a.iter() {
                if seen.insert(v.to_php_string()) {
                    out.set(k.clone(), v.clone());
                }
            }
            Value::array(out)
        }
        "array_flip" => {
            let a = arg_array(args, 0, "array_flip")?;
            let mut out = PhpArray::new();
            for (k, v) in a.iter() {
                match v {
                    Value::Int(_) | Value::Str(_) => {
                        out.set(ArrayKey::from_value(v), k.to_value());
                    }
                    // PHP warns and skips other types.
                    _ => {}
                }
            }
            Value::array(out)
        }
        "array_fill" => {
            let start = arg_int(args, 0);
            let num = arg_int(args, 1).max(0);
            if num > 1 << 22 {
                return Err(VmError::Fatal("array_fill(): result too large".into()));
            }
            let v = arg(args, 2);
            let mut out = PhpArray::new();
            for i in 0..num {
                out.set(ArrayKey::Int(start + i), v.clone());
            }
            Value::array(out)
        }
        // ------------------------------------------------ math / types
        "abs" => match arg(args, 0) {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            other => Value::Float(other.to_php_float().abs()),
        },
        "max" | "min" => {
            let want_max = name == "max";
            let candidates: Vec<Value> = match (args.len(), arg(args, 0)) {
                (1, Value::Array(a)) => a.iter().map(|(_, v)| v.clone()).collect(),
                _ => args.to_vec(),
            };
            let mut best: Option<Value> = None;
            for c in candidates {
                best = Some(match best {
                    None => c,
                    Some(b) => {
                        let take = match c.loose_cmp(&b) {
                            Some(std::cmp::Ordering::Greater) => want_max,
                            Some(std::cmp::Ordering::Less) => !want_max,
                            _ => false,
                        };
                        if take {
                            c
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Bool(false))
        }
        "floor" => Value::Float(arg(args, 0).to_php_float().floor()),
        "ceil" => Value::Float(arg(args, 0).to_php_float().ceil()),
        "round" => {
            let n = arg(args, 0).to_php_float();
            let p = if args.len() > 1 {
                arg_int(args, 1).clamp(-12, 12)
            } else {
                0
            };
            let mult = 10f64.powi(p as i32);
            Value::Float((n * mult).round() / mult)
        }
        "intdiv" => {
            let (a, b) = (arg_int(args, 0), arg_int(args, 1));
            if b == 0 {
                return Err(VmError::Fatal("intdiv(): division by zero".into()));
            }
            Value::Int(a / b)
        }
        "pow" => {
            let (a, b) = (arg(args, 0), arg(args, 1));
            match (&a, &b) {
                (Value::Int(x), Value::Int(y)) if *y >= 0 && *y < 63 => {
                    match x.checked_pow(*y as u32) {
                        Some(v) => Value::Int(v),
                        None => Value::Float((*x as f64).powf(*y as f64)),
                    }
                }
                _ => Value::Float(a.to_php_float().powf(b.to_php_float())),
            }
        }
        "sqrt" => Value::Float(arg(args, 0).to_php_float().sqrt()),
        "intval" => Value::Int(arg(args, 0).to_php_int()),
        "floatval" => Value::Float(arg(args, 0).to_php_float()),
        "strval" => Value::str(arg_str(args, 0)),
        "boolval" => Value::Bool(arg(args, 0).is_truthy()),
        "gettype" => Value::str(match arg(args, 0) {
            Value::Null => "NULL",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "double",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
        }),
        "is_int" | "is_integer" => Value::Bool(matches!(arg(args, 0), Value::Int(_))),
        "is_string" => Value::Bool(matches!(arg(args, 0), Value::Str(_))),
        "is_array" => Value::Bool(matches!(arg(args, 0), Value::Array(_))),
        "is_null" => Value::Bool(matches!(arg(args, 0), Value::Null)),
        "is_numeric" => Value::Bool(arg(args, 0).is_numeric()),
        "is_bool" => Value::Bool(matches!(arg(args, 0), Value::Bool(_))),
        "is_float" => Value::Bool(matches!(arg(args, 0), Value::Float(_))),
        // ------------------------------------------------ encoding
        "json_encode" => Value::str(json_encode(&arg(args, 0))),
        // ------------------------------------------------ output
        "print" => {
            host.echo(&arg_str(args, 0));
            Value::Int(1)
        }
        "exit" | "die" => {
            if let Some(v) = args.first() {
                if matches!(v, Value::Str(_)) {
                    host.echo(&v.to_php_string());
                }
            }
            return Err(VmError::Exit);
        }
        "header" => {
            let h = arg_str(args, 0);
            match h.split_once(':') {
                Some((name, value)) => {
                    host.add_header(name.trim().to_string(), value.trim().to_string())
                }
                None => return Err(VmError::Fatal("header(): malformed header".into())),
            }
            Value::Null
        }
        "http_response_code" => {
            let code = arg_int(args, 0);
            if !(100..=599).contains(&code) {
                return Err(VmError::Fatal("http_response_code(): bad code".into()));
            }
            host.set_status(code as u16);
            Value::Bool(true)
        }
        "setcookie" => {
            let (name, value) = (arg_str(args, 0), arg_str(args, 1));
            host.add_header("Set-Cookie".to_string(), format!("{name}={value}"));
            Value::Bool(true)
        }
        // ------------------------------------------------ state
        "session_start" => {
            host.session_start()?;
            Value::Bool(true)
        }
        "apc_fetch" => host.kv_get(&arg_str(args, 0))?,
        "apc_store" => {
            let key = arg_str(args, 0);
            let value = arg(args, 1);
            host.kv_set(&key, Some(&value))?;
            Value::Bool(true)
        }
        "apc_delete" => {
            host.kv_set(&arg_str(args, 0), None)?;
            Value::Bool(true)
        }
        "db_query" => host.db_query(&arg_str(args, 0))?,
        "db_begin" => {
            host.db_begin()?;
            Value::Bool(true)
        }
        "db_commit" => Value::Bool(host.db_commit()?),
        "db_rollback" => {
            host.db_rollback()?;
            Value::Bool(true)
        }
        "db_insert_id" => Value::Int(host.db_insert_id()),
        "db_affected_rows" => Value::Int(host.db_affected_rows()),
        // ------------------------------------------------ nondeterminism
        "time" => Value::Int(host.nd_time()?),
        "microtime" => Value::Float(host.nd_microtime()?),
        "getpid" => Value::Int(host.nd_getpid()?),
        "mt_rand" | "rand" => {
            let raw = host.nd_rand_raw()?;
            mt_rand_reduce(raw, args)?
        }
        "uniqid" => Value::str(host.nd_uniqid()?),
        "mt_getrandmax" => Value::Int(MT_MAX),
        other => {
            return Err(VmError::Fatal(format!(
                "builtin {other}() dispatched through the wrong convention"
            )))
        }
    })
}

const MT_MAX: i64 = 2147483647;

/// Range-reduces a raw random draw per `mt_rand`'s argument forms; the
/// scalar and multivalue VMs share this so replays agree bit-for-bit.
pub fn mt_rand_reduce(raw: i64, args: &[Value]) -> Result<Value, VmError> {
    if args.len() >= 2 {
        let (lo, hi) = (arg_int(args, 0), arg_int(args, 1));
        if hi < lo {
            return Err(VmError::Fatal("mt_rand(): max below min".into()));
        }
        let span = (hi - lo).wrapping_add(1);
        Ok(Value::Int(lo + raw.rem_euclid(span.max(1))))
    } else {
        Ok(Value::Int(raw.rem_euclid(MT_MAX + 1)))
    }
}

/// Calls a by-reference builtin: returns `(new_target, php_return)`.
/// Args are a mutable slice (the register VM passes its register window
/// directly); consumed values are replaced with nulls in place.
pub fn dispatch_byref(id: u16, args: &mut [Value]) -> Result<(Value, Value), VmError> {
    let name = NAMES[id as usize];
    let (target, args) = match args.split_first_mut() {
        Some((t, rest)) => (std::mem::replace(t, Value::Null), rest),
        None => (Value::Null, &mut [] as &mut [Value]),
    };
    let arr = match target {
        Value::Array(a) => a,
        Value::Null => Arc::new(PhpArray::new()),
        other => {
            return Err(VmError::Fatal(format!(
                "{name}() expects an array, {} given",
                other.type_name()
            )))
        }
    };
    Ok(match name {
        "array_push" => {
            let mut arr = arr;
            let a = Arc::make_mut(&mut arr);
            for v in args.iter_mut() {
                a.push(std::mem::replace(v, Value::Null));
            }
            let count = a.len() as i64;
            (Value::Array(arr), Value::Int(count))
        }
        "array_pop" => {
            let mut arr = arr;
            let popped = Arc::make_mut(&mut arr)
                .pop_last()
                .map(|(_, v)| v)
                .unwrap_or(Value::Null);
            (Value::Array(arr), popped)
        }
        "array_shift" => {
            let mut arr = arr;
            let a = Arc::make_mut(&mut arr);
            let shifted = a.shift_first().map(|(_, v)| v).unwrap_or(Value::Null);
            // PHP renumbers integer keys after a shift.
            let renumbered = renumber_int_keys(a);
            (Value::array(renumbered), shifted)
        }
        "array_unshift" => {
            let mut pairs: Vec<(ArrayKey, Value)> = args
                .iter_mut()
                .map(|v| (ArrayKey::Int(0), std::mem::replace(v, Value::Null)))
                .collect();
            pairs.extend(arr.to_pairs());
            let mut out = PhpArray::new();
            for (k, v) in pairs {
                match k {
                    ArrayKey::Int(_) => {
                        out.push(v);
                    }
                    ArrayKey::Str(_) => out.set(k, v),
                }
            }
            let count = out.len() as i64;
            (Value::array(out), Value::Int(count))
        }
        "sort" | "rsort" => {
            let mut values: Vec<Value> = arr.iter().map(|(_, v)| v.clone()).collect();
            values.sort_by(|a, b| a.loose_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            if name == "rsort" {
                values.reverse();
            }
            (
                Value::array(PhpArray::from_values(values)),
                Value::Bool(true),
            )
        }
        "ksort" => {
            let mut pairs = arr.to_pairs();
            pairs.sort_by(|a, b| key_cmp(&a.0, &b.0));
            (Value::array(PhpArray::from_pairs(pairs)), Value::Bool(true))
        }
        "asort" | "arsort" => {
            let mut pairs = arr.to_pairs();
            pairs.sort_by(|a, b| a.1.loose_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if name == "arsort" {
                pairs.reverse();
            }
            (Value::array(PhpArray::from_pairs(pairs)), Value::Bool(true))
        }
        other => {
            return Err(VmError::Fatal(format!(
                "builtin {other}() dispatched through the wrong convention"
            )))
        }
    })
}

fn renumber_int_keys(a: &PhpArray) -> PhpArray {
    let mut out = PhpArray::new();
    for (k, v) in a.iter() {
        match k {
            ArrayKey::Int(_) => {
                out.push(v.clone());
            }
            ArrayKey::Str(_) => out.set(k.clone(), v.clone()),
        }
    }
    out
}

/// Key comparison for `ksort`: numeric keys before and among themselves
/// numerically, string keys bytewise.
fn key_cmp(a: &ArrayKey, b: &ArrayKey) -> std::cmp::Ordering {
    match (a, b) {
        (ArrayKey::Int(x), ArrayKey::Int(y)) => x.cmp(y),
        (ArrayKey::Str(x), ArrayKey::Str(y)) => x.cmp(y),
        (ArrayKey::Int(_), ArrayKey::Str(_)) => std::cmp::Ordering::Less,
        (ArrayKey::Str(_), ArrayKey::Int(_)) => std::cmp::Ordering::Greater,
    }
}

/// A `sprintf` subset: `%s %d %f %x %%` with `%[0][width][.prec]`.
fn sprintf(fmt: &str, args: &[Value]) -> Result<String, VmError> {
    let mut out = String::with_capacity(fmt.len());
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            out.push('%');
            continue;
        }
        let mut zero_pad = false;
        if chars.peek() == Some(&'0') {
            zero_pad = true;
            chars.next();
        }
        let mut width = 0usize;
        while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
            width = width * 10 + chars.next().expect("digit peeked") as usize - '0' as usize;
        }
        let mut precision: Option<usize> = None;
        if chars.peek() == Some(&'.') {
            chars.next();
            let mut p = 0usize;
            while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                p = p * 10 + chars.next().expect("digit peeked") as usize - '0' as usize;
            }
            precision = Some(p);
        }
        let spec = chars
            .next()
            .ok_or_else(|| VmError::Fatal("sprintf(): dangling %".into()))?;
        let v = args.get(next_arg).cloned().unwrap_or(Value::Null);
        next_arg += 1;
        let rendered = match spec {
            's' => {
                let mut s = v.to_php_string();
                if let Some(p) = precision {
                    s.truncate(p);
                }
                s
            }
            'd' => v.to_php_int().to_string(),
            'f' => format!("{:.*}", precision.unwrap_or(6), v.to_php_float()),
            'x' => format!("{:x}", v.to_php_int()),
            'X' => format!("{:X}", v.to_php_int()),
            other => {
                return Err(VmError::Fatal(format!(
                    "sprintf(): unsupported conversion %{other}"
                )))
            }
        };
        if rendered.len() < width {
            let pad = if zero_pad && matches!(spec, 'd' | 'f' | 'x' | 'X') {
                '0'
            } else {
                ' '
            };
            for _ in 0..width - rendered.len() {
                out.push(pad);
            }
        }
        out.push_str(&rendered);
    }
    Ok(out)
}

fn number_format(n: f64, decimals: usize) -> String {
    let negative = n < 0.0;
    let n = n.abs();
    let formatted = format!("{n:.decimals$}");
    let (int_part, frac_part) = match formatted.split_once('.') {
        Some((i, f)) => (i.to_string(), Some(f.to_string())),
        None => (formatted, None),
    };
    let mut grouped = String::new();
    let digits: Vec<char> = int_part.chars().collect();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(*d);
    }
    let mut out = String::new();
    if negative {
        out.push('-');
    }
    out.push_str(&grouped);
    if let Some(f) = frac_part {
        out.push('.');
        out.push_str(&f);
    }
    out
}

fn json_encode(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(true) => "true".to_string(),
        Value::Bool(false) => "false".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format_php_float(*f),
        Value::Str(s) => json_string(s),
        Value::Array(a) => {
            // A "list" (keys exactly 0..n-1 in order) renders as a JSON
            // array; anything else as an object.
            let is_list = a
                .iter()
                .enumerate()
                .all(|(i, (k, _))| matches!(k, ArrayKey::Int(x) if *x == i as i64));
            if is_list {
                let items: Vec<String> = a.iter().map(|(_, v)| json_encode(v)).collect();
                format!("[{}]", items.join(","))
            } else {
                let items: Vec<String> = a
                    .iter()
                    .map(|(k, v)| {
                        let key = match k {
                            ArrayKey::Int(i) => json_string(&i.to_string()),
                            ArrayKey::Str(s) => json_string(s),
                        };
                        format!("{key}:{}", json_encode(v))
                    })
                    .collect();
                format!("{{{}}}", items.join(","))
            }
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            // PHP escapes '/' by default; match that.
            '/' => out.push_str("\\/"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A host that records output; state calls are fatal.
    #[derive(Default)]
    struct TestHost {
        out: String,
    }

    impl Host for TestHost {
        fn echo(&mut self, s: &str) {
            self.out.push_str(s);
        }
        fn add_header(&mut self, _n: String, _v: String) {}
        fn set_status(&mut self, _c: u16) {}
        fn session_start(&mut self) -> Result<(), VmError> {
            Ok(())
        }
        fn kv_get(&mut self, _k: &str) -> Result<Value, VmError> {
            Ok(Value::Bool(false))
        }
        fn kv_set(&mut self, _k: &str, _v: Option<&Value>) -> Result<(), VmError> {
            Ok(())
        }
        fn db_begin(&mut self) -> Result<(), VmError> {
            Ok(())
        }
        fn db_query(&mut self, _sql: &str) -> Result<Value, VmError> {
            Ok(Value::Bool(true))
        }
        fn db_commit(&mut self) -> Result<bool, VmError> {
            Ok(true)
        }
        fn db_rollback(&mut self) -> Result<(), VmError> {
            Ok(())
        }
        fn db_insert_id(&mut self) -> i64 {
            0
        }
        fn db_affected_rows(&mut self) -> i64 {
            0
        }
        fn nd_time(&mut self) -> Result<i64, VmError> {
            Ok(1000)
        }
        fn nd_microtime(&mut self) -> Result<f64, VmError> {
            Ok(1000.5)
        }
        fn nd_getpid(&mut self) -> Result<i64, VmError> {
            Ok(7)
        }
        fn nd_rand_raw(&mut self) -> Result<i64, VmError> {
            Ok(123456)
        }
        fn nd_uniqid(&mut self) -> Result<String, VmError> {
            Ok("uid1".into())
        }
    }

    fn call(name: &str, args: Vec<Value>) -> Value {
        let mut host = TestHost::default();
        dispatch(lookup(name).unwrap(), &args, &mut host).unwrap()
    }

    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn string_builtins() {
        assert!(call("strlen", vec![s("héllo")]).identical(&Value::Int(6))); // Bytes.
        assert!(
            call("substr", vec![s("abcdef"), Value::Int(1), Value::Int(3)]).identical(&s("bcd"))
        );
        assert!(call("substr", vec![s("abcdef"), Value::Int(-2)]).identical(&s("ef")));
        assert!(call("strpos", vec![s("hello"), s("ll")]).identical(&Value::Int(2)));
        assert!(call("strpos", vec![s("hello"), s("x")]).identical(&Value::Bool(false)));
        assert!(call("str_replace", vec![s("a"), s("b"), s("banana")]).identical(&s("bbnbnb")));
        assert!(call("ucfirst", vec![s("wiki")]).identical(&s("Wiki")));
        assert!(call("str_repeat", vec![s("ab"), Value::Int(3)]).identical(&s("ababab")));
        assert!(call("nl2br", vec![s("a\nb")]).identical(&s("a<br />\nb")));
    }

    #[test]
    fn explode_implode_roundtrip() {
        let parts = call("explode", vec![s(","), s("a,b,c")]);
        assert!(call("implode", vec![s("-"), parts]).identical(&s("a-b-c")));
    }

    #[test]
    fn sprintf_subset() {
        assert!(call(
            "sprintf",
            vec![
                s("%s has %d points (%.2f%%)"),
                s("dana"),
                Value::Int(9),
                Value::Float(12.5)
            ]
        )
        .identical(&s("dana has 9 points (12.50%)")));
        assert!(call("sprintf", vec![s("%05d"), Value::Int(42)]).identical(&s("00042")));
        assert!(call("sprintf", vec![s("%x"), Value::Int(255)]).identical(&s("ff")));
    }

    #[test]
    fn htmlspecialchars_escapes() {
        assert!(call("htmlspecialchars", vec![s("<a href=\"x\">&'</a>")])
            .identical(&s("&lt;a href=&quot;x&quot;&gt;&amp;&#039;&lt;/a&gt;")));
    }

    #[test]
    fn number_format_grouping() {
        assert!(call("number_format", vec![Value::Int(1234567)]).identical(&s("1,234,567")));
        assert!(call(
            "number_format",
            vec![Value::Float(1234.5678), Value::Int(2)]
        )
        .identical(&s("1,234.57")));
    }

    #[test]
    fn array_builtins() {
        let mut a = PhpArray::new();
        a.set(ArrayKey::Str("x".into()), Value::Int(1));
        a.set(ArrayKey::Str("y".into()), Value::Int(2));
        let arr = Value::array(a);
        assert!(call("count", vec![arr.clone()]).identical(&Value::Int(2)));
        assert!(call("array_sum", vec![arr.clone()]).identical(&Value::Int(3)));
        assert!(call("in_array", vec![Value::Int(2), arr.clone()]).identical(&Value::Bool(true)));
        assert!(call("array_key_exists", vec![s("x"), arr.clone()]).identical(&Value::Bool(true)));
        assert!(call("array_search", vec![Value::Int(2), arr.clone()]).identical(&s("y")));
        let keys = call("array_keys", vec![arr]);
        assert!(call("implode", vec![s(","), keys]).identical(&s("x,y")));
    }

    #[test]
    fn in_array_strict_mode() {
        let arr = Value::array(PhpArray::from_values(vec![Value::Int(1)]));
        assert!(call("in_array", vec![s("1"), arr.clone()]).identical(&Value::Bool(true)));
        assert!(
            call("in_array", vec![s("1"), arr, Value::Bool(true)]).identical(&Value::Bool(false))
        );
    }

    #[test]
    fn array_merge_renumbers_int_keys() {
        let a = Value::array(PhpArray::from_values(vec![Value::Int(1), Value::Int(2)]));
        let b = Value::array(PhpArray::from_values(vec![Value::Int(3)]));
        let merged = call("array_merge", vec![a, b]);
        match merged {
            Value::Array(m) => {
                let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
                assert_eq!(
                    keys,
                    vec![ArrayKey::Int(0), ArrayKey::Int(1), ArrayKey::Int(2)]
                );
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn byref_builtins() {
        let arr = Value::array(PhpArray::from_values(vec![Value::Int(3), Value::Int(1)]));
        let (sorted, ok) = dispatch_byref(lookup("sort").unwrap(), &mut [arr]).unwrap();
        assert!(ok.identical(&Value::Bool(true)));
        match &sorted {
            Value::Array(a) => {
                let vals: Vec<i64> = a.iter().map(|(_, v)| v.to_php_int()).collect();
                assert_eq!(vals, vec![1, 3]);
            }
            other => panic!("expected array, got {other:?}"),
        }
        let (after_push, count) =
            dispatch_byref(lookup("array_push").unwrap(), &mut [sorted, Value::Int(9)]).unwrap();
        assert!(count.identical(&Value::Int(3)));
        let (after_pop, popped) =
            dispatch_byref(lookup("array_pop").unwrap(), &mut [after_push]).unwrap();
        assert!(popped.identical(&Value::Int(9)));
        let (_, shifted) =
            dispatch_byref(lookup("array_shift").unwrap(), &mut [after_pop]).unwrap();
        assert!(shifted.identical(&Value::Int(1)));
    }

    #[test]
    fn ksort_and_asort() {
        let mut a = PhpArray::new();
        a.set(ArrayKey::Str("b".into()), Value::Int(2));
        a.set(ArrayKey::Str("a".into()), Value::Int(3));
        a.set(ArrayKey::Int(5), Value::Int(1));
        let (ksorted, _) =
            dispatch_byref(lookup("ksort").unwrap(), &mut [Value::array(a.clone())]).unwrap();
        match &ksorted {
            Value::Array(m) => {
                let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
                assert_eq!(
                    keys,
                    vec![
                        ArrayKey::Int(5),
                        ArrayKey::Str("a".into()),
                        ArrayKey::Str("b".into())
                    ]
                );
            }
            other => panic!("expected array, got {other:?}"),
        }
        let (asorted, _) =
            dispatch_byref(lookup("asort").unwrap(), &mut [Value::array(a)]).unwrap();
        match &asorted {
            Value::Array(m) => {
                let vals: Vec<i64> = m.iter().map(|(_, v)| v.to_php_int()).collect();
                assert_eq!(vals, vec![1, 2, 3]);
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn math_builtins() {
        assert!(call("abs", vec![Value::Int(-5)]).identical(&Value::Int(5)));
        assert!(
            call("max", vec![Value::Int(1), Value::Int(9), Value::Int(3)])
                .identical(&Value::Int(9))
        );
        let arr = Value::array(PhpArray::from_values(vec![Value::Int(4), Value::Int(2)]));
        assert!(call("min", vec![arr]).identical(&Value::Int(2)));
        assert!(call("intdiv", vec![Value::Int(7), Value::Int(2)]).identical(&Value::Int(3)));
        assert!(
            call("round", vec![Value::Float(2.567), Value::Int(2)]).identical(&Value::Float(2.57))
        );
        assert!(call("pow", vec![Value::Int(2), Value::Int(10)]).identical(&Value::Int(1024)));
    }

    #[test]
    fn json_encode_shapes() {
        let list = Value::array(PhpArray::from_values(vec![
            Value::Int(1),
            Value::str("a\"b"),
            Value::Null,
        ]));
        assert!(call("json_encode", vec![list]).identical(&s("[1,\"a\\\"b\",null]")));
        let mut obj = PhpArray::new();
        obj.set(ArrayKey::Str("k".into()), Value::Bool(true));
        obj.set(ArrayKey::Int(7), Value::Float(1.5));
        assert!(
            call("json_encode", vec![Value::array(obj)]).identical(&s("{\"k\":true,\"7\":1.5}"))
        );
    }

    #[test]
    fn nondet_through_host() {
        assert!(call("time", vec![]).identical(&Value::Int(1000)));
        assert!(call("getpid", vec![]).identical(&Value::Int(7)));
        // mt_rand(1, 10) reduces the raw draw into range.
        let v = call("mt_rand", vec![Value::Int(1), Value::Int(10)]);
        let i = v.to_php_int();
        assert!((1..=10).contains(&i));
    }

    #[test]
    fn md5_is_stable_and_hex() {
        let a = call("md5", vec![s("hello")]);
        let b = call("md5", vec![s("hello")]);
        assert!(a.identical(&b));
        let text = a.to_php_string();
        assert_eq!(text.len(), 32);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(!call("md5", vec![s("hellp")]).identical(&a));
    }

    #[test]
    fn urlencode_rules() {
        assert!(call("urlencode", vec![s("a b&c=d")]).identical(&s("a+b%26c%3Dd")));
    }

    #[test]
    fn range_builtin() {
        let up = call("range", vec![Value::Int(1), Value::Int(4)]);
        assert!(call("implode", vec![s(","), up]).identical(&s("1,2,3,4")));
        let down = call("range", vec![Value::Int(3), Value::Int(1)]);
        assert!(call("implode", vec![s(","), down]).identical(&s("3,2,1")));
    }

    #[test]
    fn exit_is_not_an_error() {
        let mut host = TestHost::default();
        let r = dispatch(lookup("die").unwrap(), &[s("bye")], &mut host);
        assert_eq!(r.unwrap_err(), VmError::Exit);
        assert_eq!(host.out, "bye");
    }

    #[test]
    fn byref_start_invariant() {
        assert!(is_byref(lookup("sort").unwrap()));
        assert!(is_byref(lookup("array_push").unwrap()));
        assert!(!is_byref(lookup("count").unwrap()));
        assert!(!is_byref(lookup("time").unwrap()));
    }
}
