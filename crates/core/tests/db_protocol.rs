//! The §A.7 per-query transaction protocol, tested directly against the
//! audit context: queries are checked one at a time, interleaved with
//! program execution, and every protocol violation has a precise
//! rejection.

use orochi_common::ids::{CtlFlowTag, OpNum, RequestId};
use orochi_core::audit::{audit, AuditConfig, Rejection};
use orochi_core::exec::{DbQueryResult, FnExecutor};
use orochi_core::reports::Reports;
use orochi_sqldb::{Database, ExecOutcome, SqlValue};
use orochi_state::object::{DbWriteResult, ObjectName, OpContents};
use orochi_state::oplog::{OpLog, OpLogEntry, OpLogs};
use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};

const RID: RequestId = RequestId(1);
const INSERT: &str = "INSERT INTO t (v) VALUES ('x')";
const SELECT: &str = "SELECT id, v FROM t";

fn trace(body: &str) -> Trace {
    Trace {
        events: vec![
            Event::Request(RID, HttpRequest::get("/t.php", &[])),
            Event::Response(RID, HttpResponse::ok(RID, body)),
        ],
    }
}

/// One committed transaction: INSERT (id 1) then SELECT.
fn reports() -> Reports {
    let entry = OpLogEntry {
        rid: RID,
        opnum: OpNum(1),
        contents: OpContents::DbOp {
            queries: vec![INSERT.to_string(), SELECT.to_string()],
            succeeded: true,
            write_results: vec![
                Some(DbWriteResult {
                    affected: 1,
                    last_insert_id: Some(1),
                }),
                None,
            ],
        },
    };
    Reports {
        groupings: vec![(CtlFlowTag(1), vec![RID])],
        op_logs: OpLogs::from_pairs(vec![(
            ObjectName("db:main".into()),
            OpLog::from_entries(vec![entry]),
        )]),
        op_counts: [(RID, 1)].into_iter().collect(),
        nondet: Default::default(),
    }
}

fn config() -> AuditConfig {
    let mut db = Database::new();
    db.execute_autocommit("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)")
        .0
        .unwrap();
    let mut config = AuditConfig::new();
    config.initial_dbs.insert("db:main".to_string(), db);
    config
}

#[test]
fn faithful_transaction_accepted() {
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let mut h = ctx.db_begin(rid, &ObjectName("db:main".into()))?;
        let w = ctx.db_query(&mut h, INSERT)?;
        assert!(matches!(w, DbQueryResult::Ok(ExecOutcome::Write(_))));
        let r = ctx.db_query(&mut h, SELECT)?;
        // The SELECT sees the INSERT through intra-transaction
        // visibility (ts = s*MAXQ + q).
        let body = match r {
            DbQueryResult::Ok(ExecOutcome::Rows { rows, .. }) => {
                assert_eq!(rows[0][1], SqlValue::Text("x".into()));
                rows.len().to_string()
            }
            other => panic!("expected rows, got {other:?}"),
        };
        let ok = ctx.db_finish(h, true)?;
        assert!(ok);
        Ok(vec![(rid, HttpResponse::ok(rid, body))])
    });
    audit(&trace("1"), &reports(), &mut exec, &config())
        .unwrap_or_else(|r| panic!("faithful transaction rejected: {r}"));
}

#[test]
fn extra_query_rejected() {
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let mut h = ctx.db_begin(rid, &ObjectName("db:main".into()))?;
        ctx.db_query(&mut h, INSERT)?;
        ctx.db_query(&mut h, SELECT)?;
        ctx.db_query(&mut h, SELECT)?; // One more than logged.
        let _ = ctx.db_finish(h, true)?;
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let err = audit(&trace("1"), &reports(), &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::DbTooManyQueries { .. }));
}

#[test]
fn missing_query_rejected() {
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let mut h = ctx.db_begin(rid, &ObjectName("db:main".into()))?;
        ctx.db_query(&mut h, INSERT)?;
        let _ = ctx.db_finish(h, true)?; // Logged 2, issued 1.
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let err = audit(&trace("1"), &reports(), &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::DbQueryCountMismatch { .. }));
}

#[test]
fn different_sql_text_rejected() {
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let mut h = ctx.db_begin(rid, &ObjectName("db:main".into()))?;
        ctx.db_query(&mut h, "INSERT INTO t (v) VALUES ('y')")?;
        ctx.db_query(&mut h, SELECT)?;
        let _ = ctx.db_finish(h, true)?;
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let err = audit(&trace("1"), &reports(), &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::DbQueryMismatch { query: 1, .. }));
}

#[test]
fn rollback_against_committed_log_rejected() {
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let mut h = ctx.db_begin(rid, &ObjectName("db:main".into()))?;
        ctx.db_query(&mut h, INSERT)?;
        ctx.db_query(&mut h, SELECT)?;
        let _ = ctx.db_finish(h, false)?; // Program rolls back; log says committed.
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let err = audit(&trace("1"), &reports(), &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::DbCommitMismatch { .. }));
}

#[test]
fn state_op_inside_transaction_rejected() {
    // The SSCO model forbids nesting object operations in a transaction
    // (§4.4).
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let mut h = ctx.db_begin(rid, &ObjectName("db:main".into()))?;
        ctx.db_query(&mut h, INSERT)?;
        // A register read while the transaction is open.
        let _ = ctx.register_read(rid, &ObjectName("reg:sess:x".into()))?;
        ctx.db_query(&mut h, SELECT)?;
        let _ = ctx.db_finish(h, true)?;
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let err = audit(&trace("1"), &reports(), &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::StateOpDuringTxn { .. }));
}

#[test]
fn nondet_exhaustion_and_leftover_rejected() {
    // No nondet was recorded: consuming any must reject.
    let mut exec = FnExecutor::new(|requests, ctx| {
        let (rid, _) = requests[0];
        let _ = ctx.nondet(rid, "time")?;
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let mut reports0 = reports();
    reports0.op_counts.insert(RID, 0);
    reports0.op_logs = OpLogs::new();
    let err = audit(&trace("1"), &reports0, &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::NondetExhausted { .. }));

    // A recorded value left unconsumed must also reject.
    let mut reports1 = reports();
    reports1.op_counts.insert(RID, 0);
    reports1.op_logs = OpLogs::new();
    reports1
        .nondet
        .push(RID, orochi_core::nondet::NondetValue::Time(5));
    let mut exec = FnExecutor::new(|requests, _ctx| {
        let (rid, _) = requests[0];
        Ok(vec![(rid, HttpResponse::ok(rid, "1"))])
    });
    let err = audit(&trace("1"), &reports1, &mut exec, &config()).unwrap_err();
    assert!(matches!(err, Rejection::NondetLeftover { .. }));
}
