//! The untrusted reports the executor hands the verifier (§3, §4.6).
//!
//! Four report types:
//!
//! 1. **Control-flow groupings** `C`: an opaque tag per request;
//!    same-tag requests are supposed to share a control-flow path.
//! 2. **Operation logs** `OL_i`: one ordered log per shared object.
//! 3. **Operation counts** `M`: the number of object operations each
//!    request issued.
//! 4. **Nondeterminism** (OROCHI's addition): recorded return values of
//!    nondeterministic builtins.
//!
//! All of it is untrusted; the audit validates it as a whole.

use crate::nondet::NondetLog;
use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::{CtlFlowTag, RequestId};
use orochi_state::oplog::OpLogs;
use std::collections::HashMap;

/// The full report bundle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Reports {
    /// `C`: control-flow tag -> requestIDs (§3.1).
    pub groupings: Vec<(CtlFlowTag, Vec<RequestId>)>,
    /// `OL_1..OL_n`: per-object operation logs (§3.3).
    pub op_logs: OpLogs,
    /// `M`: requestID -> total object-operation count (§3.3).
    pub op_counts: HashMap<RequestId, u32>,
    /// Recorded nondeterministic builtin results (§4.6).
    pub nondet: NondetLog,
}

impl Reports {
    /// Creates an empty report bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// `M(rid)`: the claimed operation count, defaulting to 0 for
    /// requests the executor did not mention.
    pub fn op_count(&self, rid: RequestId) -> u32 {
        self.op_counts.get(&rid).copied().unwrap_or(0)
    }

    /// Total operations across all logs (the paper's `Y`).
    pub fn total_ops(&self) -> usize {
        self.op_logs.total_ops()
    }

    /// Total encoded size in bytes (the Fig. 8 "reports" column).
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }

    /// Encoded size of the nondeterminism report alone — the paper's
    /// stand-in for what a baseline record-replay system would ship
    /// (§5.1: "we capture the baseline's report size with OROCHI's
    /// non-deterministic reports").
    pub fn nondet_wire_size(&self) -> usize {
        self.nondet.to_wire_bytes().len()
    }
}

impl Wire for Reports {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.groupings.len() as u64);
        for (tag, rids) in &self.groupings {
            tag.encode(enc);
            rids.encode(enc);
        }
        self.op_logs.encode(enc);
        let mut counts: Vec<(&RequestId, &u32)> = self.op_counts.iter().collect();
        counts.sort();
        enc.u64(counts.len() as u64);
        for (rid, count) in counts {
            rid.encode(enc);
            enc.u64(*count as u64);
        }
        self.nondet.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.u64()? as usize;
        if n > dec.remaining() {
            return Err(WireError::Malformed("grouping count exceeds buffer"));
        }
        let mut groupings = Vec::with_capacity(n);
        for _ in 0..n {
            groupings.push((CtlFlowTag::decode(dec)?, Vec::<RequestId>::decode(dec)?));
        }
        let op_logs = OpLogs::decode(dec)?;
        let m = dec.u64()? as usize;
        if m > dec.remaining() {
            return Err(WireError::Malformed("count entries exceed buffer"));
        }
        let mut op_counts = HashMap::with_capacity(m);
        for _ in 0..m {
            let rid = RequestId::decode(dec)?;
            let count = dec.u64()?;
            if count > u32::MAX as u64 {
                return Err(WireError::Malformed("op count out of range"));
            }
            if op_counts.insert(rid, count as u32).is_some() {
                return Err(WireError::Malformed("duplicate rid in op counts"));
            }
        }
        let nondet = NondetLog::decode(dec)?;
        Ok(Self {
            groupings,
            op_logs,
            op_counts,
            nondet,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::NondetValue;
    use orochi_common::ids::OpNum;
    use orochi_state::object::{ObjectName, OpContents};
    use orochi_state::oplog::{OpLog, OpLogEntry};

    fn sample() -> Reports {
        let mut log = OpLog::new();
        log.push(OpLogEntry {
            rid: RequestId(1),
            opnum: OpNum(1),
            contents: OpContents::KvGet { key: "k".into() },
        });
        let mut nondet = NondetLog::new();
        nondet.push(RequestId(1), NondetValue::Time(99));
        Reports {
            groupings: vec![(CtlFlowTag(0xabc), vec![RequestId(1), RequestId(2)])],
            op_logs: OpLogs::from_pairs(vec![(ObjectName::kv("apc"), log)]),
            op_counts: [(RequestId(1), 1), (RequestId(2), 0)].into_iter().collect(),
            nondet,
        }
    }

    #[test]
    fn op_count_defaults_to_zero() {
        let r = sample();
        assert_eq!(r.op_count(RequestId(1)), 1);
        assert_eq!(r.op_count(RequestId(999)), 0);
    }

    #[test]
    fn wire_roundtrip() {
        let r = sample();
        let bytes = r.to_wire_bytes();
        assert_eq!(Reports::from_wire_bytes(&bytes).unwrap(), r);
    }

    #[test]
    fn sizes_are_positive_and_ordered() {
        let r = sample();
        assert!(r.wire_size() > r.nondet_wire_size());
        assert_eq!(r.total_ops(), 1);
    }
}
