//! Time-precedence graph construction (§3.5, Fig. 6, §A.8).
//!
//! The verifier must materialize the trace's time-precedence partial
//! order `<Tr` (request `r1` precedes `r2` iff `r1`'s response departed
//! before `r2`'s request arrived) as graph edges. The paper contributes a
//! streaming algorithm that runs in `O(X + Z)` time — `X` requests, `Z`
//! the *minimum* number of edges needed (Lemma 12) — improving on
//! Anderson et al.'s `O(X·log X + Z)` offline algorithm. The algorithm
//! tracks a *frontier*: the set of latest, mutually concurrent requests;
//! every new arrival descends from all frontier members, and a departing
//! request evicts its parents from the frontier.
//!
//! # Implementation contract
//!
//! The frontier here is a **bitset over dense request indices** (see
//! [`orochi_trace::RidInterner`]): one bit per request, set while the
//! request is a frontier member. Iterating set bits in word order
//! yields indices ascending, so every run emits the edge list in the
//! same order — per arrival, parents ascend by arrival index. (Earlier
//! implementations used a `HashSet`, whose iteration order varied run
//! to run, then a sorted index array, whose `O(w)` memmoves made
//! adversarially wide frontiers quadratic in the width `w`.)
//!
//! [`for_each_frontier_edge`] is the streaming core: it emits each edge
//! as a `(from, to)` pair of dense indices through a callback and never
//! materializes an edge list, which is what lets the Fig. 5 graph
//! builder ([`crate::graph`]) stream the edges straight into its
//! two-pass CSR construction. Costs, in the terms of Lemma 11/12:
//!
//! * edge emission — `O(X + Z)` set-bit visits: each arrival emits
//!   exactly its parent set (`trailing_zeros` per member), and parent
//!   lists are recorded in a flat arena (requests arrive in dense-index
//!   order, so the arena is append-only);
//! * frontier maintenance — **O(1)** per membership change: responses
//!   set their own bit and clear each recorded parent's bit directly,
//!   with no memmove and no binary search;
//! * per arrival, the scan walks the words between the lowest and
//!   highest live bit (tracked bounds), skipping zero words at one
//!   word-read each — 64 potential members per read, which is what
//!   keeps adversarially wide concurrency (hundreds of in-flight
//!   requests) linear where the sorted array degraded.
//!
//! [`create_time_precedence_graph`] wraps the stream back into the
//! explicit [`TimePrecedenceGraph`] edge list for tests and tools;
//! [`dense_time_precedence`] is the quadratic reference implementation
//! used as a property-test oracle and as the naive baseline in the
//! `timeprec` ablation bench.

use orochi_common::ids::RequestId;
use orochi_trace::record::{BalancedTrace, DenseEvent, Event, RidInterner};
use std::collections::{HashMap, HashSet};

/// Explicit materialization of `<Tr`: `r1 <Tr r2` iff the graph has a
/// directed path from `r1` to `r2` (Lemma 2), with the minimum number of
/// edges (Lemma 12).
#[derive(Debug, Clone, Default)]
pub struct TimePrecedenceGraph {
    /// All requestIDs, in arrival order.
    pub nodes: Vec<RequestId>,
    /// Edges `(from, to)`; `from`'s response departed before `to`'s
    /// request arrived. Deterministically ordered: grouped by arriving
    /// request (trace order), sources ascending by arrival index.
    pub edges: Vec<(RequestId, RequestId)>,
}

impl TimePrecedenceGraph {
    /// Out-neighbour adjacency for traversals.
    pub fn adjacency(&self) -> HashMap<RequestId, Vec<RequestId>> {
        let mut adj: HashMap<RequestId, Vec<RequestId>> = HashMap::new();
        for rid in &self.nodes {
            adj.entry(*rid).or_default();
        }
        for (from, to) in &self.edges {
            adj.entry(*from).or_default().push(*to);
        }
        adj
    }

    /// True if a directed path exists from `from` to `to` (BFS; used by
    /// tests — the audit itself never needs reachability queries).
    pub fn has_path(&self, from: RequestId, to: RequestId) -> bool {
        let adj = self.adjacency();
        let mut seen = HashSet::new();
        let mut queue = vec![from];
        while let Some(cur) = queue.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(next) = adj.get(&cur) {
                queue.extend(next.iter().copied());
            }
        }
        false
    }
}

/// `CreateTimePrecedenceGraph` (Fig. 6), streaming core: runs the
/// frontier algorithm over a pre-interned trace and emits every edge
/// `(from, to)` — as **dense arrival indices** — through `emit`, without
/// materializing an edge list.
///
/// Edge order is deterministic: edges are emitted grouped by arriving
/// request, in trace order, with each arrival's parents ascending by
/// index (set bits are visited in word-then-bit order). The stream is
/// side-effect-free on the interner, so callers needing two passes over
/// the same edges — like the CSR builder's count-then-fill construction
/// in [`crate::graph`] — simply call it twice.
///
/// Zero hashing: the interner resolved every requestID up front, and
/// this function touches only flat `u64`/`u32` arrays.
pub fn for_each_frontier_edge(interner: &RidInterner, mut emit: impl FnMut(u32, u32)) {
    let x = interner.num_requests();
    // "Latest" requests — the frontier — as a bitset over dense
    // indices; "parent(s)" of any new request. `lo..hi` bounds the
    // words that may hold live bits.
    let mut frontier: Vec<u64> = vec![0; x.div_ceil(64)];
    let (mut lo, mut hi) = (0usize, 0usize);
    // Parent lists live in one flat arena: arrivals happen in dense
    // index order, so request `k`'s parents occupy
    // `parents[parent_off[k]..parent_off[k + 1]]`.
    let mut parents: Vec<u32> = Vec::new();
    let mut parent_off: Vec<u32> = Vec::with_capacity(x + 1);
    parent_off.push(0);
    for event in interner.dense_events() {
        match event {
            DenseEvent::Request(idx) => {
                debug_assert_eq!(parent_off.len() as u32 - 1, idx, "arrival order");
                // Leading zero words are dead — cleared parents never
                // resurrect below the lowest live bit — so tighten the
                // bound while skipping them.
                while lo < hi && frontier[lo] == 0 {
                    lo += 1;
                }
                for (w, word) in frontier.iter().enumerate().take(hi).skip(lo) {
                    let mut bits = *word;
                    while bits != 0 {
                        let p = (w as u32) * 64 + bits.trailing_zeros();
                        emit(p, idx);
                        parents.push(p);
                        bits &= bits - 1;
                    }
                }
                parent_off.push(parents.len() as u32);
            }
            DenseEvent::Response(idx) => {
                // idx enters the frontier, evicting its parents. A
                // parent may already be gone — evicted by a sibling
                // whose response departed first; clearing a cleared
                // bit is a no-op.
                let (s, e) = (parent_off[idx as usize], parent_off[idx as usize + 1]);
                for k in s..e {
                    let p = parents[k as usize] as usize;
                    frontier[p / 64] &= !(1u64 << (p % 64));
                }
                let w = idx as usize / 64;
                debug_assert_eq!(
                    frontier[w] & (1u64 << (idx as usize % 64)),
                    0,
                    "balanced: one response per request"
                );
                frontier[w] |= 1u64 << (idx as usize % 64);
                lo = lo.min(w);
                hi = hi.max(w + 1);
            }
        }
    }
}

/// `CreateTimePrecedenceGraph` (Fig. 6): streaming construction of the
/// time-precedence graph in `O(X + Z)`.
///
/// This is the edge-list wrapper around [`for_each_frontier_edge`] used
/// by tests, benches, and tools; the audit's Fig. 5 graph builder
/// streams the same edges directly into its CSR arrays instead.
///
/// # Examples
///
/// ```
/// use orochi_common::ids::RequestId;
/// use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};
/// use orochi_core::precedence::create_time_precedence_graph;
///
/// // r1 completes before r2 arrives: r1 <Tr r2.
/// let (r1, r2) = (RequestId(1), RequestId(2));
/// let trace = Trace { events: vec![
///     Event::Request(r1, HttpRequest::get("/a", &[])),
///     Event::Response(r1, HttpResponse::ok(r1, "x")),
///     Event::Request(r2, HttpRequest::get("/b", &[])),
///     Event::Response(r2, HttpResponse::ok(r2, "y")),
/// ]};
/// let g = create_time_precedence_graph(&trace.ensure_balanced().unwrap());
/// assert_eq!(g.edges, vec![(r1, r2)]);
/// ```
pub fn create_time_precedence_graph(trace: &BalancedTrace) -> TimePrecedenceGraph {
    let interner = trace.intern_rids();
    let mut edges = Vec::new();
    for_each_frontier_edge(&interner, |from, to| {
        edges.push((interner.rid(from), interner.rid(to)));
    });
    TimePrecedenceGraph {
        nodes: interner.rids().to_vec(),
        edges,
    }
}

/// Quadratic reference construction: one edge for **every** pair with
/// `r1 <Tr r2` (no transitive reduction). Same reachability as the
/// frontier algorithm; `O(X²)` time and edges. This plays the role of
/// the naive baseline in the `timeprec` bench and the oracle in property
/// tests.
pub fn dense_time_precedence(trace: &BalancedTrace) -> TimePrecedenceGraph {
    let mut graph = TimePrecedenceGraph::default();
    let rids: Vec<RequestId> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Request(rid, _) => Some(*rid),
            Event::Response(..) => None,
        })
        .collect();
    graph.nodes = rids.clone();
    for r1 in &rids {
        for r2 in &rids {
            if trace.precedes(*r1, *r2) {
                graph.edges.push((*r1, *r2));
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_trace::{HttpRequest, HttpResponse, Trace};

    fn req(rid: u64) -> Event {
        Event::Request(RequestId(rid), HttpRequest::get("/x", &[]))
    }

    fn resp(rid: u64) -> Event {
        Event::Response(RequestId(rid), HttpResponse::ok(RequestId(rid), "ok"))
    }

    fn balanced(events: Vec<Event>) -> BalancedTrace {
        Trace { events }.ensure_balanced().unwrap()
    }

    #[test]
    fn sequential_chain_uses_transitive_reduction() {
        // r1 < r2 < r3; the frontier algorithm emits only the two
        // covering edges, not (r1, r3).
        let t = balanced(vec![req(1), resp(1), req(2), resp(2), req(3), resp(3)]);
        let g = create_time_precedence_graph(&t);
        assert_eq!(
            g.edges,
            vec![(RequestId(1), RequestId(2)), (RequestId(2), RequestId(3))]
        );
        // Reachability still holds transitively.
        assert!(g.has_path(RequestId(1), RequestId(3)));
    }

    #[test]
    fn concurrent_requests_have_no_edges() {
        let t = balanced(vec![req(1), req(2), resp(2), resp(1)]);
        let g = create_time_precedence_graph(&t);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn epoch_pattern_forms_bipartite_links() {
        // Two epochs of two concurrent requests each.
        let t = balanced(vec![
            req(1),
            req(2),
            resp(1),
            resp(2),
            req(3),
            req(4),
            resp(3),
            resp(4),
        ]);
        let g = create_time_precedence_graph(&t);
        let mut edges = g.edges.clone();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (RequestId(1), RequestId(3)),
                (RequestId(1), RequestId(4)),
                (RequestId(2), RequestId(3)),
                (RequestId(2), RequestId(4)),
            ]
        );
    }

    #[test]
    fn edge_order_is_index_ordered_and_deterministic() {
        // Per arrival, parents must ascend by arrival index — and the
        // whole edge list must be identical across constructions (the
        // old hash-set frontier varied run to run).
        let t = balanced(vec![
            req(1),
            req(2),
            req(3),
            resp(3),
            resp(1),
            resp(2),
            req(4),
            resp(4),
        ]);
        let g = create_time_precedence_graph(&t);
        assert_eq!(
            g.edges,
            vec![
                (RequestId(1), RequestId(4)),
                (RequestId(2), RequestId(4)),
                (RequestId(3), RequestId(4)),
            ]
        );
        for _ in 0..4 {
            assert_eq!(create_time_precedence_graph(&t).edges, g.edges);
        }
    }

    #[test]
    fn eviction_keeps_frontier_minimal() {
        // r1 finishes; r2 (arrived after r1 finished) finishes; then r3
        // arrives: r3 descends only from r2 (r1 was evicted), and r1's
        // precedence is implied transitively.
        let t = balanced(vec![req(1), resp(1), req(2), resp(2), req(3), resp(3)]);
        let g = create_time_precedence_graph(&t);
        let from_r1: Vec<_> = g.edges.iter().filter(|(f, _)| *f == RequestId(1)).collect();
        assert_eq!(from_r1.len(), 1);
    }

    #[test]
    fn matches_dense_oracle_reachability() {
        // A mixed pattern: overlapping and nested requests.
        let t = balanced(vec![
            req(1),
            req(2),
            resp(1),
            req(3),
            resp(3),
            resp(2),
            req(4),
            resp(4),
        ]);
        let fast = create_time_precedence_graph(&t);
        let dense = dense_time_precedence(&t);
        for r1 in &dense.nodes {
            for r2 in &dense.nodes {
                if r1 == r2 {
                    continue;
                }
                assert_eq!(
                    fast.has_path(*r1, *r2),
                    t.precedes(*r1, *r2),
                    "path({r1},{r2})"
                );
                assert_eq!(
                    dense.has_path(*r1, *r2),
                    t.precedes(*r1, *r2),
                    "dense({r1},{r2})"
                );
            }
        }
    }

    #[test]
    fn edge_count_is_minimal_for_epochs() {
        // P concurrent requests per epoch, E epochs: the minimum edge set
        // is the complete bipartite graph between adjacent epochs,
        // P*P*(E-1) edges (§A.8's intuition for Z).
        let (p, e) = (4u64, 3u64);
        let mut events = Vec::new();
        for epoch in 0..e {
            for i in 0..p {
                events.push(req(epoch * p + i + 1));
            }
            for i in 0..p {
                events.push(resp(epoch * p + i + 1));
            }
        }
        let t = balanced(events);
        let g = create_time_precedence_graph(&t);
        assert_eq!(g.edges.len() as u64, p * p * (e - 1));
    }

    #[test]
    fn empty_trace_yields_empty_graph() {
        let t = balanced(vec![]);
        let g = create_time_precedence_graph(&t);
        assert!(g.nodes.is_empty());
        assert!(g.edges.is_empty());
    }
}
