//! Time-precedence graph construction (§3.5, Fig. 6, §A.8).
//!
//! The verifier must materialize the trace's time-precedence partial
//! order `<Tr` (request `r1` precedes `r2` iff `r1`'s response departed
//! before `r2`'s request arrived) as graph edges. The paper contributes a
//! streaming algorithm that runs in `O(X + Z)` time — `X` requests, `Z`
//! the *minimum* number of edges needed — improving on Anderson et al.'s
//! `O(X·log X + Z)` offline algorithm. The algorithm tracks a *frontier*:
//! the set of latest, mutually concurrent requests; every new arrival
//! descends from all frontier members, and a departing request evicts its
//! parents from the frontier.
//!
//! [`dense_time_precedence`] is the quadratic reference implementation
//! used as a property-test oracle and as the naive baseline in the
//! `timeprec` ablation bench.

use orochi_common::ids::RequestId;
use orochi_trace::record::{BalancedTrace, Event};
use std::collections::{HashMap, HashSet};

/// Explicit materialization of `<Tr`: `r1 <Tr r2` iff the graph has a
/// directed path from `r1` to `r2` (Lemma 2), with the minimum number of
/// edges (Lemma 12).
#[derive(Debug, Clone, Default)]
pub struct TimePrecedenceGraph {
    /// All requestIDs, in arrival order.
    pub nodes: Vec<RequestId>,
    /// Edges `(from, to)`; `from`'s response departed before `to`'s
    /// request arrived.
    pub edges: Vec<(RequestId, RequestId)>,
}

impl TimePrecedenceGraph {
    /// Out-neighbour adjacency for traversals.
    pub fn adjacency(&self) -> HashMap<RequestId, Vec<RequestId>> {
        let mut adj: HashMap<RequestId, Vec<RequestId>> = HashMap::new();
        for rid in &self.nodes {
            adj.entry(*rid).or_default();
        }
        for (from, to) in &self.edges {
            adj.entry(*from).or_default().push(*to);
        }
        adj
    }

    /// True if a directed path exists from `from` to `to` (BFS; used by
    /// tests — the audit itself never needs reachability queries).
    pub fn has_path(&self, from: RequestId, to: RequestId) -> bool {
        let adj = self.adjacency();
        let mut seen = HashSet::new();
        let mut queue = vec![from];
        while let Some(cur) = queue.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(next) = adj.get(&cur) {
                queue.extend(next.iter().copied());
            }
        }
        false
    }
}

/// `CreateTimePrecedenceGraph` (Fig. 6): streaming construction of the
/// time-precedence graph in `O(X + Z)`.
///
/// # Examples
///
/// ```
/// use orochi_common::ids::RequestId;
/// use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};
/// use orochi_core::precedence::create_time_precedence_graph;
///
/// // r1 completes before r2 arrives: r1 <Tr r2.
/// let (r1, r2) = (RequestId(1), RequestId(2));
/// let trace = Trace { events: vec![
///     Event::Request(r1, HttpRequest::get("/a", &[])),
///     Event::Response(r1, HttpResponse::ok(r1, "x")),
///     Event::Request(r2, HttpRequest::get("/b", &[])),
///     Event::Response(r2, HttpResponse::ok(r2, "y")),
/// ]};
/// let g = create_time_precedence_graph(&trace.ensure_balanced().unwrap());
/// assert_eq!(g.edges, vec![(r1, r2)]);
/// ```
pub fn create_time_precedence_graph(trace: &BalancedTrace) -> TimePrecedenceGraph {
    let mut graph = TimePrecedenceGraph::default();
    // "Latest" requests; "parent(s)" of any new request.
    let mut frontier: HashSet<RequestId> = HashSet::new();
    let mut parents: HashMap<RequestId, Vec<RequestId>> = HashMap::new();
    for event in trace.events() {
        match event {
            Event::Request(rid, _) => {
                graph.nodes.push(*rid);
                let mut my_parents = Vec::with_capacity(frontier.len());
                for r in &frontier {
                    graph.edges.push((*r, *rid));
                    my_parents.push(*r);
                }
                parents.insert(*rid, my_parents);
            }
            Event::Response(rid, _) => {
                // rid enters the frontier, evicting its parents.
                if let Some(my_parents) = parents.get(rid) {
                    for p in my_parents {
                        frontier.remove(p);
                    }
                }
                frontier.insert(*rid);
            }
        }
    }
    graph
}

/// Quadratic reference construction: one edge for **every** pair with
/// `r1 <Tr r2` (no transitive reduction). Same reachability as the
/// frontier algorithm; `O(X²)` time and edges. This plays the role of
/// the naive baseline in the `timeprec` bench and the oracle in property
/// tests.
pub fn dense_time_precedence(trace: &BalancedTrace) -> TimePrecedenceGraph {
    let mut graph = TimePrecedenceGraph::default();
    let rids: Vec<RequestId> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Request(rid, _) => Some(*rid),
            Event::Response(..) => None,
        })
        .collect();
    graph.nodes = rids.clone();
    for r1 in &rids {
        for r2 in &rids {
            if trace.precedes(*r1, *r2) {
                graph.edges.push((*r1, *r2));
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_trace::{HttpRequest, HttpResponse, Trace};

    fn req(rid: u64) -> Event {
        Event::Request(RequestId(rid), HttpRequest::get("/x", &[]))
    }

    fn resp(rid: u64) -> Event {
        Event::Response(RequestId(rid), HttpResponse::ok(RequestId(rid), "ok"))
    }

    fn balanced(events: Vec<Event>) -> BalancedTrace {
        Trace { events }.ensure_balanced().unwrap()
    }

    #[test]
    fn sequential_chain_uses_transitive_reduction() {
        // r1 < r2 < r3; the frontier algorithm emits only the two
        // covering edges, not (r1, r3).
        let t = balanced(vec![req(1), resp(1), req(2), resp(2), req(3), resp(3)]);
        let g = create_time_precedence_graph(&t);
        assert_eq!(
            g.edges,
            vec![(RequestId(1), RequestId(2)), (RequestId(2), RequestId(3))]
        );
        // Reachability still holds transitively.
        assert!(g.has_path(RequestId(1), RequestId(3)));
    }

    #[test]
    fn concurrent_requests_have_no_edges() {
        let t = balanced(vec![req(1), req(2), resp(2), resp(1)]);
        let g = create_time_precedence_graph(&t);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn epoch_pattern_forms_bipartite_links() {
        // Two epochs of two concurrent requests each.
        let t = balanced(vec![
            req(1),
            req(2),
            resp(1),
            resp(2),
            req(3),
            req(4),
            resp(3),
            resp(4),
        ]);
        let g = create_time_precedence_graph(&t);
        let mut edges = g.edges.clone();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (RequestId(1), RequestId(3)),
                (RequestId(1), RequestId(4)),
                (RequestId(2), RequestId(3)),
                (RequestId(2), RequestId(4)),
            ]
        );
    }

    #[test]
    fn eviction_keeps_frontier_minimal() {
        // r1 finishes; r2 (arrived after r1 finished) finishes; then r3
        // arrives: r3 descends only from r2 (r1 was evicted), and r1's
        // precedence is implied transitively.
        let t = balanced(vec![req(1), resp(1), req(2), resp(2), req(3), resp(3)]);
        let g = create_time_precedence_graph(&t);
        let from_r1: Vec<_> = g.edges.iter().filter(|(f, _)| *f == RequestId(1)).collect();
        assert_eq!(from_r1.len(), 1);
    }

    #[test]
    fn matches_dense_oracle_reachability() {
        // A mixed pattern: overlapping and nested requests.
        let t = balanced(vec![
            req(1),
            req(2),
            resp(1),
            req(3),
            resp(3),
            resp(2),
            req(4),
            resp(4),
        ]);
        let fast = create_time_precedence_graph(&t);
        let dense = dense_time_precedence(&t);
        for r1 in &dense.nodes {
            for r2 in &dense.nodes {
                if r1 == r2 {
                    continue;
                }
                assert_eq!(
                    fast.has_path(*r1, *r2),
                    t.precedes(*r1, *r2),
                    "path({r1},{r2})"
                );
                assert_eq!(
                    dense.has_path(*r1, *r2),
                    t.precedes(*r1, *r2),
                    "dense({r1},{r2})"
                );
            }
        }
    }

    #[test]
    fn edge_count_is_minimal_for_epochs() {
        // P concurrent requests per epoch, E epochs: the minimum edge set
        // is the complete bipartite graph between adjacent epochs,
        // P*P*(E-1) edges (§A.8's intuition for Z).
        let (p, e) = (4u64, 3u64);
        let mut events = Vec::new();
        for epoch in 0..e {
            for i in 0..p {
                events.push(req(epoch * p + i + 1));
            }
            for i in 0..p {
                events.push(resp(epoch * p + i + 1));
            }
        }
        let t = balanced(events);
        let g = create_time_precedence_graph(&t);
        assert_eq!(g.edges.len() as u64, p * p * (e - 1));
    }

    #[test]
    fn empty_trace_yields_empty_graph() {
        let t = balanced(vec![]);
        let g = create_time_precedence_graph(&t);
        assert!(g.nodes.is_empty());
        assert!(g.edges.is_empty());
    }
}
