//! **SSCO** — the audit algorithm of *The Efficient Server Audit Problem*
//! (SOSP 2017).
//!
//! Given an accurate trace of requests and responses and a set of
//! *untrusted* reports from the executor, the verifier decides whether the
//! responses are consistent with really having executed the program,
//! using far less work than re-executing every request. The algorithm
//! combines three techniques:
//!
//! * **Consistent-ordering verification** (§3.5, [`precedence`] and
//!   [`graph`]): build a directed graph over every event — request
//!   arrival, response departure, and every alleged operation — with
//!   edges from trace time-precedence (via the streaming frontier
//!   algorithm of Fig. 6), program order, and log order; reject if it has
//!   a cycle.
//! * **Simulate-and-check** (§3.3, [`mod@audit`]): during re-execution, reads
//!   of shared objects are *fed* from the logs (registers by backward
//!   walk, key-value stores and databases from versioned stores built at
//!   audit start), while logged writes are *checked* opportunistically
//!   against what re-execution produces.
//! * **SIMD-on-demand re-execution** (§3.1): requests are re-executed in
//!   control-flow groups. The grouped executor itself lives in
//!   `orochi-accphp`; this crate defines the [`exec::GroupExecutor`]
//!   interface and drives it.
//!
//! The appendix's out-of-order audit variant (`OOOAudit`, Fig. 13) is
//! implemented in [`ooo`] and used as a differential-testing oracle.

pub mod audit;
pub mod coldstore;
pub mod exec;
pub mod graph;
pub mod nondet;
pub mod ooo;
pub mod precedence;
pub mod reports;
pub mod streaming;

pub use audit::{
    audit, audit_parallel, audit_parallel_source, audit_source, AuditConfig, AuditContext,
    AuditOutcome, AuditStats, Rejection,
};
pub use coldstore::{load_reports, spill_reports};
pub use exec::{DbTxnHandle, GroupExecutor, SimResult};
pub use graph::{process_op_reports, AuditGraph, OpMap};
pub use nondet::{NondetLog, NondetValue};
pub use precedence::{create_time_precedence_graph, dense_time_precedence, TimePrecedenceGraph};
pub use reports::Reports;
pub use streaming::{audit_streaming_source, StreamingAudit};
