//! The out-of-order audit variant (`OOOAudit`, Fig. 13 / §A.4).
//!
//! The appendix proves SSCO correct by relating the grouped audit to an
//! *out-of-order* audit that executes requests individually, following an
//! op schedule that is a topological sort of the event graph `G`. Lemma 5
//! shows the audit is indifferent to the schedule: because every request
//! re-executes in isolation (reads are fed from the logs, never from
//! shared state), any program-order-respecting schedule yields the same
//! verdict.
//!
//! We exploit exactly that property to implement the variant cheaply: the
//! ungrouped audit presents each request as its own group of one, ordered
//! by a topological sort of `G`. The test suite uses it as a differential
//! oracle against the grouped audit ([`crate::audit::audit`]): the two
//! must always agree.
//!
//! The topological sort comes from [`crate::graph::AuditGraph`]'s flat
//! CSR arrays (Kahn's algorithm over the precomputed indegrees). Since
//! the graph layer's edge stream is deterministic — the Fig. 6 frontier
//! is an index-ordered set, and node numbering follows the trace's
//! arrival order — the op schedule, and therefore this oracle's request
//! order, is identical run to run.

use crate::audit::{audit, AuditConfig, AuditOutcome, Rejection};
use crate::exec::GroupExecutor;
use crate::graph::process_op_reports;
use crate::reports::Reports;
use orochi_common::ids::{CtlFlowTag, OpNum, RequestId};
use orochi_trace::record::Trace;

/// Runs the audit with per-request "groups" ordered by a topological
/// sort of the event graph (the op schedule `S'` of §A.5).
///
/// Accepts/rejects identically to the grouped audit (Lemmas 5 and 8),
/// but performs no deduplication — it is the semantics oracle, not the
/// fast path.
pub fn ooo_audit(
    trace: &Trace,
    reports: &Reports,
    executor: &mut dyn GroupExecutor,
    config: &AuditConfig,
) -> Result<AuditOutcome, Rejection> {
    let balanced = trace.ensure_balanced().map_err(Rejection::Unbalanced)?;
    // Build the graph once to obtain a valid op schedule; the audit call
    // below rebuilds it (this variant is an oracle, not a fast path).
    let (graph, _) = process_op_reports(&balanced, reports)?;
    let order = graph
        .topological_order()
        .expect("process_op_reports verified acyclicity");
    // Collapse the op schedule to a request schedule: a request is
    // "scheduled" at its first appearance, i.e. its (rid, 0) node.
    let mut request_order: Vec<RequestId> = Vec::new();
    for (rid, opnum) in order {
        if opnum == OpNum(0) {
            request_order.push(rid);
        }
    }
    // Per-request groups, preserving the schedule; the tags are
    // synthetic and never compared against the reports' tags.
    let mut reports_ungrouped = reports.clone();
    reports_ungrouped.groupings = request_order
        .into_iter()
        .enumerate()
        .map(|(i, rid)| (CtlFlowTag(i as u64), vec![rid]))
        .collect();
    audit(trace, &reports_ungrouped, executor, config)
}
