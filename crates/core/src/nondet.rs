//! Nondeterminism reports (§4.6).
//!
//! OROCHI's fourth report type: the return values of nondeterministic PHP
//! builtins (`time`, `microtime`, `getpid`, `mt_rand`, `uniqid`). The
//! server records them online; the verifier feeds them back during
//! re-execution **and** checks them against expected behaviour — time
//! queries must be monotonically non-decreasing and the process id
//! constant within a request. As the paper notes, these checks are
//! best-effort: the executor retains discretion over the actual values
//! (§4.6, §5.5).

use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::RequestId;
use std::collections::HashMap;

/// One recorded nondeterministic return value.
#[derive(Debug, Clone, PartialEq)]
pub enum NondetValue {
    /// `time()` — seconds since the epoch.
    Time(i64),
    /// `microtime(true)` — fractional seconds.
    Microtime(f64),
    /// `getpid()`.
    Pid(i64),
    /// `mt_rand()` / `rand()`.
    Rand(i64),
    /// `uniqid()`.
    Uniqid(String),
}

impl NondetValue {
    /// A short tag for mismatch diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            NondetValue::Time(_) => "time",
            NondetValue::Microtime(_) => "microtime",
            NondetValue::Pid(_) => "pid",
            NondetValue::Rand(_) => "rand",
            NondetValue::Uniqid(_) => "uniqid",
        }
    }
}

impl Wire for NondetValue {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            NondetValue::Time(v) => {
                enc.byte(0);
                enc.i64(*v);
            }
            NondetValue::Microtime(v) => {
                enc.byte(1);
                enc.f64(*v);
            }
            NondetValue::Pid(v) => {
                enc.byte(2);
                enc.i64(*v);
            }
            NondetValue::Rand(v) => {
                enc.byte(3);
                enc.i64(*v);
            }
            NondetValue::Uniqid(v) => {
                enc.byte(4);
                enc.str(v);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.byte()? {
            0 => NondetValue::Time(dec.i64()?),
            1 => NondetValue::Microtime(dec.f64()?),
            2 => NondetValue::Pid(dec.i64()?),
            3 => NondetValue::Rand(dec.i64()?),
            4 => NondetValue::Uniqid(dec.str()?),
            _ => return Err(WireError::Malformed("unknown nondet tag")),
        })
    }
}

/// Per-request sequences of recorded nondeterministic values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NondetLog {
    entries: HashMap<RequestId, Vec<NondetValue>>,
}

impl NondetLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a recorded value for `rid`.
    pub fn push(&mut self, rid: RequestId, value: NondetValue) {
        self.entries.entry(rid).or_default().push(value);
    }

    /// The recorded sequence for `rid` (empty if none).
    pub fn for_request(&self, rid: RequestId) -> &[NondetValue] {
        self.entries.get(&rid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total recorded values across requests.
    pub fn total(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Validates the §4.6 sanity conditions for every request: `time` and
    /// `microtime` non-decreasing within the request, `pid` constant
    /// within the request. Returns the offending request on failure.
    pub fn validate(&self) -> Result<(), RequestId> {
        for (rid, values) in &self.entries {
            let mut last_time: Option<i64> = None;
            let mut last_micro: Option<f64> = None;
            let mut pid: Option<i64> = None;
            for v in values {
                match v {
                    NondetValue::Time(t) => {
                        if last_time.is_some_and(|prev| *t < prev) {
                            return Err(*rid);
                        }
                        last_time = Some(*t);
                    }
                    NondetValue::Microtime(t) => {
                        if last_micro.is_some_and(|prev| *t < prev) {
                            return Err(*rid);
                        }
                        last_micro = Some(*t);
                    }
                    NondetValue::Pid(p) => {
                        if pid.is_some_and(|prev| *p != prev) {
                            return Err(*rid);
                        }
                        pid = Some(*p);
                    }
                    NondetValue::Rand(_) | NondetValue::Uniqid(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Merges another log (used when assembling reports from per-thread
    /// recorders).
    pub fn merge(&mut self, other: NondetLog) {
        for (rid, mut values) in other.entries {
            self.entries.entry(rid).or_default().append(&mut values);
        }
    }
}

impl Wire for NondetLog {
    fn encode(&self, enc: &mut Encoder) {
        let mut rids: Vec<&RequestId> = self.entries.keys().collect();
        rids.sort();
        enc.u64(rids.len() as u64);
        for rid in rids {
            rid.encode(enc);
            self.entries[rid].encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = dec.u64()? as usize;
        if n > dec.remaining() {
            return Err(WireError::Malformed("nondet count exceeds buffer"));
        }
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let rid = RequestId::decode(dec)?;
            let values = Vec::<NondetValue>::decode(dec)?;
            if entries.insert(rid, values).is_some() {
                return Err(WireError::Malformed("duplicate rid in nondet log"));
            }
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_time_accepted() {
        let mut log = NondetLog::new();
        let rid = RequestId(1);
        log.push(rid, NondetValue::Time(100));
        log.push(rid, NondetValue::Time(100));
        log.push(rid, NondetValue::Time(101));
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn decreasing_time_rejected() {
        let mut log = NondetLog::new();
        let rid = RequestId(2);
        log.push(rid, NondetValue::Time(100));
        log.push(rid, NondetValue::Time(99));
        assert_eq!(log.validate(), Err(rid));
    }

    #[test]
    fn changing_pid_rejected() {
        let mut log = NondetLog::new();
        let rid = RequestId(3);
        log.push(rid, NondetValue::Pid(10));
        log.push(rid, NondetValue::Rand(5));
        log.push(rid, NondetValue::Pid(11));
        assert_eq!(log.validate(), Err(rid));
    }

    #[test]
    fn pid_may_differ_across_requests() {
        let mut log = NondetLog::new();
        log.push(RequestId(1), NondetValue::Pid(10));
        log.push(RequestId(2), NondetValue::Pid(11));
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn wire_roundtrip() {
        let mut log = NondetLog::new();
        log.push(RequestId(1), NondetValue::Time(5));
        log.push(RequestId(1), NondetValue::Uniqid("u1".into()));
        log.push(RequestId(7), NondetValue::Microtime(1.25));
        let bytes = log.to_wire_bytes();
        assert_eq!(NondetLog::from_wire_bytes(&bytes).unwrap(), log);
    }

    #[test]
    fn merge_appends_sequences() {
        let mut a = NondetLog::new();
        a.push(RequestId(1), NondetValue::Rand(1));
        let mut b = NondetLog::new();
        b.push(RequestId(1), NondetValue::Rand(2));
        b.push(RequestId(2), NondetValue::Rand(3));
        a.merge(b);
        assert_eq!(a.for_request(RequestId(1)).len(), 2);
        assert_eq!(a.total(), 3);
    }
}
