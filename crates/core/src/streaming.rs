//! The streaming epoch audit: bounded-memory audit over sealed epochs.
//!
//! The batch audit ([`crate::audit::audit_parallel`]) materializes the
//! whole balanced trace before phase 2 begins, so the auditor's peak
//! memory is O(trace). This module re-runs the same phases
//! *incrementally* over **epochs** — bounded runs of trace events pulled
//! from any [`TraceSource`] via `stream_events_from` — carrying only:
//!
//! * the dense requestID interner and per-request `responded` bits
//!   ([`StreamingBalance`] — the §3 balance scan, one event at a time);
//! * the [`OpMap`] tables, grown one request row at a time from per-rid
//!   log-entry lists precomputed off the (resident) reports;
//! * request payloads of *open* control-flow-group members (dropped the
//!   moment the member re-executes);
//! * a two-bit output verdict per request (none/match/mismatch), so the
//!   phase-5 comparison never needs the response payloads again;
//! * the per-worker dedup caches and counters ([`AuditContext`] carry).
//!
//! Event payloads are never retained beyond their epoch; the versioned
//! stores are built once up front from the reports alone (they are
//! trace-independent), exactly as the batch prologue builds them.
//!
//! # Same code path, same verdicts
//!
//! Every check runs through the batch audit's own functions:
//! [`StreamingBalance`] mirrors the balance scan check-for-check, the
//! final report validation is literally
//! [`process_op_reports_interned`] (the batch pass minus the trace
//! materialization), store builds and group re-execution reuse
//! [`mod@crate::audit`]'s internals. Verdicts and diagnostics are
//! byte-identical to [`crate::audit::audit_parallel`] at every thread
//! count and epoch budget — including rejecting runs — by the
//! following precedence reconstruction at [`StreamingAudit::finish`]:
//!
//! 1. any balance violation (in-stream, or an unresponded request);
//! 2. the full Fig. 5 report validation over the final interner;
//! 3. the nondeterminism sanity check (validated up front, deferred);
//! 4. the §4.5 redo pass (built up front, deferred);
//! 5. the lowest-indexed failed control-flow group **before the
//!    grouping cut**, confirmed by re-executing that whole group
//!    against the final state (sub-group re-execution may surface a
//!    different member's diagnostic first; the confirmation run
//!    reproduces the batch walk's member order exactly);
//! 6. the grouping pre-pass rejection at the cut, if any;
//! 7. the first output mismatch in arrival order.
//!
//! Groups are *planned optimistically* (the batch claiming walk minus
//! the trace-membership check). Before the cut — the first grouping
//! entry naming a request the trace never contained — the optimistic
//! plan equals the batch prepared groups exactly; anything at or past
//! the cut may re-execute speculatively but can never influence the
//! verdict, because step 6 fires first.
//!
//! Each epoch executes the **sub-groups** of members whose responses
//! arrived in that epoch (in within-group order), fanned across the
//! worker pool like the batch parallel audit. The per-epoch carry size
//! is published to the `audit_carry_bytes` gauge and every epoch bumps
//! `audit_epochs_total` and records seal→verdict lag
//! ([`orochi_obs::lag::mark_epoch`]).

use crate::audit::{
    assemble_outcome, run_one_group, AuditCarry, AuditConfig, AuditContext, AuditOutcome,
    AuditShared, AuditStats, PreparedGroup, Rejection,
};
use crate::exec::GroupExecutor;
use crate::graph::{process_op_reports_interned, OpMap};
use crate::reports::Reports;
use orochi_common::ids::{CtlFlowTag, OpNum, RequestId, SeqNum};
use orochi_common::metrics::PhaseTimer;
use orochi_obs::LazyHistogram;
use orochi_trace::record::{BalanceError, DenseEvent, RidInterner, StreamingBalance};
use orochi_trace::{Event, HttpRequest, HttpResponse, TraceSource};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Wall time per streaming epoch (ingest + incremental fill +
/// sub-group re-execution).
static EPOCH_NS: LazyHistogram = LazyHistogram::new("audit_epoch_ns");

/// Rough heap size of a request payload, mirroring the trace store's
/// segment-budget estimate; used only for carry accounting.
fn request_bytes(req: &HttpRequest) -> usize {
    fn pairs(p: &[(String, String)]) -> usize {
        p.iter().map(|(k, v)| k.len() + v.len() + 4).sum::<usize>() + 2
    }
    12 + req.method.len()
        + req.path.len()
        + pairs(&req.query)
        + pairs(&req.post)
        + pairs(&req.cookies)
}

/// One epoch's work unit: the members of one planned group whose
/// responses arrived this epoch, in within-group order.
struct SubGroup {
    /// Planned-group index.
    group: usize,
    /// The batch [`PreparedGroup`] shape, so re-execution goes through
    /// [`run_one_group`] unchanged.
    prepared: PreparedGroup,
    /// Per member: dense index and the traced response to compare
    /// against.
    expected: Vec<(u32, HttpResponse)>,
}

/// Output-comparison state per dense request index.
const OUT_NONE: u8 = 0;
const OUT_MATCH: u8 = 1;
const OUT_MISMATCH: u8 = 2;

/// The push-based streaming audit driver. Feed sealed epochs with
/// [`StreamingAudit::feed_epoch`]; settle the verdict with
/// [`StreamingAudit::finish`]. [`audit_streaming_source`] wraps both
/// behind a pull loop over any [`TraceSource`].
pub struct StreamingAudit<'a> {
    reports: &'a Reports,
    threads: usize,
    sb: StreamingBalance,
    /// The batch prologue's products, built up front (store builds are
    /// trace-independent). `None` when the up-front validation already
    /// settled a deferred rejection.
    shared: Option<AuditShared<'a>>,
    /// NondetInvalid or Redo from the up-front pass, reported at
    /// [`StreamingAudit::finish`] in batch precedence order.
    deferred: Option<Rejection>,
    /// First in-stream balance violation; outranks everything.
    balance_error: Option<BalanceError>,
    /// Optimistic grouping plan: rid -> (group index, within-group
    /// position), plus the tag and claimed member list per group.
    member_of: HashMap<RequestId, (u32, u32)>,
    group_tags: Vec<CtlFlowTag>,
    group_members: Vec<Vec<RequestId>>,
    /// Per-rid `(log index, seqnum, opnum)` entries, precomputed from
    /// the resident reports for the incremental OpMap fill.
    log_entries: HashMap<RequestId, Vec<(u32, SeqNum, OpNum)>>,
    /// Open group members' request payloads by dense index (taken at
    /// re-execution, dropped unexecuted if the group already failed).
    pending_req: Vec<Option<HttpRequest>>,
    pending_bytes: usize,
    /// Phase-5 verdict per dense index (OUT_*).
    out_state: Vec<u8>,
    /// One carry per worker slot, persisted across epochs.
    carries: Vec<AuditCarry>,
    /// Failed planned groups: index -> first rejection recorded. Only
    /// entries below the finish-time cut can reach the verdict, and
    /// each is confirmed by a whole-group re-run first.
    failed: BTreeMap<usize, Rejection>,
    phases: PhaseTimer,
    reexec_busy: Duration,
    epochs: u64,
    done: bool,
    lane: Option<orochi_obs::LaneId>,
}

impl<'a> StreamingAudit<'a> {
    /// Builds the trace-independent half of the prologue (nondet
    /// sanity, versioned stores, grouping plan, per-rid log index) and
    /// an empty carry set for `threads` workers.
    pub fn new(reports: &'a Reports, config: &'a AuditConfig, threads: usize) -> Self {
        let threads = threads.max(1);
        let mut phases = PhaseTimer::new();
        // Batch precedence within the up-front pass: the nondet sanity
        // check precedes the store builds, so at most one deferred
        // rejection exists and it is the one the batch prologue would
        // reach first (after balance + report validation).
        let (shared, deferred) = match reports.nondet.validate() {
            Err(rid) => (None, Some(Rejection::NondetInvalid(rid))),
            Ok(()) => {
                let built = phases.time("DB redo", || {
                    AuditShared::build(reports, OpMap::streaming_empty(), config, threads)
                });
                match built {
                    Ok(shared) => (Some(shared), None),
                    Err(rejection) => (None, Some(rejection)),
                }
            }
        };
        // Optimistic grouping plan: the batch claiming walk without the
        // trace-membership check (the trace is unknown until the
        // stream ends). Identical to `prepare_groups` up to the cut.
        let mut member_of = HashMap::new();
        let mut group_tags = Vec::new();
        let mut group_members: Vec<Vec<RequestId>> = Vec::new();
        let mut claimed: HashSet<RequestId> = HashSet::new();
        for (tag, rids) in &reports.groupings {
            let mut members = Vec::new();
            let mut seen_in_group = HashSet::new();
            for rid in rids {
                if claimed.contains(rid) || !seen_in_group.insert(*rid) {
                    continue;
                }
                members.push(*rid);
            }
            if members.is_empty() {
                continue;
            }
            claimed.extend(members.iter().copied());
            let g = group_tags.len() as u32;
            for (pos, rid) in members.iter().enumerate() {
                member_of.insert(*rid, (g, pos as u32));
            }
            group_tags.push(*tag);
            group_members.push(members);
        }
        // Per-rid log entries in log order: restricted to one rid, the
        // order matches the batch CheckLogs walk, so first-claim-wins
        // slot filling reproduces the batch OpMap whenever the final
        // report validation accepts.
        let mut log_entries: HashMap<RequestId, Vec<(u32, SeqNum, OpNum)>> = HashMap::new();
        for (i, _name, log) in reports.op_logs.iter() {
            for (seq, entry) in log.iter() {
                log_entries
                    .entry(entry.rid)
                    .or_default()
                    .push((i as u32, seq, entry.opnum));
            }
        }
        StreamingAudit {
            reports,
            threads,
            sb: StreamingBalance::new(),
            shared,
            deferred,
            balance_error: None,
            member_of,
            group_tags,
            group_members,
            log_entries,
            pending_req: Vec::new(),
            pending_bytes: 0,
            out_state: Vec::new(),
            carries: Vec::new(),
            failed: BTreeMap::new(),
            phases,
            reexec_busy: Duration::ZERO,
            epochs: 0,
            done: false,
            lane: orochi_obs::enabled().then(|| orochi_obs::journal::lane("audit-stream")),
        }
    }

    /// Epochs fed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Bytes of state carried across the next epoch boundary: the
    /// interner + balance bits, the OpMap tables, open members' request
    /// payloads, the output bitmap, and the worker carry caches.
    pub fn carry_bytes(&self) -> usize {
        self.sb.estimated_bytes()
            + self.shared.as_ref().map_or(0, |s| s.opmap_bytes())
            + self.pending_bytes
            + self.out_state.len()
            + self
                .carries
                .iter()
                .map(AuditCarry::estimated_bytes)
                .sum::<usize>()
    }

    /// Feeds one sealed epoch of events (in trace order) and runs the
    /// sub-groups it completes across `executors`. Returns `false` once
    /// the verdict can no longer change (an in-stream balance
    /// violation), meaning the caller may stop feeding.
    pub fn feed_epoch<E: GroupExecutor + Send>(
        &mut self,
        events: &[Event],
        executors: &mut [E],
    ) -> bool {
        assert!(
            !executors.is_empty(),
            "streaming audit requires at least one executor"
        );
        if self.done {
            return false;
        }
        self.epochs += 1;
        if self.carries.len() < executors.len() {
            self.carries
                .resize_with(executors.len(), AuditCarry::default);
        }
        let span = self
            .lane
            .and_then(|l| orochi_obs::span_timed(l, "epoch", EPOCH_NS.get()));

        // Reclaim exclusive ownership of the interner for the balance
        // scan: the shared state parks a placeholder during ingest.
        if let Some(shared) = self.shared.as_mut() {
            shared.set_interner(RidInterner::empty());
        }

        // ---- Ingest: the §3 balance scan, one event at a time. -------
        let balance_t0 = Instant::now();
        let mut new_requests: Vec<u32> = Vec::new();
        let mut responses: Vec<(u32, HttpResponse)> = Vec::new();
        for event in events {
            match self.sb.push(event) {
                Err(e) => {
                    // Balance violations outrank every other rejection;
                    // nothing later in the stream can change the
                    // verdict, so re-execution stops here too.
                    self.balance_error = Some(e);
                    self.done = true;
                    break;
                }
                Ok(DenseEvent::Request(idx)) => {
                    debug_assert_eq!(idx as usize, self.out_state.len());
                    self.out_state.push(OUT_NONE);
                    self.pending_req.push(None);
                    new_requests.push(idx);
                    if let Event::Request(rid, req) = event {
                        if self.member_of.contains_key(rid) {
                            self.pending_bytes += request_bytes(req);
                            self.pending_req[idx as usize] = Some(req.clone());
                        }
                    }
                }
                Ok(DenseEvent::Response(idx)) => {
                    if let Event::Response(rid, resp) = event {
                        if self.member_of.contains_key(rid) {
                            responses.push((idx, resp.clone()));
                        }
                    }
                }
            }
        }
        self.phases.add("Balance", balance_t0.elapsed());

        if self.balance_error.is_none() && self.shared.is_some() {
            self.fill_and_execute(&new_requests, responses, executors);
        }

        drop(span);
        orochi_obs::lag::mark_epoch(self.carry_bytes() as u64);
        !self.done
    }

    /// The post-ingest half of one epoch: re-point the canonical
    /// interner, grow the OpMap rows for this epoch's arrivals, and
    /// re-execute the completed sub-groups.
    fn fill_and_execute<E: GroupExecutor + Send>(
        &mut self,
        new_requests: &[u32],
        responses: Vec<(u32, HttpResponse)>,
        executors: &mut [E],
    ) {
        let interner = Arc::clone(self.sb.interner());
        let shared = self.shared.as_mut().expect("checked by caller");
        let proc_t0 = Instant::now();
        shared.set_interner(Arc::clone(&interner));
        let opmap = shared.opmap_mut();
        for &idx in new_requests {
            let rid = interner.rid(idx);
            opmap.append_request(self.reports.op_count(rid));
            if let Some(entries) = self.log_entries.get(&rid) {
                for &(i, seq, opnum) in entries {
                    // Lenient fill: a bad entry here is the reports'
                    // fault, and the finish-time full validation
                    // reports it with batch precedence.
                    opmap.fill_slot(idx, opnum, i, seq);
                }
            }
        }
        self.phases.add("ProcOpRep", proc_t0.elapsed());

        // ---- Sub-group formation: members completed this epoch. ------
        let mut by_group: BTreeMap<u32, Vec<(u32, u32, HttpResponse)>> = BTreeMap::new();
        for (idx, resp) in responses {
            let rid = interner.rid(idx);
            let &(g, pos) = self.member_of.get(&rid).expect("stashed members only");
            if self.failed.contains_key(&(g as usize)) {
                // The group already failed; its later members never
                // execute (their fate rides on the finish-time
                // confirmation run). Release the payload now.
                if let Some(req) = self.pending_req[idx as usize].take() {
                    self.pending_bytes -= request_bytes(&req);
                }
                continue;
            }
            by_group.entry(g).or_default().push((pos, idx, resp));
        }
        let mut subgroups: Vec<SubGroup> = Vec::with_capacity(by_group.len());
        for (g, mut members) in by_group {
            members.sort_by_key(|&(pos, ..)| pos);
            let mut requests = Vec::with_capacity(members.len());
            let mut expected = Vec::with_capacity(members.len());
            for (_, idx, resp) in members {
                let req = self.pending_req[idx as usize]
                    .take()
                    .expect("claimed member holds its payload until execution");
                self.pending_bytes -= request_bytes(&req);
                requests.push((interner.rid(idx), req));
                expected.push((idx, resp));
            }
            subgroups.push(SubGroup {
                group: g as usize,
                prepared: PreparedGroup {
                    tag: self.group_tags[g as usize],
                    requests,
                },
                expected,
            });
        }
        if subgroups.is_empty() {
            return;
        }

        // ---- Re-execution, fanned out like the batch parallel audit.
        let shared_owned = self.shared.take().expect("checked by caller");
        let shared_arc = Arc::new(shared_owned);
        let (results, busy) =
            execute_subgroups(&shared_arc, &subgroups, executors, &mut self.carries);
        self.reexec_busy += busy;
        self.shared = Some(
            Arc::try_unwrap(shared_arc)
                .ok()
                .expect("worker contexts release the shared prologue"),
        );

        for (sub, result) in subgroups.iter().zip(results) {
            match result.expect("every sub-group is claimed exactly once") {
                Ok(outputs) => {
                    let produced: HashMap<RequestId, HttpResponse> = outputs.into_iter().collect();
                    for (idx, expected_resp) in &sub.expected {
                        let rid = interner.rid(*idx);
                        if let Some(resp) = produced.get(&rid) {
                            self.out_state[*idx as usize] = if resp == expected_resp {
                                OUT_MATCH
                            } else {
                                OUT_MISMATCH
                            };
                        }
                    }
                }
                Err(rejection) => {
                    self.failed.entry(sub.group).or_insert(rejection);
                }
            }
        }
    }

    /// Settles the verdict, reconstructing batch precedence (see the
    /// module docs). `source` is only re-read on the rejection path, to
    /// collect the payloads a failed group's confirmation run needs.
    pub fn finish<E: GroupExecutor + Send>(
        mut self,
        source: &dyn TraceSource,
        executors: &mut [E],
    ) -> Result<AuditOutcome, Rejection> {
        // 1. Balance: the in-stream violation, or the first request in
        // arrival order left without a response.
        if let Some(e) = self.balance_error.take() {
            return Err(Rejection::Unbalanced(e));
        }
        if let Some(rid) = self.sb.first_unresponded() {
            return Err(Rejection::Unbalanced(BalanceError::RequestWithoutResponse(
                rid,
            )));
        }

        // 2. The full Fig. 5 validation over the final interner — the
        // batch code path itself, so diagnostics match exactly. On
        // success the freshly built OpMap replaces the incrementally
        // grown one (identical by construction) for the confirmation
        // runs below.
        let interner = Arc::clone(self.sb.interner());
        let reports = self.reports;
        let threads = self.threads;
        if let Some(shared) = self.shared.as_mut() {
            // The incrementally grown OpMap is about to be superseded by
            // the freshly validated one; release it first so the two
            // never coexist at the streaming audit's peak.
            shared.replace_opmap(OpMap::streaming_empty());
        }
        let (graph, opmap) = self
            .phases
            .time("ProcOpRep", || {
                process_op_reports_interned(&interner, reports, threads)
            })
            .map_err(Rejection::Graph)?;
        if let Some(shared) = self.shared.as_mut() {
            shared.replace_opmap(opmap);
            shared.record_graph(&graph);
        }

        // 3./4. The deferred nondet or redo rejection.
        if let Some(rejection) = self.deferred.take() {
            return Err(rejection);
        }
        let mut shared = self.shared.take().expect("no deferred rejection");

        // 5./6. The grouping cut: replay the batch claiming walk with
        // the trace-membership check the optimistic plan skipped.
        let (cut_groups, pre_error) = self.grouping_cut(&interner);

        // 5. Confirm failed groups below the cut, lowest index first:
        // re-execute the whole group against the final state, which
        // reproduces the batch member order (a sub-group run may have
        // tripped on a later member first).
        let failed = std::mem::take(&mut self.failed);
        for (g, _) in failed.range(..cut_groups) {
            let shared_arc = Arc::new(shared);
            let confirmed = self.confirm_group(source, *g, &shared_arc, &mut executors[0]);
            shared = Arc::try_unwrap(shared_arc)
                .ok()
                .expect("confirmation context released");
            match confirmed? {
                Err(rejection) => return Err(rejection),
                Ok(outputs) => {
                    // The whole-group run passed (the sub-group failure
                    // did not reproduce); adopt its outputs so the
                    // phase-5 walk sees the group as executed.
                    for (rid, resp) in outputs {
                        let idx = interner.index_of(rid).expect("pre-cut members in trace");
                        self.out_state[idx as usize] =
                            if source_response_matches(source, rid, &resp)? {
                                OUT_MATCH
                            } else {
                                OUT_MISMATCH
                            };
                    }
                }
            }
        }
        if let Some(rejection) = pre_error {
            return Err(rejection);
        }

        // 7. Phase 5: first problem in arrival order.
        let output_t0 = Instant::now();
        let verdict = self.out_state.iter().enumerate().find_map(|(k, &s)| {
            let rid = interner.rid(k as u32);
            match s {
                OUT_NONE => Some(Rejection::MissingOutput { rid }),
                OUT_MISMATCH => Some(Rejection::OutputMismatch { rid }),
                _ => None,
            }
        });
        self.phases.add("Output", output_t0.elapsed());
        if let Some(rejection) = verdict {
            return Err(rejection);
        }

        // Accept: fold the worker carries into the batch-shaped stats.
        let mut stats = AuditStats::default();
        for carry in &self.carries {
            stats.absorb(&carry.stats);
        }
        // Sub-group execution bumped the group counter once per
        // sub-group; the batch number is one per prepared group.
        stats.groups_executed = cut_groups;
        let mut phases = self.phases;
        phases.add("DB query", stats.db_query_wall);
        phases.add(
            "ReExec",
            self.reexec_busy.saturating_sub(stats.db_query_wall),
        );
        Ok(assemble_outcome(&shared, stats, phases))
    }

    /// Replays the batch `prepare_groups` claiming walk over the final
    /// interner: returns how many planned groups lie before the cut and
    /// the cut's rejection, if any. Group indices agree with the
    /// optimistic plan on everything below the cut.
    fn grouping_cut(&self, interner: &RidInterner) -> (usize, Option<Rejection>) {
        let mut claimed: HashSet<RequestId> = HashSet::new();
        let mut groups = 0usize;
        for (_, rids) in &self.reports.groupings {
            let mut members = Vec::new();
            let mut seen_in_group = HashSet::new();
            for rid in rids {
                if claimed.contains(rid) || !seen_in_group.insert(*rid) {
                    continue;
                }
                if interner.index_of(*rid).is_none() {
                    return (groups, Some(Rejection::GroupUnknownRequest { rid: *rid }));
                }
                members.push(*rid);
            }
            if members.is_empty() {
                continue;
            }
            claimed.extend(members);
            groups += 1;
        }
        (groups, None)
    }

    /// Re-executes planned group `g` in full against the final shared
    /// state, with payloads re-read from the source. The inner result
    /// is the group's batch-exact outcome; the outer error is a
    /// storage failure re-reading the trace.
    fn confirm_group<'s>(
        &mut self,
        source: &dyn TraceSource,
        g: usize,
        shared: &Arc<AuditShared<'s>>,
        executor: &mut dyn GroupExecutor,
    ) -> Result<Result<Vec<(RequestId, HttpResponse)>, Rejection>, Rejection> {
        let members = &self.group_members[g];
        let want: HashSet<RequestId> = members.iter().copied().collect();
        let mut payloads: HashMap<RequestId, HttpRequest> = HashMap::new();
        source
            .stream_events(&mut |event| {
                if let Event::Request(rid, req) = event {
                    if want.contains(&rid) {
                        payloads.insert(rid, req);
                    }
                }
                payloads.len() < want.len()
            })
            .map_err(Rejection::TraceStore)?;
        let prepared = PreparedGroup {
            tag: self.group_tags[g],
            requests: members
                .iter()
                .map(|rid| {
                    let req = payloads
                        .remove(rid)
                        .expect("pre-cut group members are in the trace");
                    (*rid, req)
                })
                .collect(),
        };
        // A fresh context, like a batch worker's first group: the
        // per-request cursors start clean and the dedup cache only
        // moves performance counters.
        let mut ctx = AuditContext::from_shared(Arc::clone(shared));
        Ok(run_one_group(executor, &mut ctx, &prepared))
    }
}

/// Looks up the traced response for `rid` and compares it against a
/// produced output. Only the confirmation fallback path needs this
/// (normal epochs compare at response arrival); it re-streams the
/// source for the one payload.
fn source_response_matches(
    source: &dyn TraceSource,
    rid: RequestId,
    produced: &HttpResponse,
) -> Result<bool, Rejection> {
    let mut matches = false;
    let mut found = false;
    source
        .stream_events(&mut |event| {
            if let Event::Response(r, resp) = &event {
                if *r == rid {
                    matches = resp == produced;
                    found = true;
                    return false;
                }
            }
            true
        })
        .map_err(Rejection::TraceStore)?;
    Ok(found && matches)
}

/// Runs this epoch's sub-groups across the worker pool: one
/// [`AuditContext`] per worker, rebuilt from its carry, pulling
/// sub-groups off a shared cursor. Returns per-sub-group results
/// (indexed like `subgroups`) and the summed worker busy time.
#[allow(clippy::type_complexity)]
fn execute_subgroups<'s, E: GroupExecutor + Send>(
    shared: &Arc<AuditShared<'s>>,
    subgroups: &[SubGroup],
    executors: &mut [E],
    carries: &mut [AuditCarry],
) -> (
    Vec<Option<Result<Vec<(RequestId, HttpResponse)>, Rejection>>>,
    Duration,
) {
    let mut results: Vec<Option<Result<Vec<(RequestId, HttpResponse)>, Rejection>>> =
        (0..subgroups.len()).map(|_| None).collect();
    if executors.len() == 1 || subgroups.len() < 2 {
        let t0 = Instant::now();
        let carry = std::mem::take(&mut carries[0]);
        let mut ctx = AuditContext::from_shared_with_carry(Arc::clone(shared), carry);
        for (k, sub) in subgroups.iter().enumerate() {
            results[k] = Some(run_one_group(&mut executors[0], &mut ctx, &sub.prepared));
        }
        carries[0] = ctx.into_carry();
        return (results, t0.elapsed());
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<Vec<(RequestId, HttpResponse)>, Rejection>)>> =
        Mutex::new(Vec::with_capacity(subgroups.len()));
    let busy_total: Mutex<Duration> = Mutex::new(Duration::ZERO);
    crossbeam::thread::scope(|s| {
        for (executor, carry) in executors.iter_mut().zip(carries.iter_mut()) {
            let cursor = &cursor;
            let collected = &collected;
            let busy_total = &busy_total;
            s.spawn(move |_| {
                let t0 = Instant::now();
                let prior = std::mem::take(carry);
                let mut ctx = AuditContext::from_shared_with_carry(Arc::clone(shared), prior);
                let mut local = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(sub) = subgroups.get(k) else { break };
                    local.push((k, run_one_group(&mut *executor, &mut ctx, &sub.prepared)));
                }
                *carry = ctx.into_carry();
                collected.lock().expect("results poisoned").extend(local);
                *busy_total.lock().expect("busy poisoned") += t0.elapsed();
            });
        }
    })
    .expect("streaming audit worker pool");
    for (k, result) in collected.into_inner().expect("results poisoned") {
        results[k] = Some(result);
    }
    let busy = *busy_total.lock().expect("busy poisoned");
    (results, busy)
}

/// The pull-based streaming audit: cuts `source` into epochs of at most
/// `epoch_events` events (`0` = one epoch spanning the whole trace) and
/// drives [`StreamingAudit`] over them. Verdicts and diagnostics are
/// byte-identical to [`crate::audit::audit_parallel`] with
/// `executors.len()` workers, at every epoch budget.
///
/// # Panics
///
/// Panics if `executors` is empty.
pub fn audit_streaming_source<E: GroupExecutor + Send>(
    source: &dyn TraceSource,
    reports: &Reports,
    executors: &mut [E],
    config: &AuditConfig,
    epoch_events: usize,
) -> Result<AuditOutcome, Rejection> {
    assert!(
        !executors.is_empty(),
        "audit_streaming requires at least one executor"
    );
    let mut audit = StreamingAudit::new(reports, config, executors.len());
    let budget = if epoch_events == 0 {
        usize::MAX
    } else {
        epoch_events
    };
    let total = source.event_count();
    let mut offset = 0usize;
    while offset < total {
        let mut epoch: Vec<Event> = Vec::new();
        source
            .stream_events_from(offset, &mut |event| {
                epoch.push(event);
                epoch.len() < budget
            })
            .map_err(Rejection::TraceStore)?;
        if epoch.is_empty() {
            break;
        }
        offset += epoch.len();
        if !audit.feed_epoch(&epoch, executors) {
            break;
        }
    }
    audit.finish(source, executors)
}
