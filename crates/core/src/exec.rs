//! The interface between the audit driver and the re-execution engine.
//!
//! SSCO's re-execution is grouped (SIMD-on-demand, §3.1), but the audit
//! algorithm itself is agnostic to *how* a group executes: it only
//! requires that the executor report, per request, every state operation
//! in program order (which the [`crate::audit::AuditContext`] checks and
//! simulates) and the produced output. `orochi-accphp` provides the real
//! PHP group executor; tests use small hand-written executors.

use crate::audit::{AuditContext, Rejection};
use orochi_common::ids::{OpNum, RequestId, SeqNum};
use orochi_trace::{HttpRequest, HttpResponse};

/// Result of a simulated non-database read (Fig. 12, `SimOp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimResult {
    /// Write operations return nothing.
    None,
    /// Register read: current value (`None` when never written).
    Register(Option<Vec<u8>>),
    /// Key-value get: current value (`None` when absent).
    Kv(Option<Vec<u8>>),
}

/// Result of one database query during re-execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DbQueryResult {
    /// The query executed; SELECTs carry rows, writes carry the verified
    /// write outcome.
    Ok(orochi_sqldb::ExecOutcome),
    /// The query failed online (final statement of an aborted
    /// transaction); the program observes the failure, as it did online.
    Failed,
}

/// Handle for an in-progress database transaction during re-execution.
///
/// Produced by [`AuditContext::db_begin`]; queries are checked one at a
/// time (§A.7: "instead of checking the entire transaction at once, these
/// functions check the individual queries within the transaction"),
/// interleaved with program execution.
#[derive(Debug)]
pub struct DbTxnHandle {
    pub(crate) rid: RequestId,
    pub(crate) opnum: OpNum,
    pub(crate) obj_index: usize,
    pub(crate) seq: SeqNum,
    pub(crate) queries_done: u64,
    pub(crate) total_queries: u64,
    pub(crate) logged_succeeded: bool,
    /// Set once a query observed failure: later queries return
    /// [`DbQueryResult::Failed`] without consulting the log, mirroring
    /// the online backend (which does not log past the failure point).
    pub(crate) failed: bool,
}

impl DbTxnHandle {
    /// The request owning this transaction.
    pub fn rid(&self) -> RequestId {
        self.rid
    }

    /// Queries checked so far.
    pub fn queries_done(&self) -> u64 {
        self.queries_done
    }
}

/// A re-execution engine for one control-flow group.
///
/// Contract: for each request, issue its state operations **in program
/// order** through the context (`register_read`, `kv_set`, `db_begin`,
/// ...), consume nondeterminism via [`AuditContext::nondet`], and return
/// the produced response for every request in the group. The audit driver
/// itself verifies operation counts and compares outputs against the
/// trace; a misgrouped request manifests as divergence (return
/// [`Rejection::Divergence`]) or as an output mismatch.
pub trait GroupExecutor {
    /// Re-executes one group of requests that allegedly share a control
    /// flow.
    fn execute_group(
        &mut self,
        requests: &[(RequestId, HttpRequest)],
        ctx: &mut AuditContext<'_>,
    ) -> Result<Vec<(RequestId, HttpResponse)>, Rejection>;
}

/// Adapter turning a closure into a [`GroupExecutor`]; used by tests and
/// by small model programs.
///
/// # Examples
///
/// ```
/// use orochi_core::exec::FnExecutor;
///
/// let mut exec = FnExecutor::new(|requests, _ctx| {
///     Ok(requests
///         .iter()
///         .map(|(rid, _req)| (*rid, orochi_trace::HttpResponse::ok(*rid, "hi")))
///         .collect())
/// });
/// let _ = &mut exec; // Implements GroupExecutor.
/// ```
pub struct FnExecutor<F>(F);

impl<F> FnExecutor<F>
where
    F: FnMut(
        &[(RequestId, HttpRequest)],
        &mut AuditContext<'_>,
    ) -> Result<Vec<(RequestId, HttpResponse)>, Rejection>,
{
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnExecutor(f)
    }
}

impl<F> GroupExecutor for FnExecutor<F>
where
    F: FnMut(
        &[(RequestId, HttpRequest)],
        &mut AuditContext<'_>,
    ) -> Result<Vec<(RequestId, HttpResponse)>, Rejection>,
{
    fn execute_group(
        &mut self,
        requests: &[(RequestId, HttpRequest)],
        ctx: &mut AuditContext<'_>,
    ) -> Result<Vec<(RequestId, HttpResponse)>, Rejection> {
        (self.0)(requests, ctx)
    }
}
