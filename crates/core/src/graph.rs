//! `ProcessOpReports` (Fig. 5): consistent-ordering verification.
//!
//! The verifier builds a directed graph `G` with a node for every event —
//! for each request `rid`, nodes `(rid, 0)` (arrival) and `(rid, ∞)`
//! (response departure), plus one node per alleged operation
//! `(rid, 1..M(rid))`. Edges come from three sources:
//!
//! * **time precedence** — the split edges of the Fig. 6 graph:
//!   `(r1, ∞) -> (r2, 0)` whenever `r1 <Tr r2`;
//! * **program order** — `(rid, k-1) -> (rid, k)` and
//!   `(rid, M(rid)) -> (rid, ∞)`;
//! * **log order** — an edge between adjacent log entries of different
//!   requests; same-request adjacency instead *checks* that the opnum
//!   increases.
//!
//! `CheckLogs` simultaneously builds the **OpMap**: the index from
//! `(rid, opnum)` to `(object index, log sequence number)` that
//! re-execution's `CheckOp` consults. If the graph has a cycle, the
//! events cannot be consistently ordered and the audit rejects (§3.4's
//! examples show why each edge source is necessary).
//!
//! The construction runs in `O(X + Y + Z)` time and space (Lemma 11).
//!
//! # Implementation contract
//!
//! The whole pass is *zero-hash after the one-time interning pass*.
//! [`process_op_reports`] first interns the trace's requestIDs into
//! dense `u32` indices ([`orochi_trace::RidInterner`]) and, while
//! walking the logs once for `CheckLogs`, resolves every log entry's
//! requestID through the interner into flat per-log index arrays. From
//! that point on, every hot loop is index arithmetic over flat arrays:
//!
//! * the [`OpMap`] is an offset table — per dense request, a prefix
//!   offset into one slot array of `M(rid)` entries — so duplicate
//!   detection, the missing-operation scan, and re-execution's
//!   `CheckOp` lookups are all direct indexing;
//! * the [`AuditGraph`] is a compressed-sparse-row (CSR) structure
//!   built in two passes over one edge stream (count out-degrees,
//!   prefix-sum, fill columns) that includes the Fig. 6 frontier edges
//!   *streamed* straight from
//!   [`crate::precedence::for_each_frontier_edge`] — no intermediate
//!   `(RequestId, RequestId)` edge list is ever materialized, and no
//!   endpoint is re-hashed;
//! * the cycle check is Kahn's algorithm over the flat `row_start`/
//!   `col` arrays, seeded from an indegree array accumulated during the
//!   fill pass (no O(E) recount) and copied into a reusable scratch
//!   buffer per query.
//!
//! The pre-CSR construction — materialized edge list, per-endpoint hash
//! lookups, `Vec<Vec<u32>>` adjacency, `HashMap` OpMap — survives in
//! [`two_phase`] as the bench baseline and differential-testing oracle.

use crate::precedence::for_each_frontier_edge;
use crate::reports::Reports;
use orochi_common::ids::{OpNum, RequestId, SeqNum};
use orochi_trace::record::{BalancedTrace, RidInterner};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why report processing rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphRejection {
    /// A log entry names a request absent from the trace.
    LogEntryUnknownRequest {
        /// The offending request.
        rid: RequestId,
    },
    /// A log entry's opnum is 0 or exceeds `M(rid)`.
    LogEntryBadOpnum {
        /// The offending request.
        rid: RequestId,
        /// The bad opnum.
        opnum: OpNum,
    },
    /// Two log entries claim the same `(rid, opnum)`.
    DuplicateOperation {
        /// The offending request.
        rid: RequestId,
        /// The duplicated opnum.
        opnum: OpNum,
    },
    /// `M(rid)` promises an operation no log contains.
    MissingOperation {
        /// The offending request.
        rid: RequestId,
        /// The missing opnum.
        opnum: OpNum,
    },
    /// Adjacent same-request log entries with non-increasing opnums.
    LogOrderViolation {
        /// The offending request.
        rid: RequestId,
    },
    /// Two operation logs share an object name.
    DuplicateObjectName {
        /// The duplicated name.
        name: String,
    },
    /// The event graph has a cycle: no consistent ordering exists.
    CycleDetected,
}

impl std::fmt::Display for GraphRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphRejection::LogEntryUnknownRequest { rid } => {
                write!(f, "log entry names {rid} which is not in the trace")
            }
            GraphRejection::LogEntryBadOpnum { rid, opnum } => {
                write!(f, "log entry ({rid},{opnum}) outside 1..=M")
            }
            GraphRejection::DuplicateOperation { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) appears in two log positions")
            }
            GraphRejection::MissingOperation { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) promised by M but not logged")
            }
            GraphRejection::LogOrderViolation { rid } => {
                write!(f, "log entries of {rid} are out of program order")
            }
            GraphRejection::DuplicateObjectName { name } => {
                write!(f, "two operation logs claim object {name}")
            }
            GraphRejection::CycleDetected => {
                write!(f, "event graph has a cycle: no consistent order exists")
            }
        }
    }
}

impl std::error::Error for GraphRejection {}

/// Sentinel object index marking an unfilled [`OpMap`] slot.
const UNSET: u32 = u32::MAX;

/// The OpMap: `(rid, opnum) -> (object index, log sequence number)`.
///
/// Stored as a flat per-request offset table over the dense request
/// indices of the shared [`RidInterner`]: request `idx` owns the slot
/// range `offsets[idx]..offsets[idx + 1]` (one slot per promised
/// operation), so a lookup is two array reads — no `(rid, opnum)`
/// hashing. The interner rides along so the audit's re-execution
/// workers can reuse the same dense indices for their per-request
/// cursors.
#[derive(Debug, Clone)]
pub struct OpMap {
    interner: Arc<RidInterner>,
    /// Per dense request: prefix offsets into `slots`; length `X + 1`.
    offsets: Vec<u32>,
    /// One `(object index, seqnum)` slot per promised operation;
    /// `UNSET` object index marks a slot no log entry filled.
    slots: Vec<(u32, SeqNum)>,
    /// Number of filled slots.
    filled: usize,
}

impl OpMap {
    /// Looks up an operation (one interner hash to resolve `rid`, then
    /// pure index arithmetic — see [`OpMap::get_dense`]).
    pub fn get(&self, rid: RequestId, opnum: OpNum) -> Option<(usize, SeqNum)> {
        let idx = self.interner.index_of(rid)?;
        self.get_dense(idx, opnum)
    }

    /// Looks up an operation by dense request index: two array reads,
    /// zero hashing. `idx` must come from [`OpMap::interner`].
    pub fn get_dense(&self, idx: u32, opnum: OpNum) -> Option<(usize, SeqNum)> {
        if opnum.0 == 0 || opnum.is_infinity() {
            return None;
        }
        let start = self.offsets[idx as usize];
        let m = self.offsets[idx as usize + 1] - start;
        if opnum.0 > m {
            return None;
        }
        let (obj, seq) = self.slots[(start + opnum.0 - 1) as usize];
        (obj != UNSET).then_some((obj as usize, seq))
    }

    /// The dense requestID interning this OpMap (and the whole audit)
    /// indexes by.
    pub fn interner(&self) -> &Arc<RidInterner> {
        &self.interner
    }

    /// Number of indexed operations.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True if no operations are indexed.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    // ---- Incremental construction (streaming audit) ------------------
    //
    // The streaming driver grows the OpMap one request at a time as
    // requests arrive in epochs, filling slots from per-rid log-entry
    // lists. Misfills are impossible to diagnose locally (a bad opnum
    // may be the reports' fault, judged only by the final full
    // `process_op_reports_interned` pass), so the incremental API is
    // deliberately lenient: out-of-range fills are dropped, duplicate
    // fills keep the first claim — exactly the information the batch
    // OpMap would hold for the same `(rid, opnum)`.

    /// An empty OpMap over a placeholder interner, the streaming
    /// audit's starting point. Use [`OpMap::set_interner`] to point it
    /// at the canonical interner before lookups.
    pub(crate) fn streaming_empty() -> OpMap {
        OpMap {
            interner: RidInterner::empty(),
            offsets: vec![0],
            slots: Vec::new(),
            filled: 0,
        }
    }

    /// Swaps the interner reference (streaming epochs alternate between
    /// a placeholder and the canonical, growing interner so the balance
    /// validator keeps exclusive ownership during ingest).
    pub(crate) fn set_interner(&mut self, interner: Arc<RidInterner>) {
        self.interner = interner;
    }

    /// Appends the slot range for the next dense request (in arrival
    /// order), with `m` promised operations, all unfilled.
    pub(crate) fn append_request(&mut self, m: u32) {
        let end = *self.offsets.last().expect("offsets never empty") + m;
        self.offsets.push(end);
        self.slots.resize(end as usize, (UNSET, SeqNum(0)));
    }

    /// Fills the slot for `(idx, opnum)` with `(obj, seq)` if the slot
    /// exists and is unclaimed; returns whether it was filled.
    pub(crate) fn fill_slot(&mut self, idx: u32, opnum: OpNum, obj: u32, seq: SeqNum) -> bool {
        if opnum.0 == 0 || opnum.is_infinity() {
            return false;
        }
        let start = self.offsets[idx as usize];
        let m = self.offsets[idx as usize + 1] - start;
        if opnum.0 > m {
            return false;
        }
        let slot = &mut self.slots[(start + opnum.0 - 1) as usize];
        if slot.0 != UNSET {
            return false;
        }
        *slot = (obj, seq);
        self.filled += 1;
        true
    }

    /// Rough resident size in bytes (offset + slot arrays; the interner
    /// is accounted separately by its owner).
    pub(crate) fn estimated_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.slots.len() * std::mem::size_of::<(u32, SeqNum)>()
    }
}

/// The audit graph `G` over dense node ids, in compressed-sparse-row
/// (CSR) form.
///
/// Node numbering per dense request index `idx` (with `m = M(rid)`):
/// the request owns the contiguous id range `base[idx]..base[idx + 1]`
/// — slot 0 is `(rid, 0)`, slots `1..=m` are the operations, slot
/// `m + 1` is `(rid, ∞)`. Requests are numbered in arrival order (the
/// interner's dense order), so the whole graph layout is determined by
/// the trace and `M` alone.
///
/// Out-edges of node `v` are `col[row_start[v]..row_start[v + 1]]`; the
/// builder also accumulates `indegree` during the fill pass so Kahn's
/// check never re-counts edges.
#[derive(Debug)]
pub struct AuditGraph {
    interner: Arc<RidInterner>,
    /// Node-id base per dense request; length `X + 1`.
    base: Vec<u32>,
    /// CSR row offsets; length `num_nodes + 1`.
    row_start: Vec<u32>,
    /// CSR column (edge target) array; length `num_edges`.
    col: Vec<u32>,
    /// Per-node indegree, accumulated during the fill pass.
    indegree: Vec<u32>,
    /// Wall time of the two-pass CSR build (count + prefix-sum + fill).
    build_wall: Duration,
}

impl AuditGraph {
    /// Total nodes (`2X + Y`).
    pub fn num_nodes(&self) -> usize {
        self.row_start.len() - 1
    }

    /// Total edges.
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }

    /// Wall time the two-pass CSR build took (the harness surfaces this
    /// as the graph-build share of the "ProcOpRep" phase).
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// Kahn's algorithm over the flat CSR arrays: copies the
    /// precomputed indegrees into `indegree_scratch` (cleared and
    /// refilled — callers can reuse one allocation across graphs and
    /// queries), seeds a stack with the zero-indegree nodes, and visits
    /// nodes as their last incoming edge is retired. Returns true iff
    /// every node was visited, i.e. the graph is acyclic.
    fn kahn(&self, indegree_scratch: &mut Vec<u32>, mut visit: impl FnMut(u32)) -> bool {
        let n = self.num_nodes();
        indegree_scratch.clear();
        indegree_scratch.extend_from_slice(&self.indegree);
        let mut stack: Vec<u32> = (0..n as u32)
            .filter(|&v| indegree_scratch[v as usize] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(cur) = stack.pop() {
            visited += 1;
            visit(cur);
            let row =
                self.row_start[cur as usize] as usize..self.row_start[cur as usize + 1] as usize;
            for &to in &self.col[row] {
                indegree_scratch[to as usize] -= 1;
                if indegree_scratch[to as usize] == 0 {
                    stack.push(to);
                }
            }
        }
        visited == n
    }

    /// True if the graph is acyclic (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        self.is_acyclic_with(&mut Vec::new())
    }

    /// [`AuditGraph::is_acyclic`] with a caller-provided indegree
    /// scratch buffer, for repeated checks (the cycle-check microbench
    /// in the `timeprec` bench reuses one allocation across
    /// iterations).
    pub fn is_acyclic_with(&self, indegree_scratch: &mut Vec<u32>) -> bool {
        self.kahn(indegree_scratch, |_| {})
    }

    /// A topological order of the nodes as `(rid, opnum)` pairs, if the
    /// graph is acyclic. Used by the out-of-order audit oracle (§A.4).
    pub fn topological_order(&self) -> Option<Vec<(RequestId, OpNum)>> {
        let mut order = Vec::with_capacity(self.num_nodes());
        if !self.kahn(&mut Vec::new(), |v| order.push(v)) {
            return None;
        }
        Some(order.into_iter().map(|v| self.label(v)).collect())
    }

    /// Iterates every edge as labeled `((rid, opnum), (rid, opnum))`
    /// pairs, in CSR row order. This is the oracle surface: the
    /// property suite compares it against the [`two_phase`] reference
    /// construction.
    pub fn edges(&self) -> impl Iterator<Item = ((RequestId, OpNum), (RequestId, OpNum))> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |from| {
            let row =
                self.row_start[from as usize] as usize..self.row_start[from as usize + 1] as usize;
            self.col[row]
                .iter()
                .map(move |&to| (self.label(from), self.label(to)))
        })
    }

    fn label(&self, node: u32) -> (RequestId, OpNum) {
        // Every request owns at least two nodes, so `base` is strictly
        // increasing and the owner is the last base at or below `node`.
        let idx = self.base.partition_point(|&b| b <= node) - 1;
        let slot = node - self.base[idx];
        let m = self.base[idx + 1] - self.base[idx] - 2;
        let opnum = if slot == m + 1 {
            OpNum::INFINITY
        } else {
            OpNum(slot)
        };
        (self.interner.rid(idx as u32), opnum)
    }
}

/// `ProcessOpReports` (Fig. 5): validates the logs against `M` and the
/// trace, constructs the OpMap, builds `G`, and checks acyclicity.
///
/// One interning pass resolves every requestID the function will ever
/// touch (trace events and log entries) into dense indices; every loop
/// after it — the missing-operation scan, the three edge streams, the
/// two-pass CSR build, Kahn's check — is flat index arithmetic with
/// zero hash-map or hash-set operations.
///
/// # Examples
///
/// ```
/// use orochi_common::ids::RequestId;
/// use orochi_core::graph::process_op_reports;
/// use orochi_core::reports::Reports;
/// use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};
///
/// // Two sequential requests that issued no state operations.
/// let (r1, r2) = (RequestId(1), RequestId(2));
/// let trace = Trace { events: vec![
///     Event::Request(r1, HttpRequest::get("/a", &[])),
///     Event::Response(r1, HttpResponse::ok(r1, "x")),
///     Event::Request(r2, HttpRequest::get("/b", &[])),
///     Event::Response(r2, HttpResponse::ok(r2, "y")),
/// ]}.ensure_balanced().unwrap();
/// let reports = Reports {
///     op_counts: [(r1, 0), (r2, 0)].into_iter().collect(),
///     ..Reports::new()
/// };
/// let (graph, opmap) = process_op_reports(&trace, &reports).unwrap();
/// // Nodes: per request, arrival + departure. Edges: one program edge
/// // per request plus the split time edge (r1, ∞) -> (r2, 0).
/// assert_eq!(graph.num_nodes(), 4);
/// assert_eq!(graph.num_edges(), 3);
/// assert!(opmap.is_empty());
/// assert!(graph.is_acyclic());
/// ```
pub fn process_op_reports(
    trace: &BalancedTrace,
    reports: &Reports,
) -> Result<(AuditGraph, OpMap), GraphRejection> {
    process_op_reports_with(trace, reports, 1)
}

/// [`process_op_reports`] with a worker pool for the CSR fill pass.
///
/// The count pass fixes every row's extent, and the three edge sources
/// then target *disjoint, precomputable* slots within those extents:
///
/// * departure nodes emit only Fig. 6 frontier edges, so their rows
///   belong to a single frontier task that fills them in stream order;
/// * every non-departure node emits exactly one program edge, always at
///   its row's first slot;
/// * a node emits at most one log-order edge — each `(rid, opnum)`
///   operation lives in exactly one object log and is the left end of
///   at most one adjacent pair — always at its row's second slot.
///
/// Workers (one frontier task, request-chunk program tasks, one task
/// per object log, claimed off a shared counter) therefore write
/// disjoint `col` slots with no per-row cursor synchronization, and the
/// CSR produced at any thread count is **byte-identical** to the
/// sequential fill. Indegrees accumulate with relaxed atomic adds
/// (sums are order-independent). Validation, interning, and the count
/// pass stay sequential: they are one streamed O(X + Y) walk.
pub fn process_op_reports_with(
    trace: &BalancedTrace,
    reports: &Reports,
    threads: usize,
) -> Result<(AuditGraph, OpMap), GraphRejection> {
    process_op_reports_interned(&trace.intern_rids(), reports, threads)
}

/// [`process_op_reports_with`] over a pre-built interner instead of a
/// materialized [`BalancedTrace`].
///
/// The trace's only contribution to `ProcessOpReports` is its dense
/// requestID interning (arrival order + the dense event stream the
/// frontier pass replays), so any validator that produced an interner —
/// in particular the streaming audit's incremental balance scan, which
/// never materializes the trace — can run the *same* graph code path
/// the batch audit runs. Verdicts and diagnostics are identical by
/// construction.
pub fn process_op_reports_interned(
    interner: &Arc<RidInterner>,
    reports: &Reports,
    threads: usize,
) -> Result<(AuditGraph, OpMap), GraphRejection> {
    // Reject aliased logs up front: one log per object name. This
    // happens before (and its hash set is part of) the interning pass;
    // walking in log order keeps the reported name — the first
    // duplicate encountered — identical to [`two_phase`]'s.
    {
        let mut seen = std::collections::HashSet::new();
        for (_, name, _) in reports.op_logs.iter() {
            if !seen.insert(name.as_str()) {
                return Err(GraphRejection::DuplicateObjectName {
                    name: name.as_str().to_string(),
                });
            }
        }
    }

    // ---- The one-time interning pass. --------------------------------
    // Dense requestIDs, the OpMap offset table, and the node-id bases.
    let interner = Arc::clone(interner);
    let x = interner.num_requests();
    let mut offsets: Vec<u32> = Vec::with_capacity(x + 1);
    let mut base: Vec<u32> = Vec::with_capacity(x + 1);
    let (mut ops_acc, mut node_acc) = (0u32, 0u32);
    for idx in 0..x {
        offsets.push(ops_acc);
        base.push(node_acc);
        let m = reports.op_count(interner.rid(idx as u32));
        ops_acc += m;
        node_acc += m + 2;
    }
    offsets.push(ops_acc);
    base.push(node_acc);

    // CheckLogs — still the interning pass: each log entry's requestID
    // is resolved through the interner exactly once, into flat per-log
    // index arrays the edge passes reuse. Validation and the OpMap fill
    // happen per entry, in log order, so the first defect found matches
    // a straight Fig. 5 walk.
    let mut slots: Vec<(u32, SeqNum)> = vec![(UNSET, SeqNum(0)); ops_acc as usize];
    let mut filled = 0usize;
    let mut resolved: Vec<Vec<u32>> = Vec::with_capacity(reports.op_logs.len());
    for (i, _, log) in reports.op_logs.iter() {
        let mut dense = Vec::with_capacity(log.len());
        for (seq, entry) in log.iter() {
            let Some(idx) = interner.index_of(entry.rid) else {
                return Err(GraphRejection::LogEntryUnknownRequest { rid: entry.rid });
            };
            let m = offsets[idx as usize + 1] - offsets[idx as usize];
            if entry.opnum.0 == 0 || entry.opnum.is_infinity() || entry.opnum.0 > m {
                return Err(GraphRejection::LogEntryBadOpnum {
                    rid: entry.rid,
                    opnum: entry.opnum,
                });
            }
            let slot = (offsets[idx as usize] + entry.opnum.0 - 1) as usize;
            if slots[slot].0 != UNSET {
                return Err(GraphRejection::DuplicateOperation {
                    rid: entry.rid,
                    opnum: entry.opnum,
                });
            }
            slots[slot] = (i as u32, seq);
            filled += 1;
            dense.push(idx);
        }
        resolved.push(dense);
    }
    // ---- Everything below is index arithmetic: zero hashing. --------

    // Every operation promised by M must be logged (dense order).
    for idx in 0..x {
        let (s, e) = (offsets[idx] as usize, offsets[idx + 1] as usize);
        for (k, slot) in slots[s..e].iter().enumerate() {
            if slot.0 == UNSET {
                return Err(GraphRejection::MissingOperation {
                    rid: interner.rid(idx as u32),
                    opnum: OpNum(k as u32 + 1),
                });
            }
        }
    }

    // Same-request log adjacency must be in increasing opnum order
    // (different-request adjacency becomes a log-order edge below).
    for ((_, _, log), dense) in reports.op_logs.iter().zip(&resolved) {
        for (k, pair) in log.entries().windows(2).enumerate() {
            if dense[k] == dense[k + 1] && pair[0].opnum >= pair[1].opnum {
                return Err(GraphRejection::LogOrderViolation { rid: pair[1].rid });
            }
        }
    }

    // Two-pass CSR build over one edge stream. `each_edge` replays the
    // three Fig. 5 edge sources in a fixed order — Fig. 6 frontier
    // (split) edges streamed straight from the interner, program edges,
    // log-order edges — first counting out-degrees, then filling the
    // column array (and the indegrees Kahn's check will consume).
    let t_build = Instant::now();
    let num_nodes = node_acc as usize;
    let each_edge = |emit: &mut dyn FnMut(u32, u32)| {
        // SplitNodes: time-precedence edges (r1, ∞) -> (r2, 0).
        for_each_frontier_edge(&interner, |from, to| {
            emit(base[from as usize + 1] - 1, base[to as usize]);
        });
        // AddProgramEdges: (rid, k-1) -> (rid, k), …, (rid, M) -> (rid, ∞)
        // — each node in the request's range points at its successor.
        for idx in 0..x {
            for node in base[idx]..base[idx + 1] - 1 {
                emit(node, node + 1);
            }
        }
        // AddStateEdges: adjacent log entries of different requests.
        for ((_, _, log), dense) in reports.op_logs.iter().zip(&resolved) {
            for (k, pair) in log.entries().windows(2).enumerate() {
                if dense[k] != dense[k + 1] {
                    emit(
                        base[dense[k] as usize] + pair[0].opnum.0,
                        base[dense[k + 1] as usize] + pair[1].opnum.0,
                    );
                }
            }
        }
    };
    let mut row_start = vec![0u32; num_nodes + 1];
    each_edge(&mut |from, _| row_start[from as usize + 1] += 1);
    for v in 0..num_nodes {
        row_start[v + 1] += row_start[v];
    }
    let (col, indegree) = if threads <= 1 {
        let mut cursor: Vec<u32> = row_start[..num_nodes].to_vec();
        let mut col = vec![0u32; row_start[num_nodes] as usize];
        let mut indegree = vec![0u32; num_nodes];
        each_edge(&mut |from, to| {
            let c = &mut cursor[from as usize];
            col[*c as usize] = to;
            *c += 1;
            indegree[to as usize] += 1;
        });
        (col, indegree)
    } else {
        fill_csr_parallel(&interner, reports, &resolved, &base, &row_start, threads)
    };
    let graph = AuditGraph {
        interner: Arc::clone(&interner),
        base,
        row_start,
        col,
        indegree,
        build_wall: t_build.elapsed(),
    };

    // CycleDetect.
    if !graph.is_acyclic() {
        return Err(GraphRejection::CycleDetected);
    }
    Ok((
        graph,
        OpMap {
            interner,
            offsets,
            slots,
            filled,
        },
    ))
}

/// The fill pass of the two-pass CSR build, parallelized. See
/// [`process_op_reports_with`] for the slot-disjointness argument that
/// makes the output byte-identical to the sequential fill.
fn fill_csr_parallel(
    interner: &RidInterner,
    reports: &Reports,
    resolved: &[Vec<u32>],
    base: &[u32],
    row_start: &[u32],
    threads: usize,
) -> (Vec<u32>, Vec<u32>) {
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
    let num_nodes = row_start.len() - 1;
    let num_edges = row_start[num_nodes] as usize;
    let x = base.len() - 1;
    let col: Vec<AtomicU32> = std::iter::repeat_with(|| AtomicU32::new(0))
        .take(num_edges)
        .collect();
    let indegree: Vec<AtomicU32> = std::iter::repeat_with(|| AtomicU32::new(0))
        .take(num_nodes)
        .collect();
    // Every slot is written exactly once, at a position fixed by the
    // count pass; only the indegree sums race (and commute).
    let place = |pos: usize, to: u32| {
        col[pos].store(to, Ordering::Relaxed);
        indegree[to as usize].fetch_add(1, Ordering::Relaxed);
    };
    // Task queue: task 0 streams the frontier; then request chunks of
    // program edges; then one task per object log.
    const CHUNK: usize = 2048;
    let prog_tasks = x.div_ceil(CHUNK);
    let total = 1 + prog_tasks + reports.op_logs.len();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= total {
                    break;
                }
                if t == 0 {
                    // Frontier edges own the departure rows; a local
                    // cursor tracks the fill within each row.
                    let mut cursor: Vec<u32> = row_start[..num_nodes].to_vec();
                    for_each_frontier_edge(interner, |from, to| {
                        let node = (base[from as usize + 1] - 1) as usize;
                        let c = &mut cursor[node];
                        place(*c as usize, base[to as usize]);
                        *c += 1;
                    });
                } else if t <= prog_tasks {
                    // Program edges: the first slot of every
                    // non-departure row.
                    let lo = (t - 1) * CHUNK;
                    let hi = (lo + CHUNK).min(x);
                    for idx in lo..hi {
                        for node in base[idx]..base[idx + 1] - 1 {
                            place(row_start[node as usize] as usize, node + 1);
                        }
                    }
                } else {
                    // Log-order edges: the second slot of the left
                    // entry's row (after its program edge).
                    let li = t - 1 - prog_tasks;
                    let log = reports.op_logs.log(li).expect("task bound");
                    let dense = &resolved[li];
                    for (k, pair) in log.entries().windows(2).enumerate() {
                        if dense[k] != dense[k + 1] {
                            let from = (base[dense[k] as usize] + pair[0].opnum.0) as usize;
                            place(
                                row_start[from] as usize + 1,
                                base[dense[k + 1] as usize] + pair[1].opnum.0,
                            );
                        }
                    }
                }
            });
        }
    })
    .expect("CSR fill workers never panic");
    (
        col.into_iter().map(AtomicU32::into_inner).collect(),
        indegree.into_iter().map(AtomicU32::into_inner).collect(),
    )
}

pub mod two_phase {
    //! The pre-CSR construction, preserved as a baseline and oracle.
    //!
    //! This is the shape the streamed builder replaced: materialize the
    //! Fig. 6 edge list as `(RequestId, RequestId)` pairs, re-hash every
    //! endpoint through a `rid -> index` map, buffer adjacency as
    //! `Vec<Vec<u32>>`, build the OpMap as a `HashMap`, and recount
    //! indegrees with an O(E) sweep before Kahn's check. It is kept —
    //! not called by the audit — for two jobs:
    //!
    //! * the `timeprec` bench's graph-layer ablation times it against
    //!   [`super::process_op_reports`] (streamed CSR must win);
    //! * the property suite runs both on fuzzed traces/reports and
    //!   demands the same verdict, the same diagnostic, and the same
    //!   edge multiset.

    use super::GraphRejection;
    use crate::precedence::create_time_precedence_graph;
    use crate::reports::Reports;
    use orochi_common::ids::{OpNum, RequestId, SeqNum};
    use orochi_trace::record::BalancedTrace;
    use std::collections::HashMap;

    /// The audit graph in its pre-CSR form: `Vec<Vec<u32>>` adjacency
    /// over the same node numbering as [`super::AuditGraph`].
    #[derive(Debug)]
    pub struct ReferenceGraph {
        rids: Vec<RequestId>,
        rid_index: HashMap<RequestId, usize>,
        base: Vec<u32>,
        op_counts: Vec<u32>,
        adj: Vec<Vec<u32>>,
        edge_count: usize,
    }

    impl ReferenceGraph {
        fn new(trace: &BalancedTrace, reports: &Reports) -> Self {
            let rids: Vec<RequestId> = trace.request_ids().collect();
            let rid_index: HashMap<RequestId, usize> =
                rids.iter().enumerate().map(|(i, r)| (*r, i)).collect();
            let op_counts: Vec<u32> = rids.iter().map(|r| reports.op_count(*r)).collect();
            let mut base = Vec::with_capacity(rids.len() + 1);
            let mut acc: u32 = 0;
            for m in &op_counts {
                base.push(acc);
                acc += m + 2;
            }
            base.push(acc);
            ReferenceGraph {
                rids,
                rid_index,
                base,
                op_counts,
                adj: vec![Vec::new(); acc as usize],
                edge_count: 0,
            }
        }

        /// Total nodes (`2X + Y`).
        pub fn num_nodes(&self) -> usize {
            self.adj.len()
        }

        /// Total edges.
        pub fn num_edges(&self) -> usize {
            self.edge_count
        }

        fn node(&self, rid: RequestId, opnum: OpNum) -> u32 {
            let idx = self.rid_index[&rid];
            let m = self.op_counts[idx];
            let slot = if opnum.is_infinity() { m + 1 } else { opnum.0 };
            self.base[idx] + slot
        }

        fn add_edge(&mut self, from: u32, to: u32) {
            self.adj[from as usize].push(to);
            self.edge_count += 1;
        }

        /// Kahn's algorithm with the O(E) indegree recount the CSR
        /// builder eliminated.
        pub fn is_acyclic(&self) -> bool {
            let n = self.adj.len();
            let mut indegree = vec![0u32; n];
            for outs in &self.adj {
                for &to in outs {
                    indegree[to as usize] += 1;
                }
            }
            let mut stack: Vec<u32> = (0..n as u32)
                .filter(|&i| indegree[i as usize] == 0)
                .collect();
            let mut visited = 0usize;
            while let Some(cur) = stack.pop() {
                visited += 1;
                for &to in &self.adj[cur as usize] {
                    indegree[to as usize] -= 1;
                    if indegree[to as usize] == 0 {
                        stack.push(to);
                    }
                }
            }
            visited == n
        }

        /// Every edge as labeled `((rid, opnum), (rid, opnum))` pairs,
        /// for multiset comparison against [`super::AuditGraph::edges`].
        pub fn edges(&self) -> Vec<((RequestId, OpNum), (RequestId, OpNum))> {
            let mut out = Vec::with_capacity(self.edge_count);
            for (from, outs) in self.adj.iter().enumerate() {
                for &to in outs {
                    out.push((self.label(from as u32), self.label(to)));
                }
            }
            out
        }

        fn label(&self, node: u32) -> (RequestId, OpNum) {
            let idx = self.base.partition_point(|&b| b <= node) - 1;
            let slot = node - self.base[idx];
            let m = self.op_counts[idx];
            let opnum = if slot == m + 1 {
                OpNum::INFINITY
            } else {
                OpNum(slot)
            };
            (self.rids[idx], opnum)
        }
    }

    /// The original two-phase `ProcessOpReports`: identical verdicts
    /// and diagnostics to [`super::process_op_reports`], produced the
    /// pre-CSR way.
    pub fn process_op_reports(
        trace: &BalancedTrace,
        reports: &Reports,
    ) -> Result<(ReferenceGraph, usize), GraphRejection> {
        {
            let mut seen = std::collections::HashSet::new();
            for (_, name, _) in reports.op_logs.iter() {
                if !seen.insert(name.as_str()) {
                    return Err(GraphRejection::DuplicateObjectName {
                        name: name.as_str().to_string(),
                    });
                }
            }
        }

        let mut graph = ReferenceGraph::new(trace, reports);

        // SplitNodes: materialize the Fig. 6 edge list, then re-hash
        // every endpoint through `node()`.
        let gtr = create_time_precedence_graph(trace);
        for (r1, r2) in &gtr.edges {
            let from = graph.node(*r1, OpNum::INFINITY);
            let to = graph.node(*r2, OpNum(0));
            graph.add_edge(from, to);
        }

        // AddProgramEdges.
        for (idx, rid) in graph.rids.clone().into_iter().enumerate() {
            let m = graph.op_counts[idx];
            for opnum in 1..=m {
                let from = graph.node(rid, OpNum(opnum - 1));
                let to = graph.node(rid, OpNum(opnum));
                graph.add_edge(from, to);
            }
            let from = graph.node(rid, OpNum(m));
            let to = graph.node(rid, OpNum::INFINITY);
            graph.add_edge(from, to);
        }

        // CheckLogs with the OpMap as a HashMap.
        let mut opmap: HashMap<(RequestId, OpNum), (usize, SeqNum)> = HashMap::new();
        for (i, _, log) in reports.op_logs.iter() {
            for (seq, entry) in log.iter() {
                if !trace.contains(entry.rid) {
                    return Err(GraphRejection::LogEntryUnknownRequest { rid: entry.rid });
                }
                let m = reports.op_count(entry.rid);
                if entry.opnum.0 == 0 || entry.opnum.is_infinity() || entry.opnum.0 > m {
                    return Err(GraphRejection::LogEntryBadOpnum {
                        rid: entry.rid,
                        opnum: entry.opnum,
                    });
                }
                if opmap.insert((entry.rid, entry.opnum), (i, seq)).is_some() {
                    return Err(GraphRejection::DuplicateOperation {
                        rid: entry.rid,
                        opnum: entry.opnum,
                    });
                }
            }
        }
        for (idx, rid) in graph.rids.iter().enumerate() {
            let m = graph.op_counts[idx];
            for opnum in 1..=m {
                if !opmap.contains_key(&(*rid, OpNum(opnum))) {
                    return Err(GraphRejection::MissingOperation {
                        rid: *rid,
                        opnum: OpNum(opnum),
                    });
                }
            }
        }

        // AddStateEdges.
        for (_, _, log) in reports.op_logs.iter() {
            for pair in log.entries().windows(2) {
                let (prev, curr) = (&pair[0], &pair[1]);
                if prev.rid != curr.rid {
                    let from = graph.node(prev.rid, prev.opnum);
                    let to = graph.node(curr.rid, curr.opnum);
                    graph.add_edge(from, to);
                } else if prev.opnum >= curr.opnum {
                    return Err(GraphRejection::LogOrderViolation { rid: curr.rid });
                }
            }
        }

        // CycleDetect.
        if !graph.is_acyclic() {
            return Err(GraphRejection::CycleDetected);
        }
        let len = opmap.len();
        Ok((graph, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_common::ids::CtlFlowTag;
    use orochi_state::object::{ObjectName, OpContents};
    use orochi_state::oplog::{OpLog, OpLogEntry, OpLogs};
    use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};

    fn req(rid: u64) -> Event {
        Event::Request(RequestId(rid), HttpRequest::get("/x", &[]))
    }

    fn resp(rid: u64) -> Event {
        Event::Response(RequestId(rid), HttpResponse::ok(RequestId(rid), "ok"))
    }

    fn entry(rid: u64, opnum: u32, contents: OpContents) -> OpLogEntry {
        OpLogEntry {
            rid: RequestId(rid),
            opnum: OpNum(opnum),
            contents,
        }
    }

    fn write(rid: u64, opnum: u32) -> OpLogEntry {
        entry(rid, opnum, OpContents::RegisterWrite { value: vec![1] })
    }

    fn read(rid: u64, opnum: u32) -> OpLogEntry {
        entry(rid, opnum, OpContents::RegisterRead)
    }

    fn reports_with(logs: Vec<(ObjectName, Vec<OpLogEntry>)>, counts: &[(u64, u32)]) -> Reports {
        Reports {
            groupings: vec![(
                CtlFlowTag(1),
                counts.iter().map(|(r, _)| RequestId(*r)).collect(),
            )],
            op_logs: OpLogs::from_pairs(
                logs.into_iter()
                    .map(|(n, es)| (n, OpLog::from_entries(es)))
                    .collect(),
            ),
            op_counts: counts.iter().map(|(r, m)| (RequestId(*r), *m)).collect(),
            nondet: Default::default(),
        }
    }

    /// The Fig. 4 example programs f and g touch registers A and B. The
    /// three scenarios differ in trace timing, responses, and logs; here
    /// we check only the graph layer (full audit-level versions live in
    /// the integration tests).
    #[test]
    fn figure4_example_a_graph_is_cyclic_free_but_detected_by_time_edges() {
        // Example a: r1 completes before r2 arrives, yet the logs put
        // r2's operations before r1's. Log order says r2's write to B
        // precedes r1's read of B... combined with time edges
        // (r1, ∞) -> (r2, 0) this forms a cycle.
        let trace = Trace {
            events: vec![req(1), resp(1), req(2), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        // f (r1): write A (op1), read B (op2). g (r2): write B (op1),
        // read A (op2).
        // Logs claim r2's ops interleave before r1's — e.g., OL_A:
        // [r2 read A, r1 write A]; OL_B: [r2 write B, r1 read B].
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![read(2, 2), write(1, 1)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![write(2, 1), read(1, 2)],
                ),
            ],
            &[(1, 2), (2, 2)],
        );
        let err = process_op_reports(&trace, &reports).unwrap_err();
        assert_eq!(err, GraphRejection::CycleDetected);
    }

    #[test]
    fn figure4_example_b_cycle_from_logs_alone() {
        // Example b: r1 and r2 concurrent; the delivered (0,0) responses
        // require each read to precede the other's write — the log edges
        // plus program edges form a cycle.
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![read(2, 2), write(1, 1)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![read(1, 2), write(2, 1)],
                ),
            ],
            &[(1, 2), (2, 2)],
        );
        let err = process_op_reports(&trace, &reports).unwrap_err();
        assert_eq!(err, GraphRejection::CycleDetected);
    }

    #[test]
    fn figure4_example_c_accepted() {
        // Example c: both writes before both reads — consistent.
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![write(1, 1), read(2, 2)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![write(2, 1), read(1, 2)],
                ),
            ],
            &[(1, 2), (2, 2)],
        );
        let (graph, opmap) = process_op_reports(&trace, &reports).unwrap();
        assert_eq!(opmap.len(), 4);
        // Nodes: 2 requests × (2 ops + 2 endpoints).
        assert_eq!(graph.num_nodes(), 8);
        assert!(graph.topological_order().is_some());
    }

    #[test]
    fn streamed_csr_matches_two_phase_reference() {
        // Same trace/reports through both constructions: identical
        // node count and edge multiset.
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2), req(3), resp(3)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![write(1, 1), read(2, 2), read(3, 1)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![write(2, 1), read(1, 2)],
                ),
            ],
            &[(1, 2), (2, 2), (3, 1)],
        );
        let (graph, opmap) = process_op_reports(&trace, &reports).unwrap();
        let (reference, ref_opmap_len) = two_phase::process_op_reports(&trace, &reports).unwrap();
        assert_eq!(graph.num_nodes(), reference.num_nodes());
        assert_eq!(graph.num_edges(), reference.num_edges());
        assert_eq!(opmap.len(), ref_opmap_len);
        let mut csr_edges: Vec<_> = graph.edges().collect();
        let mut ref_edges = reference.edges();
        csr_edges.sort();
        ref_edges.sort();
        assert_eq!(csr_edges, ref_edges);
    }

    #[test]
    fn parallel_csr_fill_is_byte_identical() {
        // The parallel fill writes every edge at a precomputed slot, so
        // the resulting arrays must match the sequential build exactly —
        // not just as an edge multiset.
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2), req(3), resp(3)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![write(1, 1), read(2, 2), read(3, 1)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![write(2, 1), read(1, 2)],
                ),
            ],
            &[(1, 2), (2, 2), (3, 1)],
        );
        let (seq, _) = process_op_reports_with(&trace, &reports, 1).unwrap();
        for threads in [2, 4, 8] {
            let (par, _) = process_op_reports_with(&trace, &reports, threads).unwrap();
            assert_eq!(seq.base, par.base);
            assert_eq!(seq.row_start, par.row_start);
            assert_eq!(seq.col, par.col, "col mismatch at {threads} threads");
            assert_eq!(seq.indegree, par.indegree);
        }
    }

    #[test]
    fn opmap_dense_lookup_matches_rid_lookup() {
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 1), read(2, 1)],
            )],
            &[(1, 1), (2, 1)],
        );
        let (_, opmap) = process_op_reports(&trace, &reports).unwrap();
        for rid in [RequestId(1), RequestId(2)] {
            let idx = opmap.interner().index_of(rid).unwrap();
            assert_eq!(opmap.get(rid, OpNum(1)), opmap.get_dense(idx, OpNum(1)));
            assert!(opmap.get(rid, OpNum(1)).is_some());
            // Out-of-range opnums and the sentinels miss cleanly.
            assert_eq!(opmap.get(rid, OpNum(0)), None);
            assert_eq!(opmap.get(rid, OpNum(2)), None);
            assert_eq!(opmap.get(rid, OpNum::INFINITY), None);
        }
        assert_eq!(opmap.get(RequestId(99), OpNum(1)), None);
    }

    #[test]
    fn rejects_unknown_request_in_log() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(ObjectName(String::from("reg:A")), vec![write(99, 1)])],
            &[(1, 0)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::LogEntryUnknownRequest { .. }
        ));
    }

    #[test]
    fn rejects_opnum_beyond_m() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(ObjectName(String::from("reg:A")), vec![write(1, 3)])],
            &[(1, 2)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::LogEntryBadOpnum { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_operation() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 1), write(1, 1)],
            )],
            &[(1, 1)],
        );
        // The same (rid, opnum) in two log slots — caught either as a
        // duplicate or as a log-order violation depending on adjacency;
        // here it is a duplicate in CheckLogs.
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::DuplicateOperation { .. }
        ));
    }

    #[test]
    fn rejects_missing_promised_operation() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(ObjectName(String::from("reg:A")), vec![write(1, 1)])],
            &[(1, 2)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::MissingOperation { .. }
        ));
    }

    #[test]
    fn rejects_same_request_out_of_order_in_log() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 2), write(1, 1)],
            )],
            &[(1, 2)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::LogOrderViolation { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_object_names() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (ObjectName(String::from("reg:A")), vec![]),
                (ObjectName(String::from("reg:A")), vec![]),
            ],
            &[(1, 0)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::DuplicateObjectName { .. }
        ));
    }

    #[test]
    fn duplicate_name_diagnostic_is_first_in_log_order() {
        // Two duplicated names: the reported one must be the first
        // duplicate *encountered in log order* (here "reg:z", even
        // though "reg:a" sorts first) — and identical across the
        // streamed and two-phase constructions.
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (ObjectName(String::from("reg:z")), vec![]),
                (ObjectName(String::from("reg:z")), vec![]),
                (ObjectName(String::from("reg:a")), vec![]),
                (ObjectName(String::from("reg:a")), vec![]),
            ],
            &[(1, 0)],
        );
        let expected = GraphRejection::DuplicateObjectName {
            name: String::from("reg:z"),
        };
        assert_eq!(process_op_reports(&trace, &reports).unwrap_err(), expected);
        assert_eq!(
            two_phase::process_op_reports(&trace, &reports).unwrap_err(),
            expected
        );
    }

    #[test]
    fn accepts_empty_reports_for_oplesss_trace() {
        let trace = Trace {
            events: vec![req(1), resp(1), req(2), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(vec![], &[(1, 0), (2, 0)]);
        let (graph, opmap) = process_op_reports(&trace, &reports).unwrap();
        assert!(opmap.is_empty());
        assert_eq!(graph.num_nodes(), 4);
        let order = graph.topological_order().unwrap();
        // (r1, ∞) must come before (r2, 0) in any topological order.
        let pos_r1_inf = order
            .iter()
            .position(|(r, o)| *r == RequestId(1) && o.is_infinity())
            .unwrap();
        let pos_r2_0 = order
            .iter()
            .position(|(r, o)| *r == RequestId(2) && *o == OpNum(0))
            .unwrap();
        assert!(pos_r1_inf < pos_r2_0);
    }

    #[test]
    fn topological_order_respects_log_edges() {
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 1), read(2, 1)],
            )],
            &[(1, 1), (2, 1)],
        );
        let (graph, _) = process_op_reports(&trace, &reports).unwrap();
        let order = graph.topological_order().unwrap();
        let pos = |rid: u64, op: OpNum| {
            order
                .iter()
                .position(|(r, o)| *r == RequestId(rid) && *o == op)
                .unwrap()
        };
        assert!(pos(1, OpNum(1)) < pos(2, OpNum(1)));
        assert!(pos(1, OpNum(0)) < pos(1, OpNum(1)));
        assert!(pos(2, OpNum(1)) < pos(2, OpNum::INFINITY));
    }
}
