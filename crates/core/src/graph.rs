//! `ProcessOpReports` (Fig. 5): consistent-ordering verification.
//!
//! The verifier builds a directed graph `G` with a node for every event —
//! for each request `rid`, nodes `(rid, 0)` (arrival) and `(rid, ∞)`
//! (response departure), plus one node per alleged operation
//! `(rid, 1..M(rid))`. Edges come from three sources:
//!
//! * **time precedence** — the split edges of the Fig. 6 graph:
//!   `(r1, ∞) -> (r2, 0)` whenever `r1 <Tr r2`;
//! * **program order** — `(rid, k-1) -> (rid, k)` and
//!   `(rid, M(rid)) -> (rid, ∞)`;
//! * **log order** — an edge between adjacent log entries of different
//!   requests; same-request adjacency instead *checks* that the opnum
//!   increases.
//!
//! `CheckLogs` simultaneously builds the **OpMap**: the index from
//! `(rid, opnum)` to `(object index, log sequence number)` that
//! re-execution's `CheckOp` consults. If the graph has a cycle, the
//! events cannot be consistently ordered and the audit rejects (§3.4's
//! examples show why each edge source is necessary).
//!
//! The construction runs in `O(X + Y + Z)` time and space (Lemma 11).

use crate::precedence::create_time_precedence_graph;
use crate::reports::Reports;
use orochi_common::ids::{OpNum, RequestId, SeqNum};
use orochi_trace::record::BalancedTrace;
use std::collections::HashMap;

/// Why report processing rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphRejection {
    /// A log entry names a request absent from the trace.
    LogEntryUnknownRequest {
        /// The offending request.
        rid: RequestId,
    },
    /// A log entry's opnum is 0 or exceeds `M(rid)`.
    LogEntryBadOpnum {
        /// The offending request.
        rid: RequestId,
        /// The bad opnum.
        opnum: OpNum,
    },
    /// Two log entries claim the same `(rid, opnum)`.
    DuplicateOperation {
        /// The offending request.
        rid: RequestId,
        /// The duplicated opnum.
        opnum: OpNum,
    },
    /// `M(rid)` promises an operation no log contains.
    MissingOperation {
        /// The offending request.
        rid: RequestId,
        /// The missing opnum.
        opnum: OpNum,
    },
    /// Adjacent same-request log entries with non-increasing opnums.
    LogOrderViolation {
        /// The offending request.
        rid: RequestId,
    },
    /// Two operation logs share an object name.
    DuplicateObjectName {
        /// The duplicated name.
        name: String,
    },
    /// The event graph has a cycle: no consistent ordering exists.
    CycleDetected,
}

impl std::fmt::Display for GraphRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphRejection::LogEntryUnknownRequest { rid } => {
                write!(f, "log entry names {rid} which is not in the trace")
            }
            GraphRejection::LogEntryBadOpnum { rid, opnum } => {
                write!(f, "log entry ({rid},{opnum}) outside 1..=M")
            }
            GraphRejection::DuplicateOperation { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) appears in two log positions")
            }
            GraphRejection::MissingOperation { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) promised by M but not logged")
            }
            GraphRejection::LogOrderViolation { rid } => {
                write!(f, "log entries of {rid} are out of program order")
            }
            GraphRejection::DuplicateObjectName { name } => {
                write!(f, "two operation logs claim object {name}")
            }
            GraphRejection::CycleDetected => {
                write!(f, "event graph has a cycle: no consistent order exists")
            }
        }
    }
}

impl std::error::Error for GraphRejection {}

/// The OpMap: `(rid, opnum) -> (object index, log sequence number)`.
#[derive(Debug, Clone, Default)]
pub struct OpMap {
    map: HashMap<(RequestId, OpNum), (usize, SeqNum)>,
}

impl OpMap {
    /// Looks up an operation.
    pub fn get(&self, rid: RequestId, opnum: OpNum) -> Option<(usize, SeqNum)> {
        self.map.get(&(rid, opnum)).copied()
    }

    /// Number of indexed operations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no operations are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The audit graph `G` over dense node ids.
///
/// Node numbering per request `rid` (with `m = M(rid)`): slot 0 is
/// `(rid, 0)`, slots `1..=m` are the operations, slot `m + 1` is
/// `(rid, ∞)`.
#[derive(Debug)]
pub struct AuditGraph {
    /// Requests in a fixed order.
    rids: Vec<RequestId>,
    rid_index: HashMap<RequestId, usize>,
    /// Prefix offsets into the dense node id space.
    base: Vec<u32>,
    /// `M(rid)` per rid (same order as `rids`).
    op_counts: Vec<u32>,
    /// Adjacency list.
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl AuditGraph {
    fn new(trace: &BalancedTrace, reports: &Reports) -> Self {
        let mut rids: Vec<RequestId> = trace.request_ids().collect();
        rids.sort();
        let rid_index: HashMap<RequestId, usize> =
            rids.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        let op_counts: Vec<u32> = rids.iter().map(|r| reports.op_count(*r)).collect();
        let mut base = Vec::with_capacity(rids.len() + 1);
        let mut acc: u32 = 0;
        for m in &op_counts {
            base.push(acc);
            acc += m + 2;
        }
        base.push(acc);
        AuditGraph {
            rids,
            rid_index,
            base,
            op_counts,
            adj: vec![Vec::new(); acc as usize],
            edge_count: 0,
        }
    }

    /// Total nodes (`2X + Y`).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Total edges.
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    fn node(&self, rid: RequestId, opnum: OpNum) -> u32 {
        let idx = self.rid_index[&rid];
        let m = self.op_counts[idx];
        let slot = if opnum.is_infinity() {
            m + 1
        } else {
            debug_assert!(opnum.0 <= m, "opnum within M");
            opnum.0
        };
        self.base[idx] + slot
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        self.adj[from as usize].push(to);
        self.edge_count += 1;
    }

    /// Kahn's algorithm: true if the graph is acyclic.
    fn is_acyclic(&self) -> bool {
        let n = self.adj.len();
        let mut indegree = vec![0u32; n];
        for outs in &self.adj {
            for &to in outs {
                indegree[to as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(cur) = queue.pop() {
            visited += 1;
            for &to in &self.adj[cur as usize] {
                indegree[to as usize] -= 1;
                if indegree[to as usize] == 0 {
                    queue.push(to);
                }
            }
        }
        visited == n
    }

    /// A topological order of the nodes as `(rid, opnum)` pairs, if the
    /// graph is acyclic. Used by the out-of-order audit oracle (§A.4).
    pub fn topological_order(&self) -> Option<Vec<(RequestId, OpNum)>> {
        let n = self.adj.len();
        let mut indegree = vec![0u32; n];
        for outs in &self.adj {
            for &to in outs {
                indegree[to as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(cur) = queue.pop() {
            order.push(cur);
            for &to in &self.adj[cur as usize] {
                indegree[to as usize] -= 1;
                if indegree[to as usize] == 0 {
                    queue.push(to);
                }
            }
        }
        if order.len() != n {
            return None;
        }
        Some(order.into_iter().map(|id| self.label(id)).collect())
    }

    fn label(&self, node: u32) -> (RequestId, OpNum) {
        // Binary search the base offsets for the owning request.
        let idx = match self.base.binary_search(&node) {
            Ok(mut i) => {
                // `node` may equal several bases when a request has no
                // nodes; pick the slot whose range contains it.
                while i + 1 < self.base.len() && self.base[i + 1] == node {
                    i += 1;
                }
                i.min(self.rids.len() - 1)
            }
            Err(i) => i - 1,
        };
        let slot = node - self.base[idx];
        let m = self.op_counts[idx];
        let opnum = if slot == m + 1 {
            OpNum::INFINITY
        } else {
            OpNum(slot)
        };
        (self.rids[idx], opnum)
    }
}

/// `ProcessOpReports` (Fig. 5): validates the logs against `M` and the
/// trace, constructs the OpMap, builds `G`, and checks acyclicity.
pub fn process_op_reports(
    trace: &BalancedTrace,
    reports: &Reports,
) -> Result<(AuditGraph, OpMap), GraphRejection> {
    // Reject aliased logs up front: one log per object name.
    {
        let mut seen = std::collections::HashSet::new();
        for (_, name, _) in reports.op_logs.iter() {
            if !seen.insert(name.as_str().to_string()) {
                return Err(GraphRejection::DuplicateObjectName {
                    name: name.as_str().to_string(),
                });
            }
        }
    }

    let mut graph = AuditGraph::new(trace, reports);

    // SplitNodes: time-precedence edges (r1, ∞) -> (r2, 0).
    let gtr = create_time_precedence_graph(trace);
    for (r1, r2) in &gtr.edges {
        let from = graph.node(*r1, OpNum::INFINITY);
        let to = graph.node(*r2, OpNum(0));
        graph.add_edge(from, to);
    }

    // AddProgramEdges: (rid, k-1) -> (rid, k), then (rid, M) -> (rid, ∞).
    for (idx, rid) in graph.rids.clone().into_iter().enumerate() {
        let m = graph.op_counts[idx];
        for opnum in 1..=m {
            let from = graph.node(rid, OpNum(opnum - 1));
            let to = graph.node(rid, OpNum(opnum));
            graph.add_edge(from, to);
        }
        let from = graph.node(rid, OpNum(m));
        let to = graph.node(rid, OpNum::INFINITY);
        graph.add_edge(from, to);
    }

    // CheckLogs: validate entries and build the OpMap.
    let mut opmap = OpMap::default();
    for (i, _, log) in reports.op_logs.iter() {
        for (seq, entry) in log.iter() {
            if !trace.contains(entry.rid) {
                return Err(GraphRejection::LogEntryUnknownRequest { rid: entry.rid });
            }
            let m = reports.op_count(entry.rid);
            if entry.opnum.0 == 0 || entry.opnum.is_infinity() || entry.opnum.0 > m {
                return Err(GraphRejection::LogEntryBadOpnum {
                    rid: entry.rid,
                    opnum: entry.opnum,
                });
            }
            if opmap
                .map
                .insert((entry.rid, entry.opnum), (i, seq))
                .is_some()
            {
                return Err(GraphRejection::DuplicateOperation {
                    rid: entry.rid,
                    opnum: entry.opnum,
                });
            }
        }
    }
    for (idx, rid) in graph.rids.iter().enumerate() {
        let m = graph.op_counts[idx];
        for opnum in 1..=m {
            if opmap.get(*rid, OpNum(opnum)).is_none() {
                return Err(GraphRejection::MissingOperation {
                    rid: *rid,
                    opnum: OpNum(opnum),
                });
            }
        }
    }

    // AddStateEdges: adjacent log entries from different requests get an
    // edge; same-request adjacency must have increasing opnums.
    for (_, _, log) in reports.op_logs.iter() {
        let entries = log.entries();
        for pair in entries.windows(2) {
            let (prev, curr) = (&pair[0], &pair[1]);
            if prev.rid != curr.rid {
                let from = graph.node(prev.rid, prev.opnum);
                let to = graph.node(curr.rid, curr.opnum);
                graph.add_edge(from, to);
            } else if prev.opnum >= curr.opnum {
                return Err(GraphRejection::LogOrderViolation { rid: curr.rid });
            }
        }
    }

    // CycleDetect.
    if !graph.is_acyclic() {
        return Err(GraphRejection::CycleDetected);
    }
    Ok((graph, opmap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orochi_common::ids::CtlFlowTag;
    use orochi_state::object::{ObjectName, OpContents};
    use orochi_state::oplog::{OpLog, OpLogEntry, OpLogs};
    use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};

    fn req(rid: u64) -> Event {
        Event::Request(RequestId(rid), HttpRequest::get("/x", &[]))
    }

    fn resp(rid: u64) -> Event {
        Event::Response(RequestId(rid), HttpResponse::ok(RequestId(rid), "ok"))
    }

    fn entry(rid: u64, opnum: u32, contents: OpContents) -> OpLogEntry {
        OpLogEntry {
            rid: RequestId(rid),
            opnum: OpNum(opnum),
            contents,
        }
    }

    fn write(rid: u64, opnum: u32) -> OpLogEntry {
        entry(rid, opnum, OpContents::RegisterWrite { value: vec![1] })
    }

    fn read(rid: u64, opnum: u32) -> OpLogEntry {
        entry(rid, opnum, OpContents::RegisterRead)
    }

    fn reports_with(logs: Vec<(ObjectName, Vec<OpLogEntry>)>, counts: &[(u64, u32)]) -> Reports {
        Reports {
            groupings: vec![(
                CtlFlowTag(1),
                counts.iter().map(|(r, _)| RequestId(*r)).collect(),
            )],
            op_logs: OpLogs::from_pairs(
                logs.into_iter()
                    .map(|(n, es)| (n, OpLog::from_entries(es)))
                    .collect(),
            ),
            op_counts: counts.iter().map(|(r, m)| (RequestId(*r), *m)).collect(),
            nondet: Default::default(),
        }
    }

    /// The Fig. 4 example programs f and g touch registers A and B. The
    /// three scenarios differ in trace timing, responses, and logs; here
    /// we check only the graph layer (full audit-level versions live in
    /// the integration tests).
    #[test]
    fn figure4_example_a_graph_is_cyclic_free_but_detected_by_time_edges() {
        // Example a: r1 completes before r2 arrives, yet the logs put
        // r2's operations before r1's. Log order says r2's write to B
        // precedes r1's read of B... combined with time edges
        // (r1, ∞) -> (r2, 0) this forms a cycle.
        let trace = Trace {
            events: vec![req(1), resp(1), req(2), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        // f (r1): write A (op1), read B (op2). g (r2): write B (op1),
        // read A (op2).
        // Logs claim r2's ops interleave before r1's — e.g., OL_A:
        // [r2 read A, r1 write A]; OL_B: [r2 write B, r1 read B].
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![read(2, 2), write(1, 1)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![write(2, 1), read(1, 2)],
                ),
            ],
            &[(1, 2), (2, 2)],
        );
        let err = process_op_reports(&trace, &reports).unwrap_err();
        assert_eq!(err, GraphRejection::CycleDetected);
    }

    #[test]
    fn figure4_example_b_cycle_from_logs_alone() {
        // Example b: r1 and r2 concurrent; the delivered (0,0) responses
        // require each read to precede the other's write — the log edges
        // plus program edges form a cycle.
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![read(2, 2), write(1, 1)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![read(1, 2), write(2, 1)],
                ),
            ],
            &[(1, 2), (2, 2)],
        );
        let err = process_op_reports(&trace, &reports).unwrap_err();
        assert_eq!(err, GraphRejection::CycleDetected);
    }

    #[test]
    fn figure4_example_c_accepted() {
        // Example c: both writes before both reads — consistent.
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (
                    ObjectName(String::from("reg:A")),
                    vec![write(1, 1), read(2, 2)],
                ),
                (
                    ObjectName(String::from("reg:B")),
                    vec![write(2, 1), read(1, 2)],
                ),
            ],
            &[(1, 2), (2, 2)],
        );
        let (graph, opmap) = process_op_reports(&trace, &reports).unwrap();
        assert_eq!(opmap.len(), 4);
        // Nodes: 2 requests × (2 ops + 2 endpoints).
        assert_eq!(graph.num_nodes(), 8);
        assert!(graph.topological_order().is_some());
    }

    #[test]
    fn rejects_unknown_request_in_log() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(ObjectName(String::from("reg:A")), vec![write(99, 1)])],
            &[(1, 0)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::LogEntryUnknownRequest { .. }
        ));
    }

    #[test]
    fn rejects_opnum_beyond_m() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(ObjectName(String::from("reg:A")), vec![write(1, 3)])],
            &[(1, 2)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::LogEntryBadOpnum { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_operation() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 1), write(1, 1)],
            )],
            &[(1, 1)],
        );
        // The same (rid, opnum) in two log slots — caught either as a
        // duplicate or as a log-order violation depending on adjacency;
        // here it is a duplicate in CheckLogs.
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::DuplicateOperation { .. }
        ));
    }

    #[test]
    fn rejects_missing_promised_operation() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(ObjectName(String::from("reg:A")), vec![write(1, 1)])],
            &[(1, 2)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::MissingOperation { .. }
        ));
    }

    #[test]
    fn rejects_same_request_out_of_order_in_log() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 2), write(1, 1)],
            )],
            &[(1, 2)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::LogOrderViolation { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_object_names() {
        let trace = Trace {
            events: vec![req(1), resp(1)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![
                (ObjectName(String::from("reg:A")), vec![]),
                (ObjectName(String::from("reg:A")), vec![]),
            ],
            &[(1, 0)],
        );
        assert!(matches!(
            process_op_reports(&trace, &reports).unwrap_err(),
            GraphRejection::DuplicateObjectName { .. }
        ));
    }

    #[test]
    fn accepts_empty_reports_for_oplesss_trace() {
        let trace = Trace {
            events: vec![req(1), resp(1), req(2), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(vec![], &[(1, 0), (2, 0)]);
        let (graph, opmap) = process_op_reports(&trace, &reports).unwrap();
        assert!(opmap.is_empty());
        assert_eq!(graph.num_nodes(), 4);
        let order = graph.topological_order().unwrap();
        // (r1, ∞) must come before (r2, 0) in any topological order.
        let pos_r1_inf = order
            .iter()
            .position(|(r, o)| *r == RequestId(1) && o.is_infinity())
            .unwrap();
        let pos_r2_0 = order
            .iter()
            .position(|(r, o)| *r == RequestId(2) && *o == OpNum(0))
            .unwrap();
        assert!(pos_r1_inf < pos_r2_0);
    }

    #[test]
    fn topological_order_respects_log_edges() {
        let trace = Trace {
            events: vec![req(1), req(2), resp(1), resp(2)],
        }
        .ensure_balanced()
        .unwrap();
        let reports = reports_with(
            vec![(
                ObjectName(String::from("reg:A")),
                vec![write(1, 1), read(2, 1)],
            )],
            &[(1, 1), (2, 1)],
        );
        let (graph, _) = process_op_reports(&trace, &reports).unwrap();
        let order = graph.topological_order().unwrap();
        let pos = |rid: u64, op: OpNum| {
            order
                .iter()
                .position(|(r, o)| *r == RequestId(rid) && *o == op)
                .unwrap()
        };
        assert!(pos(1, OpNum(1)) < pos(2, OpNum(1)));
        assert!(pos(1, OpNum(0)) < pos(1, OpNum(1)));
        assert!(pos(2, OpNum(1)) < pos(2, OpNum::INFINITY));
    }
}
