//! Cold-storage sidecar for the report bundle (§3, §4.6 reports).
//!
//! When a trace is spilled into the segmented store
//! ([`orochi_trace::store`]), the audit's other input — the untrusted
//! [`Reports`] — rides along as a checksummed blob in the same
//! directory. The blob is *not* the plain [`Wire`] encoding of
//! [`Reports`]: it front-loads a **per-object sub-log extents table**
//! (object name + encoded byte length for every operation log) so a
//! reader can locate and decode any single `OL_i` without touching the
//! others. The audit decodes everything; targeted tooling (tampering
//! experiments, log inspection) uses [`report_extents`] + [`decode_log`]
//! for selective access.
//!
//! Layout of the `reports` blob payload:
//!
//! ```text
//! varint n_logs
//! n_logs × { ObjectName (wire) , varint log_byte_len }
//! n_logs concatenated OpLog encodings (byte lengths from the table)
//! groupings + sorted op_counts + nondet (exactly as Reports::encode)
//! ```

use crate::reports::Reports;
use orochi_common::codec::{Decoder, Encoder, Wire, WireError};
use orochi_common::ids::{CtlFlowTag, RequestId};
use orochi_state::object::ObjectName;
use orochi_state::oplog::{OpLog, OpLogs};
use orochi_trace::{TraceStoreError, TraceStoreReader, TraceStoreWriter};
use std::collections::HashMap;

/// Blob name under which the report bundle is stored.
pub const REPORTS_BLOB: &str = "reports";

/// Location of one object's operation log inside an encoded blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogExtent {
    /// The shared object whose log this is.
    pub name: ObjectName,
    /// Byte offset of the encoded log within the blob payload.
    pub offset: usize,
    /// Encoded byte length of the log.
    pub len: usize,
}

/// Encodes `reports` in the extent-table layout described in the module
/// docs.
pub fn encode_reports(reports: &Reports) -> Vec<u8> {
    let log_blobs: Vec<Vec<u8>> = reports
        .op_logs
        .iter()
        .map(|(_, _, log)| log.to_wire_bytes())
        .collect();

    let mut head = Encoder::new();
    head.u64(log_blobs.len() as u64);
    for ((_, name, _), blob) in reports.op_logs.iter().zip(&log_blobs) {
        name.encode(&mut head);
        head.u64(blob.len() as u64);
    }
    let mut out = head.into_bytes();
    for blob in &log_blobs {
        out.extend_from_slice(blob);
    }

    let mut tail = Encoder::new();
    tail.u64(reports.groupings.len() as u64);
    for (tag, rids) in &reports.groupings {
        tag.encode(&mut tail);
        rids.encode(&mut tail);
    }
    let mut counts: Vec<(&RequestId, &u32)> = reports.op_counts.iter().collect();
    counts.sort();
    tail.u64(counts.len() as u64);
    for (rid, count) in counts {
        rid.encode(&mut tail);
        tail.u64(*count as u64);
    }
    reports.nondet.encode(&mut tail);
    out.extend_from_slice(&tail.into_bytes());
    out
}

/// Reads the extents table, returning one [`LogExtent`] per object log
/// in report order without decoding any log body.
pub fn report_extents(bytes: &[u8]) -> Result<Vec<LogExtent>, WireError> {
    let mut dec = Decoder::new(bytes);
    let n = dec.u64()? as usize;
    if n > dec.remaining() {
        return Err(WireError::Malformed("log count exceeds buffer"));
    }
    let mut extents = Vec::with_capacity(n);
    for _ in 0..n {
        let name = ObjectName::decode(&mut dec)?;
        let len = dec.u64()? as usize;
        extents.push(LogExtent {
            name,
            offset: 0,
            len,
        });
    }
    let mut offset = bytes.len() - dec.remaining();
    for extent in &mut extents {
        extent.offset = offset;
        offset = offset
            .checked_add(extent.len)
            .filter(|&end| end <= bytes.len())
            .ok_or(WireError::Malformed("log extent exceeds buffer"))?;
    }
    Ok(extents)
}

/// Decodes the single operation log named by `extent` — the selective
/// read path; nothing outside the extent's byte range is touched.
pub fn decode_log(bytes: &[u8], extent: &LogExtent) -> Result<OpLog, WireError> {
    let end = extent
        .offset
        .checked_add(extent.len)
        .filter(|&end| end <= bytes.len())
        .ok_or(WireError::Malformed("log extent exceeds buffer"))?;
    let mut dec = Decoder::new(&bytes[extent.offset..end]);
    let log = OpLog::decode(&mut dec)?;
    if !dec.is_done() {
        return Err(WireError::Malformed("log extent not fully consumed"));
    }
    Ok(log)
}

/// Decodes a full report bundle from the extent-table layout.
pub fn decode_reports(bytes: &[u8]) -> Result<Reports, WireError> {
    let extents = report_extents(bytes)?;
    let mut logs = Vec::with_capacity(extents.len());
    for extent in &extents {
        logs.push((extent.name.clone(), decode_log(bytes, extent)?));
    }
    // The tail begins after the last log; with no logs, right after the
    // (empty) table — i.e. after its single count varint.
    let tail_start = match extents.last() {
        Some(extent) => extent.offset + extent.len,
        None => {
            let mut dec = Decoder::new(bytes);
            dec.u64()?;
            bytes.len() - dec.remaining()
        }
    };

    let mut dec = Decoder::new(&bytes[tail_start..]);
    let n = dec.u64()? as usize;
    if n > dec.remaining() {
        return Err(WireError::Malformed("grouping count exceeds buffer"));
    }
    let mut groupings = Vec::with_capacity(n);
    for _ in 0..n {
        groupings.push((
            CtlFlowTag::decode(&mut dec)?,
            Vec::<RequestId>::decode(&mut dec)?,
        ));
    }
    let m = dec.u64()? as usize;
    if m > dec.remaining() {
        return Err(WireError::Malformed("count entries exceed buffer"));
    }
    let mut op_counts = HashMap::with_capacity(m);
    for _ in 0..m {
        let rid = RequestId::decode(&mut dec)?;
        let count = dec.u64()?;
        if count > u32::MAX as u64 {
            return Err(WireError::Malformed("op count out of range"));
        }
        if op_counts.insert(rid, count as u32).is_some() {
            return Err(WireError::Malformed("duplicate rid in op counts"));
        }
    }
    let nondet = crate::nondet::NondetLog::decode(&mut dec)?;
    if !dec.is_done() {
        return Err(WireError::Malformed("trailing bytes after reports"));
    }
    Ok(Reports {
        groupings,
        op_logs: OpLogs::from_pairs(logs),
        op_counts,
        nondet,
    })
}

/// Spills `reports` into `writer`'s directory as the [`REPORTS_BLOB`]
/// checksummed blob.
pub fn spill_reports(writer: &mut TraceStoreWriter, reports: &Reports) -> std::io::Result<()> {
    writer.write_blob(REPORTS_BLOB, &encode_reports(reports))
}

/// Loads the report bundle spilled next to `reader`'s segments.
pub fn load_reports(reader: &TraceStoreReader) -> Result<Reports, TraceStoreError> {
    let bytes = reader.read_blob(REPORTS_BLOB)?;
    decode_reports(&bytes).map_err(|e| {
        TraceStoreError::corrupt(
            reader.dir().join("reports.blob").display().to_string(),
            format!("reports blob malformed: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nondet::{NondetLog, NondetValue};
    use orochi_common::ids::OpNum;
    use orochi_state::object::OpContents;
    use orochi_state::oplog::OpLogEntry;

    fn entry(rid: u64, opnum: u32, key: &str) -> OpLogEntry {
        OpLogEntry {
            rid: RequestId(rid),
            opnum: OpNum(opnum),
            contents: OpContents::KvGet { key: key.into() },
        }
    }

    fn sample() -> Reports {
        let mut apc = OpLog::new();
        apc.push(entry(1, 1, "a"));
        apc.push(entry(2, 1, "b"));
        let mut reg = OpLog::new();
        reg.push(entry(2, 2, "r"));
        let mut nondet = NondetLog::new();
        nondet.push(RequestId(1), NondetValue::Time(7));
        Reports {
            groupings: vec![(CtlFlowTag(3), vec![RequestId(1), RequestId(2)])],
            op_logs: OpLogs::from_pairs(vec![
                (ObjectName::kv("apc"), apc),
                (ObjectName::kv("reg"), reg),
            ]),
            op_counts: [(RequestId(1), 1), (RequestId(2), 2)].into_iter().collect(),
            nondet,
        }
    }

    #[test]
    fn roundtrip_preserves_reports() {
        let reports = sample();
        let bytes = encode_reports(&reports);
        assert_eq!(decode_reports(&bytes).unwrap(), reports);
    }

    #[test]
    fn extents_allow_selective_log_decode() {
        let reports = sample();
        let bytes = encode_reports(&reports);
        let extents = report_extents(&bytes).unwrap();
        assert_eq!(extents.len(), 2);
        assert_eq!(extents[0].name, ObjectName::kv("apc"));
        assert_eq!(extents[1].name, ObjectName::kv("reg"));
        for (i, extent) in extents.iter().enumerate() {
            let log = decode_log(&bytes, extent).unwrap();
            assert_eq!(&log, reports.op_logs.log(i).unwrap());
        }
    }

    #[test]
    fn empty_reports_roundtrip() {
        let reports = Reports::new();
        let bytes = encode_reports(&reports);
        assert_eq!(report_extents(&bytes).unwrap(), vec![]);
        assert_eq!(decode_reports(&bytes).unwrap(), reports);
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let bytes = encode_reports(&sample());
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_reports(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_extent_is_rejected() {
        let mut enc = Encoder::new();
        enc.u64(1);
        ObjectName::kv("apc").encode(&mut enc);
        enc.u64(u64::MAX); // extent length far beyond the buffer
        let bytes = enc.into_bytes();
        assert_eq!(
            report_extents(&bytes).unwrap_err(),
            WireError::Malformed("log extent exceeds buffer")
        );
    }
}
