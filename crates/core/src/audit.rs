//! `SSCO_AUDIT2` (Fig. 12): the audit driver and the simulate-and-check
//! context.
//!
//! The audit proceeds in phases:
//!
//! 1. **Balance** — validate the trace (§3).
//! 2. **ProcessOpReports** — consistent-ordering verification and OpMap
//!    construction ([`crate::graph`]), plus the §4.6 nondeterminism
//!    sanity checks.
//! 3. **DB redo** — build the versioned stores: `kv.Build(OL)` happens
//!    lazily per object; every log containing database operations gets a
//!    full versioned redo pass (§4.5).
//! 4. **Re-execution** — each control-flow group is handed to the
//!    [`GroupExecutor`]; every state operation flows through
//!    [`AuditContext`], which implements `CheckOp` (the produced operands
//!    must match the log entry the OpMap names) and `SimOp` (reads are
//!    fed from the logs/versioned stores). Read-query deduplication
//!    (§4.5) lives here too.
//! 5. **Output comparison** — the produced outputs must be exactly the
//!    responses in the trace.
//!
//! Any failed check rejects with a precise [`Rejection`] reason.
//!
//! # Parallel audit
//!
//! After the prologue (phases 1–3), control-flow groups touch disjoint
//! per-request state and only *read* the shared prologue products (the
//! OpMap, the operation logs, and the versioned stores). [`audit_parallel`]
//! exploits that: the prologue's store builds are sharded by object across
//! a bounded pool of scoped threads, and the groups are then re-executed
//! by the same pool, one [`AuditContext`] per worker over one shared
//! [`AuditShared`]. Verdicts and failure diagnostics are byte-identical to
//! the sequential path: group lists are fixed by a deterministic pre-pass,
//! and when several groups fail concurrently the rejection reported is the
//! one the sequential audit would have hit first (lowest group index).
//! Only scheduling-dependent *performance counters* (the dedup-cache
//! hit/miss split) may vary with the thread count.

use crate::exec::{DbQueryResult, DbTxnHandle, GroupExecutor, SimResult};
use crate::graph::{process_op_reports, process_op_reports_with, GraphRejection, OpMap};
use crate::nondet::NondetValue;
use crate::reports::Reports;
use orochi_common::ids::{CtlFlowTag, OpNum, RequestId, SeqNum};
use orochi_common::metrics::PhaseTimer;
use orochi_sqldb::{Database, ExecOutcome, RedoError, RedoStats, VersionedDb, MAXQ};
use orochi_state::object::{ObjectName, OpContents, OpType};
use orochi_state::versioned_kv::VersionedKv;
use orochi_trace::record::{BalanceError, BalancedTrace, RidInterner, Trace};
use orochi_trace::{HttpRequest, HttpResponse, TraceReadError, TraceSource, TraceStoreError};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why the audit rejected. Each variant corresponds to a failed check in
/// Figs. 5/12 or one of OROCHI's additional report validations.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The trace is not balanced (§3).
    Unbalanced(BalanceError),
    /// The persisted trace could not be read back (I/O failure or a
    /// corrupt segment/blob). Only the cold-storage audit path can hit
    /// this; an in-memory trace never does.
    TraceStore(TraceStoreError),
    /// Report processing failed (Fig. 5), including cycle detection.
    Graph(GraphRejection),
    /// The nondeterminism report violates the §4.6 sanity conditions.
    NondetInvalid(RequestId),
    /// The database redo pass failed (§4.5).
    Redo(RedoError),
    /// Re-execution issued an operation the OpMap does not contain
    /// (CheckOp line 11).
    OpNotInOpMap {
        /// The issuing request.
        rid: RequestId,
        /// The operation number.
        opnum: OpNum,
    },
    /// The operation targeted a different object than the log claims
    /// (CheckOp line 14, `i != î`).
    ObjectMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The operation number.
        opnum: OpNum,
    },
    /// The produced operands differ from the logged opcontents
    /// (CheckOp line 14).
    OpContentsMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The operation number.
        opnum: OpNum,
    },
    /// A database query's SQL text differs from the logged statement
    /// (§A.7 per-query check).
    DbQueryMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
        /// 1-based query position.
        query: u64,
    },
    /// Re-execution issued more queries in a transaction than were
    /// logged.
    DbTooManyQueries {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// Re-execution finished a transaction with fewer queries than
    /// logged.
    DbQueryCountMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// The program's commit/rollback disagrees with the logged
    /// `succeeded` flag.
    DbCommitMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// An aborted transaction's read has no captured result — the log is
    /// internally inconsistent.
    DbAbortedReadMissing {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// A state operation was issued while a database transaction was
    /// open (the SSCO model forbids nesting, §4.4).
    StateOpDuringTxn {
        /// The issuing request.
        rid: RequestId,
    },
    /// Re-execution consumed more nondeterministic values than recorded.
    NondetExhausted {
        /// The issuing request.
        rid: RequestId,
    },
    /// A recorded nondeterministic value has the wrong kind for the call
    /// site.
    NondetKindMismatch {
        /// The issuing request.
        rid: RequestId,
    },
    /// Recorded nondeterministic values were left unconsumed.
    NondetLeftover {
        /// The issuing request.
        rid: RequestId,
    },
    /// A request finished with an operation count different from
    /// `M(rid)` (Fig. 12 line 51).
    OpCountMismatch {
        /// The finishing request.
        rid: RequestId,
    },
    /// A control-flow group names a request absent from the trace.
    GroupUnknownRequest {
        /// The unknown request.
        rid: RequestId,
    },
    /// Requests in one control-flow group diverged during grouped
    /// re-execution (Fig. 12 line 39).
    Divergence {
        /// The group's tag.
        tag: CtlFlowTag,
    },
    /// The re-executed program failed outright (runtime error where the
    /// trace shows a normal response).
    ExecFailure(String),
    /// The executor returned outputs violating the driver protocol
    /// (unknown or duplicate request).
    ExecutorProtocol(String),
    /// A produced output differs from the response in the trace
    /// (Fig. 12 line 55).
    OutputMismatch {
        /// The mismatching request.
        rid: RequestId,
    },
    /// No output was produced for a request in the trace.
    MissingOutput {
        /// The uncovered request.
        rid: RequestId,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Unbalanced(e) => write!(f, "trace not balanced: {e}"),
            Rejection::TraceStore(e) => write!(f, "trace store: {e}"),
            Rejection::Graph(e) => write!(f, "report processing: {e}"),
            Rejection::NondetInvalid(rid) => {
                write!(f, "nondeterminism report invalid for {rid}")
            }
            Rejection::Redo(e) => write!(f, "versioned redo: {e}"),
            Rejection::OpNotInOpMap { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) not in OpMap")
            }
            Rejection::ObjectMismatch { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) targets a different object")
            }
            Rejection::OpContentsMismatch { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) operands differ from log")
            }
            Rejection::DbQueryMismatch { rid, opnum, query } => {
                write!(f, "({rid},{opnum}) query {query} differs from log")
            }
            Rejection::DbTooManyQueries { rid, opnum } => {
                write!(f, "({rid},{opnum}) issued more queries than logged")
            }
            Rejection::DbQueryCountMismatch { rid, opnum } => {
                write!(f, "({rid},{opnum}) finished with fewer queries than logged")
            }
            Rejection::DbCommitMismatch { rid, opnum } => {
                write!(f, "({rid},{opnum}) commit/rollback disagrees with log")
            }
            Rejection::DbAbortedReadMissing { rid, opnum } => {
                write!(f, "({rid},{opnum}) aborted-transaction read not captured")
            }
            Rejection::StateOpDuringTxn { rid } => {
                write!(f, "{rid} issued a state op inside a transaction")
            }
            Rejection::NondetExhausted { rid } => {
                write!(f, "{rid} consumed more nondet values than recorded")
            }
            Rejection::NondetKindMismatch { rid } => {
                write!(f, "{rid} nondet value kind mismatch")
            }
            Rejection::NondetLeftover { rid } => {
                write!(f, "{rid} left recorded nondet values unconsumed")
            }
            Rejection::OpCountMismatch { rid } => {
                write!(f, "{rid} finished with an op count different from M")
            }
            Rejection::GroupUnknownRequest { rid } => {
                write!(f, "control-flow group names unknown request {rid}")
            }
            Rejection::Divergence { tag } => {
                write!(f, "control-flow group {tag} diverged")
            }
            Rejection::ExecFailure(m) => write!(f, "re-execution failed: {m}"),
            Rejection::ExecutorProtocol(m) => write!(f, "executor protocol: {m}"),
            Rejection::OutputMismatch { rid } => {
                write!(f, "produced output for {rid} differs from the trace")
            }
            Rejection::MissingOutput { rid } => {
                write!(f, "no output produced for {rid}")
            }
        }
    }
}

impl std::error::Error for Rejection {}

impl From<GraphRejection> for Rejection {
    fn from(e: GraphRejection) -> Self {
        Rejection::Graph(e)
    }
}

impl From<RedoError> for Rejection {
    fn from(e: RedoError) -> Self {
        Rejection::Redo(e)
    }
}

/// Initial state and switches for an audit.
#[derive(Default)]
pub struct AuditConfig {
    /// Initial database contents per object name (the verifier's copy of
    /// the server's persistent state, §4.1).
    pub initial_dbs: HashMap<String, Database>,
    /// Initial register values per object name.
    pub initial_registers: HashMap<String, Vec<u8>>,
    /// Initial key-value contents per object name.
    pub initial_kv: HashMap<String, HashMap<String, Vec<u8>>>,
    /// Enables read-query deduplication (§4.5); on by default, off for
    /// the ablation bench.
    pub query_dedup: bool,
}

impl AuditConfig {
    /// Default configuration: empty initial state, deduplication on.
    pub fn new() -> Self {
        Self {
            query_dedup: true,
            ..Self::default()
        }
    }
}

/// Counters and phase timings collected during an audit.
#[derive(Debug, Default, Clone)]
pub struct AuditStats {
    /// Control-flow groups re-executed.
    pub groups_executed: usize,
    /// Requests re-executed (after duplicate filtering).
    pub requests_reexecuted: usize,
    /// Register operations checked/simulated.
    pub register_ops: u64,
    /// Key-value operations checked/simulated.
    pub kv_ops: u64,
    /// Database transactions re-executed.
    pub db_txns: u64,
    /// Database queries checked.
    pub db_queries: u64,
    /// SELECTs answered from the dedup cache (§4.5).
    pub db_queries_deduped: u64,
    /// SELECTs actually issued to the versioned store.
    pub db_queries_issued: u64,
    /// VM instruction dispatches the audit *would* have performed had
    /// every request re-executed scalar: `Σ n_c × ℓ_c` over groups plus
    /// the scalar path's own instruction counts (Fig. 10's "total").
    pub vm_dispatch_total: u64,
    /// VM instruction dispatches actually performed: univalent
    /// instructions once per group, multivalent ones per lane
    /// (Fig. 10's deduplicated re-execution work).
    pub vm_dispatch_executed: u64,
    /// Aggregate redo statistics across database objects.
    pub redo: RedoStats,
    /// Bytes held by the audit-time versioned database(s) (Fig. 8
    /// "temp" DB overhead numerator).
    pub db_versioned_bytes: usize,
    /// Bytes of the latest (migrated) database snapshot (the
    /// denominator; also what the verifier keeps after the audit).
    pub db_final_bytes: usize,
    /// Nodes in the Fig. 5 audit graph (`2X + Y`).
    pub graph_nodes: usize,
    /// Edges in the Fig. 5 audit graph (time-precedence + program +
    /// log-order).
    pub graph_edges: usize,
    /// Wall time of the streamed two-pass CSR graph build — the slice
    /// of the "ProcOpRep" phase the graph layer accounts for.
    pub graph_build: Duration,
    /// Busy time spent answering database queries (the Fig. 9 "DB
    /// query" row). Accumulated per context and absorbed like any
    /// other counter, so the parallel merge needs no side channel.
    pub db_query_wall: Duration,
    /// Wall time per phase ("ProcOpRep", "DB redo", "ReExec", "DB query",
    /// "Output"), in the style of Fig. 9.
    pub phases: PhaseTimer,
}

impl AuditStats {
    /// Folds one worker's per-context counters into an aggregate. Phase
    /// timings, redo statistics, and byte counts are not per-worker; the
    /// audit driver fills them in once at the end.
    pub(crate) fn absorb(&mut self, other: &AuditStats) {
        self.groups_executed += other.groups_executed;
        self.requests_reexecuted += other.requests_reexecuted;
        self.register_ops += other.register_ops;
        self.kv_ops += other.kv_ops;
        self.db_txns += other.db_txns;
        self.db_queries += other.db_queries;
        self.db_queries_deduped += other.db_queries_deduped;
        self.db_queries_issued += other.db_queries_issued;
        self.vm_dispatch_total += other.vm_dispatch_total;
        self.vm_dispatch_executed += other.vm_dispatch_executed;
        self.db_query_wall += other.db_query_wall;
    }
}

/// A successful audit.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Statistics for the evaluation harness.
    pub stats: AuditStats,
}

/// Key of the read-query dedup cache: (log index, sql text, epochs of
/// the tables the query touches).
type DedupKey = (usize, String, Vec<(String, u64)>);

/// The prologue's products, shared read-only by every re-execution
/// worker: the OpMap, the versioned stores, and the per-log register
/// prev-write indexes. Built once (optionally sharded by object across
/// the worker pool) before any group re-executes; all access afterwards
/// is `&self`, which makes one instance safely shareable across the
/// audit's scoped threads.
pub struct AuditShared<'a> {
    reports: &'a Reports,
    config: &'a AuditConfig,
    opmap: OpMap,
    /// The dense requestID interning built by `process_op_reports` and
    /// reused — via the OpMap — by every worker: per-request cursors
    /// are flat arrays indexed by it.
    interner: Arc<RidInterner>,
    /// Per-log register prev-write indexes (slot = log index): for
    /// entry index `j`, the index of the latest `RegisterWrite`
    /// strictly before `j`. Built for every log containing a
    /// `RegisterRead`.
    reg_prev_write: Vec<Option<Vec<Option<usize>>>>,
    /// Versioned key-value views (slot = log index), built for every
    /// log containing key-value operations (`kv.Build(OL)`, Fig. 12
    /// line 5).
    versioned_kv: Vec<Option<VersionedKv>>,
    /// Versioned databases (slot = log index; the §4.5 redo pass).
    versioned_dbs: Vec<Option<VersionedDb>>,
    /// Graph-layer statistics copied from the `process_op_reports`
    /// product for the final outcome.
    graph_nodes: usize,
    graph_edges: usize,
    graph_build: Duration,
}

// The parallel audit hands `Arc<AuditShared>` to scoped worker threads;
// keep the shareability obligation explicit.
const _: fn() = || {
    fn shareable<T: Send + Sync>() {}
    shareable::<AuditShared<'static>>();
};

/// Which versioned stores one log needs; the unit of prologue sharding.
struct StoreBuildTask {
    log_index: usize,
    db: bool,
    kv: bool,
    reg: bool,
}

/// The stores built for one log.
struct StoreBuildProduct {
    log_index: usize,
    db: Option<Result<VersionedDb, RedoError>>,
    kv: Option<VersionedKv>,
    reg: Option<Vec<Option<usize>>>,
}

impl<'a> AuditShared<'a> {
    /// Builds every versioned store and index the re-execution phase
    /// reads. With `threads >= 2` the per-log builds are sharded across
    /// a scoped-thread pool — logs are independent by construction, and
    /// redo failures are reported in log order regardless of which
    /// worker hits them, so diagnostics match the sequential build
    /// exactly.
    pub(crate) fn build(
        reports: &'a Reports,
        opmap: OpMap,
        config: &'a AuditConfig,
        threads: usize,
    ) -> Result<Self, Rejection> {
        let tasks: Vec<StoreBuildTask> = reports
            .op_logs
            .iter()
            .filter_map(|(i, _name, log)| {
                let task = StoreBuildTask {
                    log_index: i,
                    db: log.contains_op_type(OpType::DbOp),
                    kv: log.contains_op_type(OpType::KvGet) || log.contains_op_type(OpType::KvSet),
                    reg: log.contains_op_type(OpType::RegisterRead),
                };
                (task.db || task.kv || task.reg).then_some(task)
            })
            .collect();
        let mut products: Vec<StoreBuildProduct> = if threads >= 2 && tasks.len() >= 2 {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<StoreBuildProduct>> =
                Mutex::new(Vec::with_capacity(tasks.len()));
            crossbeam::thread::scope(|s| {
                for _ in 0..threads.min(tasks.len()) {
                    s.spawn(|_| {
                        let mut local = Vec::new();
                        loop {
                            let k = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(k) else { break };
                            local.push(build_stores_for(reports, config, task));
                        }
                        collected.lock().expect("collector poisoned").extend(local);
                    });
                }
            })
            .expect("prologue pool");
            collected.into_inner().expect("collector poisoned")
        } else {
            tasks
                .iter()
                .map(|task| build_stores_for(reports, config, task))
                .collect()
        };
        // Report the first redo failure in log order — identical to a
        // sequential pass over the logs.
        products.sort_by_key(|p| p.log_index);
        let num_logs = reports.op_logs.len();
        let interner = Arc::clone(opmap.interner());
        let mut shared = AuditShared {
            reports,
            config,
            opmap,
            interner,
            reg_prev_write: (0..num_logs).map(|_| None).collect(),
            versioned_kv: (0..num_logs).map(|_| None).collect(),
            versioned_dbs: (0..num_logs).map(|_| None).collect(),
            graph_nodes: 0,
            graph_edges: 0,
            graph_build: Duration::ZERO,
        };
        for product in products {
            if let Some(db) = product.db {
                shared.versioned_dbs[product.log_index] = Some(db?);
            }
            if let Some(kv) = product.kv {
                shared.versioned_kv[product.log_index] = Some(kv);
            }
            if let Some(reg) = product.reg {
                shared.reg_prev_write[product.log_index] = Some(reg);
            }
        }
        Ok(shared)
    }

    /// Copies the graph-layer statistics out of the Fig. 5 product so
    /// the final outcome can surface them.
    pub(crate) fn record_graph(&mut self, graph: &crate::graph::AuditGraph) {
        self.graph_nodes = graph.num_nodes();
        self.graph_edges = graph.num_edges();
        self.graph_build = graph.build_wall();
    }

    /// The versioned database for log `i`, if the prologue built one.
    fn versioned_db(&self, i: usize) -> Option<&VersionedDb> {
        self.versioned_dbs.get(i).and_then(|slot| slot.as_ref())
    }

    // ---- Streaming-audit hooks ---------------------------------------
    // The streaming driver (crate::streaming) owns one AuditShared for
    // the whole run and re-points its interner between epochs: during
    // ingest the balance validator must hold the canonical interner
    // exclusively, so the shared state parks a placeholder.

    /// Re-points both the shared interner and the OpMap's at `interner`.
    pub(crate) fn set_interner(&mut self, interner: Arc<RidInterner>) {
        self.opmap.set_interner(Arc::clone(&interner));
        self.interner = interner;
    }

    /// The OpMap, mutably — the streaming driver appends request rows
    /// and fills slots as requests arrive.
    pub(crate) fn opmap_mut(&mut self) -> &mut OpMap {
        &mut self.opmap
    }

    /// Swaps in a freshly built OpMap (the streaming finish replaces
    /// its incrementally grown copy with the one the final full
    /// `ProcessOpReports` pass produced — identical by construction
    /// once that pass accepts, but the swap makes the confirmation
    /// re-run's inputs exactly the batch prologue's).
    pub(crate) fn replace_opmap(&mut self, opmap: OpMap) {
        self.interner = Arc::clone(opmap.interner());
        self.opmap = opmap;
    }

    /// Rough resident size of the OpMap tables in bytes, for the
    /// streaming audit's carry accounting.
    pub(crate) fn opmap_bytes(&self) -> usize {
        self.opmap.estimated_bytes()
    }
}

/// Builds the stores one log needs: the §4.5 versioned-DB redo pass,
/// the versioned KV view, and the register prev-write index.
fn build_stores_for(
    reports: &Reports,
    config: &AuditConfig,
    task: &StoreBuildTask,
) -> StoreBuildProduct {
    let log = reports
        .op_logs
        .log(task.log_index)
        .expect("task indexes a valid log");
    let name = reports
        .op_logs
        .name(task.log_index)
        .expect("task indexes a valid log");
    let db = task.db.then(|| {
        let empty = Database::new();
        let initial = config.initial_dbs.get(name.as_str()).unwrap_or(&empty);
        let mut vdb = VersionedDb::from_snapshot(initial);
        for (seq, entry) in log.iter() {
            if let OpContents::DbOp {
                queries,
                succeeded,
                write_results,
            } = &entry.contents
            {
                let logged: Vec<Option<orochi_sqldb::engine::WriteOutcome>> = write_results
                    .iter()
                    .map(|w| {
                        w.map(|w| orochi_sqldb::engine::WriteOutcome {
                            affected: w.affected,
                            last_insert_id: w.last_insert_id,
                        })
                    })
                    .collect();
                vdb.redo_transaction(seq.0, queries, *succeeded, &logged)?;
            }
        }
        Ok(vdb)
    });
    let kv = task.kv.then(|| VersionedKv::build(log));
    let reg = task.reg.then(|| {
        let mut out = Vec::with_capacity(log.len());
        let mut last: Option<usize> = None;
        for (j, entry) in log.entries().iter().enumerate() {
            out.push(last);
            if entry.op_type() == OpType::RegisterWrite {
                last = Some(j);
            }
        }
        out
    });
    StoreBuildProduct {
        log_index: task.log_index,
        db,
        kv,
        reg,
    }
}

/// The simulate-and-check context handed to the [`GroupExecutor`].
///
/// Tracks per-request operation numbers, performs `CheckOp` against the
/// OpMap and logs, and feeds reads from the versioned stores. All
/// cross-request audit state lives in the immutable [`AuditShared`]; a
/// context only owns per-request cursors and performance caches, which
/// is what lets the parallel audit run one context per worker thread
/// over a single shared prologue.
pub struct AuditContext<'a> {
    shared: Arc<AuditShared<'a>>,
    /// Next unconsumed opnum per dense request index (starts at 1).
    opnum_next: Vec<u32>,
    /// Open-database-transaction flag per dense request index.
    in_txn: Vec<bool>,
    /// Read-query dedup cache: (log, sql, table epochs) -> result.
    dedup_cache: HashMap<DedupKey, ExecOutcome>,
    /// Memoized sql -> touched tables (queries repeat heavily; parsing
    /// each occurrence would eat the dedup gain).
    touched_tables: HashMap<String, Vec<String>>,
    /// Nondeterminism cursors per dense request index.
    nondet_cursor: Vec<usize>,
    /// Accumulated statistics (including the "DB query" busy time, so
    /// nothing timing-related is threaded beside the stats).
    stats: AuditStats,
}

impl<'a> AuditContext<'a> {
    /// Runs the audit prologue standalone: balance check, report
    /// processing (Fig. 5), nondeterminism validation, and the versioned
    /// store builds — yielding a context ready for re-execution.
    /// `audit()` uses the same machinery internally; benchmarks and
    /// executor tests use this to drive a [`GroupExecutor`] directly.
    pub fn prepare(
        source: &dyn TraceSource,
        reports: &'a Reports,
        config: &'a AuditConfig,
    ) -> Result<AuditContext<'a>, Rejection> {
        let balanced = match source.as_balanced() {
            Some(balanced) => Cow::Borrowed(balanced),
            None => BalancedTrace::from_source(source)
                .map(Cow::Owned)
                .map_err(Rejection::from_read)?,
        };
        let (graph, opmap) = process_op_reports(&balanced, reports)?;
        reports
            .nondet
            .validate()
            .map_err(Rejection::NondetInvalid)?;
        let mut shared = AuditShared::build(reports, opmap, config, 1)?;
        shared.record_graph(&graph);
        Ok(AuditContext::from_shared(Arc::new(shared)))
    }

    pub(crate) fn from_shared(shared: Arc<AuditShared<'a>>) -> Self {
        AuditContext::from_shared_with_carry(shared, AuditCarry::default())
    }

    /// [`AuditContext::from_shared`] resuming from a prior epoch's
    /// carry. The per-request cursor vectors are rebuilt fresh — each
    /// request re-executes exactly once, in the epoch its response
    /// arrives, so its cursors are written and checked within that one
    /// context's lifetime — while the performance caches and counters
    /// persist across epochs.
    pub(crate) fn from_shared_with_carry(shared: Arc<AuditShared<'a>>, carry: AuditCarry) -> Self {
        let x = shared.interner.num_requests();
        AuditContext {
            shared,
            opnum_next: vec![1; x],
            in_txn: vec![false; x],
            dedup_cache: carry.dedup_cache,
            touched_tables: carry.touched_tables,
            nondet_cursor: vec![0; x],
            stats: carry.stats,
        }
    }

    /// Tears the context down to what the streaming audit carries
    /// across an epoch boundary: the dedup cache, the parsed-tables
    /// memo, and the accumulated counters. Everything else — the
    /// per-request cursor vectors and the `Arc` on the shared prologue —
    /// is dropped, which is what lets the driver reclaim exclusive
    /// ownership of the shared state between epochs.
    pub(crate) fn into_carry(self) -> AuditCarry {
        AuditCarry {
            dedup_cache: self.dedup_cache,
            touched_tables: self.touched_tables,
            stats: self.stats,
        }
    }

    /// Resolves a requestID to its dense index — the one hash lookup a
    /// state operation performs; every cursor and OpMap access after it
    /// is flat indexing.
    fn dense(&self, rid: RequestId) -> Option<usize> {
        self.shared.interner.index_of(rid).map(|i| i as usize)
    }

    /// `CheckOp` (Fig. 12 lines 10–15) for non-database operations: the
    /// operation's target object and full operands must match the log
    /// entry the OpMap names.
    fn check_op(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        expect: &OpContents,
    ) -> Result<(usize, usize, SeqNum), Rejection> {
        // A rid outside the trace has no OpMap entries at all; report
        // it the way an empty OpMap row would (opnum cursor at 1).
        let Some(idx) = self.dense(rid) else {
            return Err(Rejection::OpNotInOpMap {
                rid,
                opnum: OpNum(1),
            });
        };
        if self.in_txn[idx] {
            return Err(Rejection::StateOpDuringTxn { rid });
        }
        let opnum = OpNum(self.opnum_next[idx]);
        let (i, s) = self
            .shared
            .opmap
            .get_dense(idx as u32, opnum)
            .ok_or(Rejection::OpNotInOpMap { rid, opnum })?;
        let name = self
            .shared
            .reports
            .op_logs
            .name(i)
            .expect("OpMap indexes valid logs");
        if name != object {
            return Err(Rejection::ObjectMismatch { rid, opnum });
        }
        let entry = self
            .shared
            .reports
            .op_logs
            .log(i)
            .and_then(|l| l.get(s))
            .expect("OpMap points into logs");
        if entry.contents != *expect {
            return Err(Rejection::OpContentsMismatch { rid, opnum });
        }
        Ok((idx, i, s))
    }

    /// Register read: checked, then fed from the latest preceding write
    /// in the log (Fig. 12 lines 19–23), falling back to the initial
    /// state the verifier carries (§4.1).
    pub fn register_read(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
    ) -> Result<SimResult, Rejection> {
        let (idx, i, s) = self.check_op(rid, object, &OpContents::RegisterRead)?;
        let prev = self.shared.reg_prev_write[i]
            .as_ref()
            .expect("prologue builds prev-write indexes for register logs");
        let value = match prev[(s.0 - 1) as usize] {
            Some(widx) => {
                let log = self.shared.reports.op_logs.log(i).expect("checked index");
                match &log.entries()[widx].contents {
                    OpContents::RegisterWrite { value } => Some(value.clone()),
                    _ => unreachable!("prev-write index only records writes"),
                }
            }
            None => self
                .shared
                .config
                .initial_registers
                .get(object.as_str())
                .cloned(),
        };
        self.opnum_next[idx] += 1;
        self.stats.register_ops += 1;
        Ok(SimResult::Register(value))
    }

    /// Register write: checked only (the check validates the logged
    /// value, which earlier reads may already have consumed —
    /// "opportunistic" checking, §3.3).
    pub fn register_write(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        value: Vec<u8>,
    ) -> Result<SimResult, Rejection> {
        let (idx, ..) = self.check_op(rid, object, &OpContents::RegisterWrite { value })?;
        self.opnum_next[idx] += 1;
        self.stats.register_ops += 1;
        Ok(SimResult::None)
    }

    /// Key-value get: checked, then fed from the versioned view
    /// (`kv.Build` + `kv.get(k, s)`, Fig. 12 line 25).
    pub fn kv_get(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        key: &str,
    ) -> Result<SimResult, Rejection> {
        let (idx, i, s) = self.check_op(
            rid,
            object,
            &OpContents::KvGet {
                key: key.to_string(),
            },
        )?;
        let kv = self.shared.versioned_kv[i]
            .as_ref()
            .expect("prologue builds versioned views for kv logs");
        let value = if kv.has_write_before(key, s) {
            kv.get(key, s)
        } else {
            self.shared
                .config
                .initial_kv
                .get(object.as_str())
                .and_then(|m| m.get(key).cloned())
        };
        self.opnum_next[idx] += 1;
        self.stats.kv_ops += 1;
        Ok(SimResult::Kv(value))
    }

    /// Key-value set: checked only.
    pub fn kv_set(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        key: &str,
        value: Option<Vec<u8>>,
    ) -> Result<SimResult, Rejection> {
        let (idx, ..) = self.check_op(
            rid,
            object,
            &OpContents::KvSet {
                key: key.to_string(),
                value,
            },
        )?;
        self.opnum_next[idx] += 1;
        self.stats.kv_ops += 1;
        Ok(SimResult::None)
    }

    /// Opens a database transaction: resolves the OpMap entry that this
    /// operation will consume and validates object and optype. Queries
    /// are then checked one at a time (§A.7).
    pub fn db_begin(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
    ) -> Result<DbTxnHandle, Rejection> {
        let Some(idx) = self.dense(rid) else {
            return Err(Rejection::OpNotInOpMap {
                rid,
                opnum: OpNum(1),
            });
        };
        if self.in_txn[idx] {
            return Err(Rejection::StateOpDuringTxn { rid });
        }
        let opnum = OpNum(self.opnum_next[idx]);
        let (i, s) = self
            .shared
            .opmap
            .get_dense(idx as u32, opnum)
            .ok_or(Rejection::OpNotInOpMap { rid, opnum })?;
        let name = self
            .shared
            .reports
            .op_logs
            .name(i)
            .expect("OpMap indexes valid logs");
        if name != object {
            return Err(Rejection::ObjectMismatch { rid, opnum });
        }
        let entry = self
            .shared
            .reports
            .op_logs
            .log(i)
            .and_then(|l| l.get(s))
            .expect("OpMap points into logs");
        let (total, succeeded) = match &entry.contents {
            OpContents::DbOp {
                queries, succeeded, ..
            } => (queries.len() as u64, *succeeded),
            _ => return Err(Rejection::OpContentsMismatch { rid, opnum }),
        };
        self.in_txn[idx] = true;
        self.stats.db_txns += 1;
        Ok(DbTxnHandle {
            rid,
            opnum,
            obj_index: i,
            seq: s,
            queries_done: 0,
            total_queries: total,
            logged_succeeded: succeeded,
            failed: false,
        })
    }

    /// Checks one query of an open transaction against the log and
    /// simulates its result (reads from the versioned store with
    /// deduplication; writes from the redo-verified logged outcome).
    pub fn db_query(
        &mut self,
        handle: &mut DbTxnHandle,
        sql: &str,
    ) -> Result<DbQueryResult, Rejection> {
        let rid = handle.rid;
        let opnum = handle.opnum;
        if handle.failed {
            // Online, queries past the failure point fail without being
            // logged; mirror that exactly.
            return Ok(DbQueryResult::Failed);
        }
        let q = handle.queries_done + 1;
        if q > handle.total_queries {
            return Err(Rejection::DbTooManyQueries { rid, opnum });
        }
        let entry = self
            .shared
            .reports
            .op_logs
            .log(handle.obj_index)
            .and_then(|l| l.get(handle.seq))
            .expect("handle indexes a validated entry");
        let (queries, write_results) = match &entry.contents {
            OpContents::DbOp {
                queries,
                write_results,
                ..
            } => (queries, write_results),
            _ => unreachable!("db_begin validated the optype"),
        };
        if queries[(q - 1) as usize] != sql {
            return Err(Rejection::DbQueryMismatch {
                rid,
                opnum,
                query: q,
            });
        }
        if write_results.len() != queries.len() {
            // Malformed entry; redo rejects this too, but a hostile log
            // for an object with no DbOp entries can reach here.
            return Err(Rejection::OpContentsMismatch { rid, opnum });
        }
        let logged_write = write_results[(q - 1) as usize];
        handle.queries_done = q;
        self.stats.db_queries += 1;

        let vdb = self
            .shared
            .versioned_db(handle.obj_index)
            .ok_or(Rejection::ObjectMismatch { rid, opnum })?;
        let seq = handle.seq.0;
        if handle.logged_succeeded {
            match logged_write {
                Some(w) => Ok(DbQueryResult::Ok(ExecOutcome::Write(
                    orochi_sqldb::engine::WriteOutcome {
                        affected: w.affected,
                        last_insert_id: w.last_insert_id,
                    },
                ))),
                None => {
                    let ts = seq * MAXQ + q;
                    let t0 = Instant::now();
                    let result = self.dedup_query(handle.obj_index, sql, ts, rid, opnum)?;
                    self.stats.db_query_wall += t0.elapsed();
                    Ok(DbQueryResult::Ok(result))
                }
            }
        } else {
            match logged_write {
                Some(w) => Ok(DbQueryResult::Ok(ExecOutcome::Write(
                    orochi_sqldb::engine::WriteOutcome {
                        affected: w.affected,
                        last_insert_id: w.last_insert_id,
                    },
                ))),
                None => {
                    if let Some(rows) = vdb.aborted_read(seq, q) {
                        Ok(DbQueryResult::Ok(rows.clone()))
                    } else if q == handle.total_queries && vdb.aborted_failed_at_last(seq) {
                        handle.failed = true;
                        Ok(DbQueryResult::Failed)
                    } else {
                        Err(Rejection::DbAbortedReadMissing { rid, opnum })
                    }
                }
            }
        }
    }

    /// Answers a committed SELECT at `ts`, deduplicating by (sql, table
    /// modification epochs) when enabled (§4.5).
    fn dedup_query(
        &mut self,
        obj_index: usize,
        sql: &str,
        ts: u64,
        rid: RequestId,
        opnum: OpNum,
    ) -> Result<ExecOutcome, Rejection> {
        let vdb = self
            .shared
            .versioned_db(obj_index)
            .ok_or(Rejection::ObjectMismatch { rid, opnum })?;
        if !self.shared.config.query_dedup {
            self.stats.db_queries_issued += 1;
            return vdb
                .query_at(sql, ts)
                .map_err(|e| Rejection::ExecFailure(format!("query_at: {e}")));
        }
        let tables = self
            .touched_tables
            .entry(sql.to_string())
            .or_insert_with(|| VersionedDb::touched_tables(sql))
            .clone();
        let epochs: Vec<(String, u64)> = tables
            .into_iter()
            .map(|t| {
                let e = vdb.mod_epoch(&t, ts);
                (t, e)
            })
            .collect();
        let key = (obj_index, sql.to_string(), epochs);
        if let Some(cached) = self.dedup_cache.get(&key) {
            self.stats.db_queries_deduped += 1;
            return Ok(cached.clone());
        }
        self.stats.db_queries_issued += 1;
        let result = vdb
            .query_at(sql, ts)
            .map_err(|e| Rejection::ExecFailure(format!("query_at: {e}")))?;
        self.dedup_cache.insert(key, result.clone());
        Ok(result)
    }

    /// Finishes a transaction. `committed` reflects what the re-executed
    /// program did (`db_commit` vs `db_rollback`); the result is the
    /// value `db_commit` returns to the program.
    pub fn db_finish(&mut self, handle: DbTxnHandle, committed: bool) -> Result<bool, Rejection> {
        let rid = handle.rid;
        let opnum = handle.opnum;
        if handle.queries_done != handle.total_queries {
            return Err(Rejection::DbQueryCountMismatch { rid, opnum });
        }
        let failed = self
            .shared
            .versioned_db(handle.obj_index)
            .ok_or(Rejection::ObjectMismatch { rid, opnum })?
            .aborted_failed_at_last(handle.seq.0);
        let result = if committed {
            if handle.logged_succeeded {
                true
            } else if failed {
                // The program committed, but a statement had failed; the
                // online commit reported failure.
                false
            } else {
                // Log claims a voluntary rollback, but the program
                // committed: inconsistent.
                return Err(Rejection::DbCommitMismatch { rid, opnum });
            }
        } else {
            if handle.logged_succeeded {
                return Err(Rejection::DbCommitMismatch { rid, opnum });
            }
            false
        };
        let idx = self
            .dense(rid)
            .expect("db_begin resolved this request already");
        self.in_txn[idx] = false;
        self.opnum_next[idx] += 1;
        Ok(result)
    }

    /// Records VM instruction-dispatch work done by the executor:
    /// `total` is the dispatch count a fully scalar re-execution would
    /// have paid, `executed` what the (possibly grouped) engine actually
    /// dispatched. The gap is deduplicated re-execution's saving.
    pub fn record_vm_dispatches(&mut self, total: u64, executed: u64) {
        self.stats.vm_dispatch_total += total;
        self.stats.vm_dispatch_executed += executed;
    }

    /// Feeds the next recorded nondeterministic value for `rid`,
    /// checking its kind matches the call site (§4.6).
    pub fn nondet(&mut self, rid: RequestId, kind: &str) -> Result<NondetValue, Rejection> {
        // A rid outside the trace owns no recorded values, so the
        // cursor (0) is already past the end.
        let Some(idx) = self.dense(rid) else {
            return Err(Rejection::NondetExhausted { rid });
        };
        let recorded = self.shared.reports.nondet.for_request(rid);
        let cursor = &mut self.nondet_cursor[idx];
        let value = recorded
            .get(*cursor)
            .ok_or(Rejection::NondetExhausted { rid })?;
        if value.kind() != kind {
            return Err(Rejection::NondetKindMismatch { rid });
        }
        *cursor += 1;
        Ok(value.clone())
    }

    /// Driver-side end-of-request checks: the request must have consumed
    /// exactly `M(rid)` operations (Fig. 12 line 51) and all recorded
    /// nondeterminism.
    fn finish_request(&mut self, rid: RequestId) -> Result<(), Rejection> {
        let idx = self
            .dense(rid)
            .expect("prepared groups only contain trace requests");
        if self.in_txn[idx] {
            return Err(Rejection::StateOpDuringTxn { rid });
        }
        if self.opnum_next[idx] != self.shared.reports.op_count(rid) + 1 {
            return Err(Rejection::OpCountMismatch { rid });
        }
        if self.nondet_cursor[idx] != self.shared.reports.nondet.for_request(rid).len() {
            return Err(Rejection::NondetLeftover { rid });
        }
        Ok(())
    }

    /// Statistics accumulated so far (dedup hits, op counts, ...).
    pub fn stats(&self) -> &AuditStats {
        &self.stats
    }

    /// Resets per-request progress for `rids` so they can be re-executed
    /// from scratch. Used by the grouped executor when a group diverges
    /// and falls back to per-request scalar re-execution (acc-PHP's
    /// retry, §4.3): checks are deterministic and side-effect-free on
    /// the audit state, so a retry re-runs them identically.
    pub fn reset_requests(&mut self, rids: &[RequestId]) {
        for rid in rids {
            if let Some(idx) = self.dense(*rid) {
                self.opnum_next[idx] = 1;
                self.in_txn[idx] = false;
                self.nondet_cursor[idx] = 0;
            }
        }
    }
}

/// The context state one streaming worker slot carries across epoch
/// boundaries: performance caches and counters only. See
/// [`AuditContext::into_carry`].
#[derive(Default)]
pub(crate) struct AuditCarry {
    dedup_cache: HashMap<DedupKey, ExecOutcome>,
    touched_tables: HashMap<String, Vec<String>>,
    pub(crate) stats: AuditStats,
}

impl AuditCarry {
    /// Rough resident size of the carried caches in bytes.
    pub(crate) fn estimated_bytes(&self) -> usize {
        let dedup: usize = self
            .dedup_cache
            .keys()
            .map(|(_, sql, tables)| {
                48 + sql.len() + tables.iter().map(|(t, _)| t.len() + 16).sum::<usize>()
            })
            .sum();
        let tables: usize = self
            .touched_tables
            .iter()
            .map(|(k, v)| k.len() + v.iter().map(String::len).sum::<usize>() + 48)
            .sum();
        dedup + tables
    }
}

/// One control-flow group, filtered and resolved by the deterministic
/// pre-pass: duplicate requests removed, every request known to the
/// trace.
pub(crate) struct PreparedGroup {
    pub(crate) tag: CtlFlowTag,
    pub(crate) requests: Vec<(RequestId, HttpRequest)>,
}

/// Deterministic grouping pre-pass: walks `reports.groupings` in order,
/// filters requests already claimed by an earlier group (re-execution is
/// idempotent, so duplicate filtering is an optimization, not a check,
/// §3.1), and stops at the first request the trace does not contain.
/// The returned rejection — if any — only fires after every *earlier*
/// prepared group re-executed cleanly, which is exactly when the
/// sequential audit would have reached it.
fn prepare_groups(
    balanced: &BalancedTrace,
    reports: &Reports,
) -> (Vec<PreparedGroup>, Option<Rejection>) {
    let mut claimed: HashSet<RequestId> = HashSet::new();
    let mut out = Vec::new();
    for (tag, rids) in &reports.groupings {
        let mut group_requests = Vec::new();
        let mut seen_in_group = HashSet::new();
        for rid in rids {
            if claimed.contains(rid) || !seen_in_group.insert(*rid) {
                continue;
            }
            if !balanced.contains(*rid) {
                return (out, Some(Rejection::GroupUnknownRequest { rid: *rid }));
            }
            group_requests.push((*rid, balanced.request(*rid).clone()));
        }
        if group_requests.is_empty() {
            continue;
        }
        claimed.extend(group_requests.iter().map(|(r, _)| *r));
        out.push(PreparedGroup {
            tag: *tag,
            requests: group_requests,
        });
    }
    (out, None)
}

/// Re-executes one prepared group and runs the per-group driver checks
/// (executor protocol, Fig. 12 line 51 op counts, leftover
/// nondeterminism). Returns the produced outputs; error order within the
/// group matches the sequential driver exactly.
pub(crate) fn run_one_group(
    executor: &mut dyn GroupExecutor,
    ctx: &mut AuditContext<'_>,
    group: &PreparedGroup,
) -> Result<Vec<(RequestId, HttpResponse)>, Rejection> {
    let outputs = executor.execute_group(&group.requests, ctx)?;
    let group_set: HashSet<RequestId> = group.requests.iter().map(|(r, _)| *r).collect();
    let mut seen: HashSet<RequestId> = HashSet::new();
    for (rid, _) in &outputs {
        if !group_set.contains(rid) {
            return Err(Rejection::ExecutorProtocol(format!(
                "output for {rid} not in group {}",
                group.tag
            )));
        }
        if !seen.insert(*rid) {
            return Err(Rejection::ExecutorProtocol(format!(
                "duplicate output for {rid}"
            )));
        }
    }
    for (rid, _) in &group.requests {
        ctx.finish_request(*rid)?;
    }
    ctx.stats.groups_executed += 1;
    ctx.stats.requests_reexecuted += group.requests.len();
    Ok(outputs)
}

/// Phase 5: the produced outputs must be exactly the responses in the
/// trace (Fig. 12 line 55).
fn compare_outputs(
    balanced: &BalancedTrace,
    produced: &HashMap<RequestId, HttpResponse>,
) -> Result<(), Rejection> {
    for rid in balanced.request_ids() {
        match produced.get(&rid) {
            None => return Err(Rejection::MissingOutput { rid }),
            Some(resp) => {
                if resp != balanced.response(rid) {
                    return Err(Rejection::OutputMismatch { rid });
                }
            }
        }
    }
    Ok(())
}

/// Folds the redo statistics and store sizes into the final outcome,
/// and mirrors the phase walls and dispatch counters into the
/// telemetry registry — the single write point, so fig9 consumers can
/// read either the per-run `PhaseTimer` or the process-wide metrics
/// and see the same accounting.
pub(crate) fn assemble_outcome(
    shared: &AuditShared<'_>,
    mut stats: AuditStats,
    phases: PhaseTimer,
) -> AuditOutcome {
    stats.phases = phases;
    stats.graph_nodes = shared.graph_nodes;
    stats.graph_edges = shared.graph_edges;
    stats.graph_build = shared.graph_build;
    for vdb in shared.versioned_dbs.iter().flatten() {
        let s = vdb.stats();
        stats.redo.transactions += s.transactions;
        stats.redo.queries += s.queries;
        stats.redo.versions_created += s.versions_created;
        stats.redo.aborted += s.aborted;
        stats.db_versioned_bytes += vdb.estimated_bytes();
        stats.db_final_bytes += vdb.latest_snapshot().estimated_bytes();
    }
    mirror_stats_into_registry(&stats);
    AuditOutcome { stats }
}

/// Known fig9 phase rows and their registry counter names. Phase rows
/// outside this set (none today) would fall back to a slugged name.
fn phase_counter_name(phase: &str) -> Option<&'static str> {
    Some(match phase {
        "Balance" => "audit_phase_balance_ns",
        "ProcOpRep" => "audit_phase_procoprep_ns",
        "DB redo" => "audit_phase_db_redo_ns",
        "DB query" => "audit_phase_db_query_ns",
        "ReExec" => "audit_phase_reexec_ns",
        "Output" => "audit_phase_output_ns",
        _ => return None,
    })
}

fn mirror_stats_into_registry(stats: &AuditStats) {
    use orochi_obs::registry;
    for (phase, d) in stats.phases.iter() {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        match phase_counter_name(phase) {
            Some(name) => registry::counter(name).add(ns),
            None => {
                let slug: String = phase
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() {
                            c.to_ascii_lowercase()
                        } else {
                            '_'
                        }
                    })
                    .collect();
                registry::counter_owned(&format!("audit_phase_{slug}_ns")).add(ns);
            }
        }
    }
    registry::counter("audit_groups_executed_total").add(stats.groups_executed as u64);
    registry::counter("audit_requests_reexecuted_total").add(stats.requests_reexecuted as u64);
    registry::counter("audit_vm_dispatch_represented_total").add(stats.vm_dispatch_total);
    registry::counter("audit_vm_dispatch_executed_total").add(stats.vm_dispatch_executed);
}

impl Rejection {
    /// Splits a trace-read failure into its two audit meanings: a
    /// balance violation is a verdict (the executor misbehaved), a
    /// storage failure is an audit-infrastructure error.
    fn from_read(e: TraceReadError) -> Rejection {
        match e {
            TraceReadError::Balance(e) => Rejection::Unbalanced(e),
            TraceReadError::Store(e) => Rejection::TraceStore(e),
        }
    }
}

/// Runs phases 1–3 (balance, ProcessOpReports + nondeterminism sanity,
/// versioned store builds), timing each.
///
/// The trace arrives as a [`TraceSource`] so batch-from-RAM and
/// replay-from-cold-storage share this code path. A source that already
/// holds a materialized [`BalancedTrace`] is borrowed as-is; anything
/// else is replayed through [`BalancedTrace::from_source`].
fn prologue<'t, 'a>(
    source: &'t dyn TraceSource,
    reports: &'a Reports,
    config: &'a AuditConfig,
    threads: usize,
    phases: &mut PhaseTimer,
) -> Result<(Cow<'t, BalancedTrace>, Arc<AuditShared<'a>>), Rejection> {
    // Phase 1: balanced-trace validation (§3). Replaying from a store
    // also covers decode + integrity checks here.
    let balanced = phases
        .time("Balance", || match source.as_balanced() {
            Some(balanced) => Ok(Cow::Borrowed(balanced)),
            None => BalancedTrace::from_source(source).map(Cow::Owned),
        })
        .map_err(Rejection::from_read)?;

    // Phase 2: ProcessOpReports (Fig. 5) + nondeterminism sanity (§4.6).
    let (graph, opmap) = phases.time("ProcOpRep", || {
        process_op_reports_with(&balanced, reports, threads)
    })?;
    reports
        .nondet
        .validate()
        .map_err(Rejection::NondetInvalid)?;

    // Phase 3: versioned store builds — the §4.5 redo pass plus the kv
    // views and register prev-write indexes — sharded by object when a
    // pool is available.
    let mut shared = phases.time("DB redo", || {
        AuditShared::build(reports, opmap, config, threads)
    })?;
    shared.record_graph(&graph);
    Ok((balanced, Arc::new(shared)))
}

/// Runs the full audit (`SSCO_AUDIT2`, Fig. 12).
///
/// Returns statistics on acceptance; rejects with a precise reason
/// otherwise. Groups are re-executed one at a time; see
/// [`audit_parallel`] for the pooled variant.
pub fn audit(
    trace: &Trace,
    reports: &Reports,
    executor: &mut dyn GroupExecutor,
    config: &AuditConfig,
) -> Result<AuditOutcome, Rejection> {
    audit_source(trace, reports, executor, config)
}

/// [`audit`] over any [`TraceSource`] — the in-memory [`Trace`], a
/// pre-balanced replay, or a [`orochi_trace::TraceStoreReader`] that
/// streams sealed on-disk segments. Verdicts and diagnostics are
/// byte-identical across sources holding the same events.
pub fn audit_source(
    source: &dyn TraceSource,
    reports: &Reports,
    executor: &mut dyn GroupExecutor,
    config: &AuditConfig,
) -> Result<AuditOutcome, Rejection> {
    let mut phases = PhaseTimer::new();
    let (balanced, shared) = prologue(source, reports, config, 1, &mut phases)?;
    let (prepared, pre_error) = prepare_groups(&balanced, reports);
    reexec_sequential(&balanced, &shared, &prepared, pre_error, executor, phases)
}

/// The sequential re-execution tail shared by [`audit`] and the
/// small-run fallback of [`audit_parallel`].
fn reexec_sequential(
    balanced: &BalancedTrace,
    shared: &Arc<AuditShared<'_>>,
    prepared: &[PreparedGroup],
    pre_error: Option<Rejection>,
    executor: &mut dyn GroupExecutor,
    mut phases: PhaseTimer,
) -> Result<AuditOutcome, Rejection> {
    let mut ctx = AuditContext::from_shared(Arc::clone(shared));
    let mut produced: HashMap<RequestId, HttpResponse> = HashMap::new();
    let lane = orochi_obs::enabled().then(|| orochi_obs::journal::lane("audit-worker-0"));
    let group_ns = orochi_obs::registry::histogram("audit_group_ns");
    let reexec_t0 = Instant::now();
    for group in prepared {
        let span = lane.and_then(|l| orochi_obs::span_timed(l, "group", group_ns));
        let outputs = run_one_group(executor, &mut ctx, group)?;
        drop(span);
        produced.extend(outputs);
    }
    if let Some(rejection) = pre_error {
        // The grouping pre-pass found a request the trace does not
        // contain; every group before it re-executed cleanly, so this is
        // the first error the sequential walk reaches.
        return Err(rejection);
    }
    let reexec_total = reexec_t0.elapsed();
    phases.add("DB query", ctx.stats.db_query_wall);
    phases.add(
        "ReExec",
        reexec_total.saturating_sub(ctx.stats.db_query_wall),
    );

    let output_check = Instant::now();
    compare_outputs(balanced, &produced)?;
    phases.add("Output", output_check.elapsed());

    Ok(assemble_outcome(shared, ctx.stats, phases))
}

/// What one re-execution worker hands back when it drains the queue.
struct WorkerReport {
    stats: AuditStats,
    busy: Duration,
    outputs: Vec<(RequestId, HttpResponse)>,
}

/// Runs the full audit with group re-execution fanned out across
/// `executors.len()` worker threads (one [`GroupExecutor`] and one
/// [`AuditContext`] per worker over a single shared prologue).
///
/// Verdicts and failure diagnostics are byte-identical to [`audit`]:
/// groups are fixed up front by the same deterministic pre-pass, each
/// group's internal check order is unchanged, and when several groups
/// fail concurrently the rejection reported is the lowest-indexed one —
/// the first the sequential walk would have hit. Scheduling only moves
/// performance counters (the dedup hit/miss split).
///
/// With a single executor — or fewer than two eligible groups — the
/// sequential path runs directly and no threads are spawned, so tiny
/// runs pay no pool overhead.
///
/// # Panics
///
/// Panics if `executors` is empty.
pub fn audit_parallel<E: GroupExecutor + Send>(
    trace: &Trace,
    reports: &Reports,
    executors: &mut [E],
    config: &AuditConfig,
) -> Result<AuditOutcome, Rejection> {
    audit_parallel_source(trace, reports, executors, config)
}

/// [`audit_parallel`] over any [`TraceSource`]; see [`audit_source`]
/// for the source contract.
///
/// # Panics
///
/// Panics if `executors` is empty.
pub fn audit_parallel_source<E: GroupExecutor + Send>(
    source: &dyn TraceSource,
    reports: &Reports,
    executors: &mut [E],
    config: &AuditConfig,
) -> Result<AuditOutcome, Rejection> {
    assert!(
        !executors.is_empty(),
        "audit_parallel requires at least one executor"
    );
    let threads = executors.len();
    let mut phases = PhaseTimer::new();
    let (balanced, shared) = prologue(source, reports, config, threads, &mut phases)?;
    let (prepared, pre_error) = prepare_groups(&balanced, reports);
    if threads == 1 || prepared.len() < 2 {
        return reexec_sequential(
            &balanced,
            &shared,
            &prepared,
            pre_error,
            &mut executors[0],
            phases,
        );
    }

    // Phase 4, pooled: workers pull groups off a shared cursor (dynamic
    // load balancing), largest group first (LPT) so a Zipf-head group
    // started last can't serialize the tail. Schedule order is free to
    // vary: group re-executions touch disjoint per-request state, and
    // the reported rejection is selected by *group index*, not by
    // schedule position.
    let mut schedule: Vec<usize> = (0..prepared.len()).collect();
    schedule.sort_by_key(|&g| std::cmp::Reverse(prepared[g].requests.len()));
    let cursor = AtomicUsize::new(0);
    // Lowest-indexed failing group so far: (group index, rejection).
    let first_err: Mutex<Option<(usize, Rejection)>> = Mutex::new(None);
    let reports_out: Mutex<Vec<WorkerReport>> = Mutex::new(Vec::with_capacity(threads));
    crossbeam::thread::scope(|s| {
        for (w, executor) in executors.iter_mut().enumerate() {
            let cursor = &cursor;
            let first_err = &first_err;
            let reports_out = &reports_out;
            let shared = &shared;
            let prepared = &prepared;
            let schedule = &schedule;
            s.spawn(move |_| {
                let lane = orochi_obs::enabled()
                    .then(|| orochi_obs::journal::lane(&format!("audit-worker-{w}")));
                let group_ns = orochi_obs::registry::histogram("audit_group_ns");
                let worker_t0 = Instant::now();
                let mut ctx = AuditContext::from_shared(Arc::clone(shared));
                let mut outputs: Vec<(RequestId, HttpResponse)> = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&g) = schedule.get(k) else { break };
                    let group = &prepared[g];
                    // A group after a known failure can never influence
                    // the verdict (the sequential walk stops there);
                    // skip it.
                    let doomed = first_err
                        .lock()
                        .expect("error slot poisoned")
                        .as_ref()
                        .is_some_and(|(idx, _)| g > *idx);
                    if doomed {
                        continue;
                    }
                    let span = lane.and_then(|l| orochi_obs::span_timed(l, "group", group_ns));
                    let result = run_one_group(&mut *executor, &mut ctx, group);
                    drop(span);
                    match result {
                        Ok(outs) => outputs.extend(outs),
                        Err(rejection) => {
                            let mut slot = first_err.lock().expect("error slot poisoned");
                            if slot.as_ref().is_none_or(|(idx, _)| g < *idx) {
                                *slot = Some((g, rejection));
                            }
                        }
                    }
                }
                reports_out
                    .lock()
                    .expect("report slot poisoned")
                    .push(WorkerReport {
                        stats: ctx.stats,
                        busy: worker_t0.elapsed(),
                        outputs,
                    });
            });
        }
    })
    .expect("audit worker pool");

    if let Some((_, rejection)) = first_err.into_inner().expect("error slot poisoned") {
        return Err(rejection);
    }
    if let Some(rejection) = pre_error {
        return Err(rejection);
    }

    // Merge worker results. Counter sums are order-independent, so the
    // merged statistics are deterministic even though workers finish in
    // arbitrary order.
    let mut stats = AuditStats::default();
    let mut produced: HashMap<RequestId, HttpResponse> = HashMap::new();
    let mut busy_total = Duration::ZERO;
    for report in reports_out.into_inner().expect("report slot poisoned") {
        stats.absorb(&report.stats);
        busy_total += report.busy;
        // Rids are disjoint across prepared groups and duplicate outputs
        // within a group were already rejected, so inserts cannot clash.
        produced.extend(report.outputs);
    }
    // Phase rows keep Fig. 9's CPU-decomposition meaning: summed worker
    // busy time, not wall time. `absorb` already summed the per-worker
    // DB-query walls into `stats.db_query_wall`.
    phases.add("DB query", stats.db_query_wall);
    phases.add("ReExec", busy_total.saturating_sub(stats.db_query_wall));

    let output_check = Instant::now();
    compare_outputs(&balanced, &produced)?;
    phases.add("Output", output_check.elapsed());

    Ok(assemble_outcome(&shared, stats, phases))
}
