//! `SSCO_AUDIT2` (Fig. 12): the audit driver and the simulate-and-check
//! context.
//!
//! The audit proceeds in phases:
//!
//! 1. **Balance** — validate the trace (§3).
//! 2. **ProcessOpReports** — consistent-ordering verification and OpMap
//!    construction ([`crate::graph`]), plus the §4.6 nondeterminism
//!    sanity checks.
//! 3. **DB redo** — build the versioned stores: `kv.Build(OL)` happens
//!    lazily per object; every log containing database operations gets a
//!    full versioned redo pass (§4.5).
//! 4. **Re-execution** — each control-flow group is handed to the
//!    [`GroupExecutor`]; every state operation flows through
//!    [`AuditContext`], which implements `CheckOp` (the produced operands
//!    must match the log entry the OpMap names) and `SimOp` (reads are
//!    fed from the logs/versioned stores). Read-query deduplication
//!    (§4.5) lives here too.
//! 5. **Output comparison** — the produced outputs must be exactly the
//!    responses in the trace.
//!
//! Any failed check rejects with a precise [`Rejection`] reason.

use crate::exec::{DbQueryResult, DbTxnHandle, GroupExecutor, SimResult};
use crate::graph::{process_op_reports, GraphRejection, OpMap};
use crate::nondet::NondetValue;
use crate::reports::Reports;
use orochi_common::ids::{CtlFlowTag, OpNum, RequestId, SeqNum};
use orochi_common::metrics::PhaseTimer;
use orochi_sqldb::{Database, ExecOutcome, RedoError, RedoStats, VersionedDb, MAXQ};
use orochi_state::object::{ObjectName, OpContents, OpType};
use orochi_state::oplog::OpLogs;
use orochi_state::versioned_kv::VersionedKv;
use orochi_trace::record::{BalanceError, Trace};
use orochi_trace::HttpResponse;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Why the audit rejected. Each variant corresponds to a failed check in
/// Figs. 5/12 or one of OROCHI's additional report validations.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The trace is not balanced (§3).
    Unbalanced(BalanceError),
    /// Report processing failed (Fig. 5), including cycle detection.
    Graph(GraphRejection),
    /// The nondeterminism report violates the §4.6 sanity conditions.
    NondetInvalid(RequestId),
    /// The database redo pass failed (§4.5).
    Redo(RedoError),
    /// Re-execution issued an operation the OpMap does not contain
    /// (CheckOp line 11).
    OpNotInOpMap {
        /// The issuing request.
        rid: RequestId,
        /// The operation number.
        opnum: OpNum,
    },
    /// The operation targeted a different object than the log claims
    /// (CheckOp line 14, `i != î`).
    ObjectMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The operation number.
        opnum: OpNum,
    },
    /// The produced operands differ from the logged opcontents
    /// (CheckOp line 14).
    OpContentsMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The operation number.
        opnum: OpNum,
    },
    /// A database query's SQL text differs from the logged statement
    /// (§A.7 per-query check).
    DbQueryMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
        /// 1-based query position.
        query: u64,
    },
    /// Re-execution issued more queries in a transaction than were
    /// logged.
    DbTooManyQueries {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// Re-execution finished a transaction with fewer queries than
    /// logged.
    DbQueryCountMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// The program's commit/rollback disagrees with the logged
    /// `succeeded` flag.
    DbCommitMismatch {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// An aborted transaction's read has no captured result — the log is
    /// internally inconsistent.
    DbAbortedReadMissing {
        /// The issuing request.
        rid: RequestId,
        /// The transaction's operation number.
        opnum: OpNum,
    },
    /// A state operation was issued while a database transaction was
    /// open (the SSCO model forbids nesting, §4.4).
    StateOpDuringTxn {
        /// The issuing request.
        rid: RequestId,
    },
    /// Re-execution consumed more nondeterministic values than recorded.
    NondetExhausted {
        /// The issuing request.
        rid: RequestId,
    },
    /// A recorded nondeterministic value has the wrong kind for the call
    /// site.
    NondetKindMismatch {
        /// The issuing request.
        rid: RequestId,
    },
    /// Recorded nondeterministic values were left unconsumed.
    NondetLeftover {
        /// The issuing request.
        rid: RequestId,
    },
    /// A request finished with an operation count different from
    /// `M(rid)` (Fig. 12 line 51).
    OpCountMismatch {
        /// The finishing request.
        rid: RequestId,
    },
    /// A control-flow group names a request absent from the trace.
    GroupUnknownRequest {
        /// The unknown request.
        rid: RequestId,
    },
    /// Requests in one control-flow group diverged during grouped
    /// re-execution (Fig. 12 line 39).
    Divergence {
        /// The group's tag.
        tag: CtlFlowTag,
    },
    /// The re-executed program failed outright (runtime error where the
    /// trace shows a normal response).
    ExecFailure(String),
    /// The executor returned outputs violating the driver protocol
    /// (unknown or duplicate request).
    ExecutorProtocol(String),
    /// A produced output differs from the response in the trace
    /// (Fig. 12 line 55).
    OutputMismatch {
        /// The mismatching request.
        rid: RequestId,
    },
    /// No output was produced for a request in the trace.
    MissingOutput {
        /// The uncovered request.
        rid: RequestId,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Unbalanced(e) => write!(f, "trace not balanced: {e}"),
            Rejection::Graph(e) => write!(f, "report processing: {e}"),
            Rejection::NondetInvalid(rid) => {
                write!(f, "nondeterminism report invalid for {rid}")
            }
            Rejection::Redo(e) => write!(f, "versioned redo: {e}"),
            Rejection::OpNotInOpMap { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) not in OpMap")
            }
            Rejection::ObjectMismatch { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) targets a different object")
            }
            Rejection::OpContentsMismatch { rid, opnum } => {
                write!(f, "operation ({rid},{opnum}) operands differ from log")
            }
            Rejection::DbQueryMismatch { rid, opnum, query } => {
                write!(f, "({rid},{opnum}) query {query} differs from log")
            }
            Rejection::DbTooManyQueries { rid, opnum } => {
                write!(f, "({rid},{opnum}) issued more queries than logged")
            }
            Rejection::DbQueryCountMismatch { rid, opnum } => {
                write!(f, "({rid},{opnum}) finished with fewer queries than logged")
            }
            Rejection::DbCommitMismatch { rid, opnum } => {
                write!(f, "({rid},{opnum}) commit/rollback disagrees with log")
            }
            Rejection::DbAbortedReadMissing { rid, opnum } => {
                write!(f, "({rid},{opnum}) aborted-transaction read not captured")
            }
            Rejection::StateOpDuringTxn { rid } => {
                write!(f, "{rid} issued a state op inside a transaction")
            }
            Rejection::NondetExhausted { rid } => {
                write!(f, "{rid} consumed more nondet values than recorded")
            }
            Rejection::NondetKindMismatch { rid } => {
                write!(f, "{rid} nondet value kind mismatch")
            }
            Rejection::NondetLeftover { rid } => {
                write!(f, "{rid} left recorded nondet values unconsumed")
            }
            Rejection::OpCountMismatch { rid } => {
                write!(f, "{rid} finished with an op count different from M")
            }
            Rejection::GroupUnknownRequest { rid } => {
                write!(f, "control-flow group names unknown request {rid}")
            }
            Rejection::Divergence { tag } => {
                write!(f, "control-flow group {tag} diverged")
            }
            Rejection::ExecFailure(m) => write!(f, "re-execution failed: {m}"),
            Rejection::ExecutorProtocol(m) => write!(f, "executor protocol: {m}"),
            Rejection::OutputMismatch { rid } => {
                write!(f, "produced output for {rid} differs from the trace")
            }
            Rejection::MissingOutput { rid } => {
                write!(f, "no output produced for {rid}")
            }
        }
    }
}

impl std::error::Error for Rejection {}

impl From<GraphRejection> for Rejection {
    fn from(e: GraphRejection) -> Self {
        Rejection::Graph(e)
    }
}

impl From<RedoError> for Rejection {
    fn from(e: RedoError) -> Self {
        Rejection::Redo(e)
    }
}

/// Initial state and switches for an audit.
#[derive(Default)]
pub struct AuditConfig {
    /// Initial database contents per object name (the verifier's copy of
    /// the server's persistent state, §4.1).
    pub initial_dbs: HashMap<String, Database>,
    /// Initial register values per object name.
    pub initial_registers: HashMap<String, Vec<u8>>,
    /// Initial key-value contents per object name.
    pub initial_kv: HashMap<String, HashMap<String, Vec<u8>>>,
    /// Enables read-query deduplication (§4.5); on by default, off for
    /// the ablation bench.
    pub query_dedup: bool,
}

impl AuditConfig {
    /// Default configuration: empty initial state, deduplication on.
    pub fn new() -> Self {
        Self {
            query_dedup: true,
            ..Self::default()
        }
    }
}

/// Counters and phase timings collected during an audit.
#[derive(Debug, Default, Clone)]
pub struct AuditStats {
    /// Control-flow groups re-executed.
    pub groups_executed: usize,
    /// Requests re-executed (after duplicate filtering).
    pub requests_reexecuted: usize,
    /// Register operations checked/simulated.
    pub register_ops: u64,
    /// Key-value operations checked/simulated.
    pub kv_ops: u64,
    /// Database transactions re-executed.
    pub db_txns: u64,
    /// Database queries checked.
    pub db_queries: u64,
    /// SELECTs answered from the dedup cache (§4.5).
    pub db_queries_deduped: u64,
    /// SELECTs actually issued to the versioned store.
    pub db_queries_issued: u64,
    /// Aggregate redo statistics across database objects.
    pub redo: RedoStats,
    /// Bytes held by the audit-time versioned database(s) (Fig. 8
    /// "temp" DB overhead numerator).
    pub db_versioned_bytes: usize,
    /// Bytes of the latest (migrated) database snapshot (the
    /// denominator; also what the verifier keeps after the audit).
    pub db_final_bytes: usize,
    /// Wall time per phase ("ProcOpRep", "DB redo", "ReExec", "DB query",
    /// "Output"), in the style of Fig. 9.
    pub phases: PhaseTimer,
}

/// A successful audit.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Statistics for the evaluation harness.
    pub stats: AuditStats,
}

/// Key of the read-query dedup cache: (log index, sql text, epochs of
/// the tables the query touches).
type DedupKey = (usize, String, Vec<(String, u64)>);

/// The simulate-and-check context handed to the [`GroupExecutor`].
///
/// Tracks per-request operation numbers, performs `CheckOp` against the
/// OpMap and logs, and feeds reads from the versioned stores.
pub struct AuditContext<'a> {
    op_logs: &'a OpLogs,
    reports: &'a Reports,
    opmap: OpMap,
    config: &'a AuditConfig,
    /// Next unconsumed opnum per request (starts at 1).
    opnum_next: HashMap<RequestId, u32>,
    /// Requests with an open database transaction.
    in_txn: HashSet<RequestId>,
    /// Lazily built per-log register prev-write indexes: for entry index
    /// `j`, the index of the latest `RegisterWrite` strictly before `j`.
    reg_prev_write: HashMap<usize, Vec<Option<usize>>>,
    /// Lazily built versioned key-value views per log.
    versioned_kv: HashMap<usize, VersionedKv>,
    /// Versioned databases per log index (built by the redo phase).
    versioned_dbs: HashMap<usize, VersionedDb>,
    /// Read-query dedup cache: (log, sql, table epochs) -> result.
    dedup_cache: HashMap<DedupKey, ExecOutcome>,
    /// Memoized sql -> touched tables (queries repeat heavily; parsing
    /// each occurrence would eat the dedup gain).
    touched_tables: HashMap<String, Vec<String>>,
    /// Nondeterminism cursors per request.
    nondet_cursor: HashMap<RequestId, usize>,
    /// Accumulated statistics.
    stats: AuditStats,
    /// Time spent answering database queries (the Fig. 9 "DB query" row).
    db_query_time: Duration,
}

impl<'a> AuditContext<'a> {
    /// Runs the audit prologue standalone: balance check, report
    /// processing (Fig. 5), nondeterminism validation, and the versioned
    /// redo pass — yielding a context ready for re-execution. `audit()`
    /// uses this internally; benchmarks and executor tests use it to
    /// drive a [`GroupExecutor`] directly.
    pub fn prepare(
        trace: &Trace,
        reports: &'a Reports,
        config: &'a AuditConfig,
    ) -> Result<AuditContext<'a>, Rejection> {
        let balanced = trace.ensure_balanced().map_err(Rejection::Unbalanced)?;
        let (_graph, opmap) = process_op_reports(&balanced, reports)?;
        reports.nondet.validate().map_err(Rejection::NondetInvalid)?;
        let versioned_dbs = build_versioned_dbs(reports, config)?;
        Ok(AuditContext::new(reports, opmap, config, versioned_dbs))
    }

    fn new(
        reports: &'a Reports,
        opmap: OpMap,
        config: &'a AuditConfig,
        versioned_dbs: HashMap<usize, VersionedDb>,
    ) -> Self {
        AuditContext {
            op_logs: &reports.op_logs,
            reports,
            opmap,
            config,
            opnum_next: HashMap::new(),
            in_txn: HashSet::new(),
            reg_prev_write: HashMap::new(),
            versioned_kv: HashMap::new(),
            versioned_dbs,
            dedup_cache: HashMap::new(),
            touched_tables: HashMap::new(),
            nondet_cursor: HashMap::new(),
            stats: AuditStats::default(),
            db_query_time: Duration::ZERO,
        }
    }

    fn peek_opnum(&self, rid: RequestId) -> OpNum {
        OpNum(*self.opnum_next.get(&rid).unwrap_or(&1))
    }

    fn consume_opnum(&mut self, rid: RequestId) {
        *self.opnum_next.entry(rid).or_insert(1) += 1;
    }

    /// `CheckOp` (Fig. 12 lines 10–15) for non-database operations: the
    /// operation's target object and full operands must match the log
    /// entry the OpMap names.
    fn check_op(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        expect: &OpContents,
    ) -> Result<(usize, SeqNum), Rejection> {
        if self.in_txn.contains(&rid) {
            return Err(Rejection::StateOpDuringTxn { rid });
        }
        let opnum = self.peek_opnum(rid);
        let (i, s) = self
            .opmap
            .get(rid, opnum)
            .ok_or(Rejection::OpNotInOpMap { rid, opnum })?;
        let name = self.op_logs.name(i).expect("OpMap indexes valid logs");
        if name != object {
            return Err(Rejection::ObjectMismatch { rid, opnum });
        }
        let entry = self
            .op_logs
            .log(i)
            .and_then(|l| l.get(s))
            .expect("OpMap points into logs");
        if entry.contents != *expect {
            return Err(Rejection::OpContentsMismatch { rid, opnum });
        }
        Ok((i, s))
    }

    /// Register read: checked, then fed from the latest preceding write
    /// in the log (Fig. 12 lines 19–23), falling back to the initial
    /// state the verifier carries (§4.1).
    pub fn register_read(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
    ) -> Result<SimResult, Rejection> {
        let (i, s) = self.check_op(rid, object, &OpContents::RegisterRead)?;
        let prev = self.reg_prev_index(i);
        let value = match prev[(s.0 - 1) as usize] {
            Some(widx) => {
                let log = self.op_logs.log(i).expect("checked index");
                match &log.entries()[widx].contents {
                    OpContents::RegisterWrite { value } => Some(value.clone()),
                    _ => unreachable!("prev-write index only records writes"),
                }
            }
            None => self.config.initial_registers.get(object.as_str()).cloned(),
        };
        self.consume_opnum(rid);
        self.stats.register_ops += 1;
        Ok(SimResult::Register(value))
    }

    /// Register write: checked only (the check validates the logged
    /// value, which earlier reads may already have consumed —
    /// "opportunistic" checking, §3.3).
    pub fn register_write(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        value: Vec<u8>,
    ) -> Result<SimResult, Rejection> {
        self.check_op(rid, object, &OpContents::RegisterWrite { value })?;
        self.consume_opnum(rid);
        self.stats.register_ops += 1;
        Ok(SimResult::None)
    }

    /// Key-value get: checked, then fed from the versioned view
    /// (`kv.Build` + `kv.get(k, s)`, Fig. 12 line 25).
    pub fn kv_get(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        key: &str,
    ) -> Result<SimResult, Rejection> {
        let (i, s) = self.check_op(
            rid,
            object,
            &OpContents::KvGet {
                key: key.to_string(),
            },
        )?;
        let kv = self
            .versioned_kv
            .entry(i)
            .or_insert_with(|| VersionedKv::build(self.op_logs.log(i).expect("checked index")));
        let value = if kv.has_write_before(key, s) {
            kv.get(key, s)
        } else {
            self.config
                .initial_kv
                .get(object.as_str())
                .and_then(|m| m.get(key).cloned())
        };
        self.consume_opnum(rid);
        self.stats.kv_ops += 1;
        Ok(SimResult::Kv(value))
    }

    /// Key-value set: checked only.
    pub fn kv_set(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
        key: &str,
        value: Option<Vec<u8>>,
    ) -> Result<SimResult, Rejection> {
        self.check_op(
            rid,
            object,
            &OpContents::KvSet {
                key: key.to_string(),
                value,
            },
        )?;
        self.consume_opnum(rid);
        self.stats.kv_ops += 1;
        Ok(SimResult::None)
    }

    /// Opens a database transaction: resolves the OpMap entry that this
    /// operation will consume and validates object and optype. Queries
    /// are then checked one at a time (§A.7).
    pub fn db_begin(
        &mut self,
        rid: RequestId,
        object: &ObjectName,
    ) -> Result<DbTxnHandle, Rejection> {
        if self.in_txn.contains(&rid) {
            return Err(Rejection::StateOpDuringTxn { rid });
        }
        let opnum = self.peek_opnum(rid);
        let (i, s) = self
            .opmap
            .get(rid, opnum)
            .ok_or(Rejection::OpNotInOpMap { rid, opnum })?;
        let name = self.op_logs.name(i).expect("OpMap indexes valid logs");
        if name != object {
            return Err(Rejection::ObjectMismatch { rid, opnum });
        }
        let entry = self
            .op_logs
            .log(i)
            .and_then(|l| l.get(s))
            .expect("OpMap points into logs");
        let (total, succeeded) = match &entry.contents {
            OpContents::DbOp {
                queries, succeeded, ..
            } => (queries.len() as u64, *succeeded),
            _ => return Err(Rejection::OpContentsMismatch { rid, opnum }),
        };
        self.in_txn.insert(rid);
        self.stats.db_txns += 1;
        Ok(DbTxnHandle {
            rid,
            opnum,
            obj_index: i,
            seq: s,
            queries_done: 0,
            total_queries: total,
            logged_succeeded: succeeded,
            failed: false,
        })
    }

    /// Checks one query of an open transaction against the log and
    /// simulates its result (reads from the versioned store with
    /// deduplication; writes from the redo-verified logged outcome).
    pub fn db_query(
        &mut self,
        handle: &mut DbTxnHandle,
        sql: &str,
    ) -> Result<DbQueryResult, Rejection> {
        let rid = handle.rid;
        let opnum = handle.opnum;
        if handle.failed {
            // Online, queries past the failure point fail without being
            // logged; mirror that exactly.
            return Ok(DbQueryResult::Failed);
        }
        let q = handle.queries_done + 1;
        if q > handle.total_queries {
            return Err(Rejection::DbTooManyQueries { rid, opnum });
        }
        let entry = self
            .op_logs
            .log(handle.obj_index)
            .and_then(|l| l.get(handle.seq))
            .expect("handle indexes a validated entry");
        let (queries, write_results) = match &entry.contents {
            OpContents::DbOp {
                queries,
                write_results,
                ..
            } => (queries, write_results),
            _ => unreachable!("db_begin validated the optype"),
        };
        if queries[(q - 1) as usize] != sql {
            return Err(Rejection::DbQueryMismatch { rid, opnum, query: q });
        }
        if write_results.len() != queries.len() {
            // Malformed entry; redo rejects this too, but a hostile log
            // for an object with no DbOp entries can reach here.
            return Err(Rejection::OpContentsMismatch { rid, opnum });
        }
        let logged_write = write_results[(q - 1) as usize];
        handle.queries_done = q;
        self.stats.db_queries += 1;

        let vdb = self
            .versioned_dbs
            .get(&handle.obj_index)
            .ok_or(Rejection::ObjectMismatch { rid, opnum })?;
        let seq = handle.seq.0;
        if handle.logged_succeeded {
            match logged_write {
                Some(w) => Ok(DbQueryResult::Ok(ExecOutcome::Write(
                    orochi_sqldb::engine::WriteOutcome {
                        affected: w.affected,
                        last_insert_id: w.last_insert_id,
                    },
                ))),
                None => {
                    let ts = seq * MAXQ + q;
                    let t0 = Instant::now();
                    let result = self.dedup_query(handle.obj_index, sql, ts, rid, opnum)?;
                    self.db_query_time += t0.elapsed();
                    Ok(DbQueryResult::Ok(result))
                }
            }
        } else {
            match logged_write {
                Some(w) => Ok(DbQueryResult::Ok(ExecOutcome::Write(
                    orochi_sqldb::engine::WriteOutcome {
                        affected: w.affected,
                        last_insert_id: w.last_insert_id,
                    },
                ))),
                None => {
                    if let Some(rows) = vdb.aborted_read(seq, q) {
                        Ok(DbQueryResult::Ok(rows.clone()))
                    } else if q == handle.total_queries && vdb.aborted_failed_at_last(seq) {
                        handle.failed = true;
                        Ok(DbQueryResult::Failed)
                    } else {
                        Err(Rejection::DbAbortedReadMissing { rid, opnum })
                    }
                }
            }
        }
    }

    /// Answers a committed SELECT at `ts`, deduplicating by (sql, table
    /// modification epochs) when enabled (§4.5).
    fn dedup_query(
        &mut self,
        obj_index: usize,
        sql: &str,
        ts: u64,
        rid: RequestId,
        opnum: OpNum,
    ) -> Result<ExecOutcome, Rejection> {
        let vdb = self
            .versioned_dbs
            .get(&obj_index)
            .ok_or(Rejection::ObjectMismatch { rid, opnum })?;
        if !self.config.query_dedup {
            self.stats.db_queries_issued += 1;
            return vdb
                .query_at(sql, ts)
                .map_err(|e| Rejection::ExecFailure(format!("query_at: {e}")));
        }
        let tables = self
            .touched_tables
            .entry(sql.to_string())
            .or_insert_with(|| VersionedDb::touched_tables(sql))
            .clone();
        let vdb = self
            .versioned_dbs
            .get(&obj_index)
            .expect("checked above");
        let epochs: Vec<(String, u64)> = tables
            .into_iter()
            .map(|t| {
                let e = vdb.mod_epoch(&t, ts);
                (t, e)
            })
            .collect();
        let key = (obj_index, sql.to_string(), epochs);
        if let Some(cached) = self.dedup_cache.get(&key) {
            self.stats.db_queries_deduped += 1;
            return Ok(cached.clone());
        }
        self.stats.db_queries_issued += 1;
        let result = vdb
            .query_at(sql, ts)
            .map_err(|e| Rejection::ExecFailure(format!("query_at: {e}")))?;
        self.dedup_cache.insert(key, result.clone());
        Ok(result)
    }

    /// Finishes a transaction. `committed` reflects what the re-executed
    /// program did (`db_commit` vs `db_rollback`); the result is the
    /// value `db_commit` returns to the program.
    pub fn db_finish(
        &mut self,
        handle: DbTxnHandle,
        committed: bool,
    ) -> Result<bool, Rejection> {
        let rid = handle.rid;
        let opnum = handle.opnum;
        if handle.queries_done != handle.total_queries {
            return Err(Rejection::DbQueryCountMismatch { rid, opnum });
        }
        let vdb = self
            .versioned_dbs
            .get(&handle.obj_index)
            .ok_or(Rejection::ObjectMismatch { rid, opnum })?;
        let failed = vdb.aborted_failed_at_last(handle.seq.0);
        let result = if committed {
            if handle.logged_succeeded {
                true
            } else if failed {
                // The program committed, but a statement had failed; the
                // online commit reported failure.
                false
            } else {
                // Log claims a voluntary rollback, but the program
                // committed: inconsistent.
                return Err(Rejection::DbCommitMismatch { rid, opnum });
            }
        } else {
            if handle.logged_succeeded {
                return Err(Rejection::DbCommitMismatch { rid, opnum });
            }
            false
        };
        self.in_txn.remove(&rid);
        self.consume_opnum(rid);
        Ok(result)
    }

    /// Feeds the next recorded nondeterministic value for `rid`,
    /// checking its kind matches the call site (§4.6).
    pub fn nondet(&mut self, rid: RequestId, kind: &str) -> Result<NondetValue, Rejection> {
        let recorded = self.reports.nondet.for_request(rid);
        let cursor = self.nondet_cursor.entry(rid).or_insert(0);
        let value = recorded
            .get(*cursor)
            .ok_or(Rejection::NondetExhausted { rid })?;
        if value.kind() != kind {
            return Err(Rejection::NondetKindMismatch { rid });
        }
        *cursor += 1;
        Ok(value.clone())
    }

    /// Driver-side end-of-request checks: the request must have consumed
    /// exactly `M(rid)` operations (Fig. 12 line 51) and all recorded
    /// nondeterminism.
    fn finish_request(&mut self, rid: RequestId) -> Result<(), Rejection> {
        if self.in_txn.contains(&rid) {
            return Err(Rejection::StateOpDuringTxn { rid });
        }
        let next = self.peek_opnum(rid).0;
        if next != self.reports.op_count(rid) + 1 {
            return Err(Rejection::OpCountMismatch { rid });
        }
        let consumed = *self.nondet_cursor.get(&rid).unwrap_or(&0);
        if consumed != self.reports.nondet.for_request(rid).len() {
            return Err(Rejection::NondetLeftover { rid });
        }
        Ok(())
    }

    fn reg_prev_index(&mut self, i: usize) -> &Vec<Option<usize>> {
        let op_logs = self.op_logs;
        self.reg_prev_write.entry(i).or_insert_with(|| {
            let log = op_logs.log(i).expect("valid log index");
            let mut out = Vec::with_capacity(log.len());
            let mut last: Option<usize> = None;
            for (j, entry) in log.entries().iter().enumerate() {
                out.push(last);
                if entry.op_type() == OpType::RegisterWrite {
                    last = Some(j);
                }
            }
            out
        })
    }

    /// Statistics accumulated so far (dedup hits, op counts, ...).
    pub fn stats(&self) -> &AuditStats {
        &self.stats
    }

    /// Resets per-request progress for `rids` so they can be re-executed
    /// from scratch. Used by the grouped executor when a group diverges
    /// and falls back to per-request scalar re-execution (acc-PHP's
    /// retry, §4.3): checks are deterministic and side-effect-free on
    /// the audit state, so a retry re-runs them identically.
    pub fn reset_requests(&mut self, rids: &[RequestId]) {
        for rid in rids {
            self.opnum_next.remove(rid);
            self.in_txn.remove(rid);
            self.nondet_cursor.remove(rid);
        }
    }
}

/// Runs the full audit (`SSCO_AUDIT2`, Fig. 12).
///
/// Returns statistics on acceptance; rejects with a precise reason
/// otherwise.
pub fn audit(
    trace: &Trace,
    reports: &Reports,
    executor: &mut dyn GroupExecutor,
    config: &AuditConfig,
) -> Result<AuditOutcome, Rejection> {
    let mut phases = PhaseTimer::new();

    // Phase 1: balanced-trace validation (§3).
    let balanced = phases
        .time("Balance", || trace.ensure_balanced())
        .map_err(Rejection::Unbalanced)?;

    // Phase 2: ProcessOpReports (Fig. 5) + nondeterminism sanity (§4.6).
    let (_graph, opmap) = phases.time("ProcOpRep", || process_op_reports(&balanced, reports))?;
    reports.nondet.validate().map_err(Rejection::NondetInvalid)?;

    // Phase 3: versioned redo for every log containing DbOps (§4.5).
    let versioned_dbs = phases.time("DB redo", || build_versioned_dbs(reports, config))?;

    // Phase 4: grouped re-execution with simulate-and-check.
    let mut ctx = AuditContext::new(reports, opmap, config, versioned_dbs);
    let mut produced: HashMap<RequestId, HttpResponse> = HashMap::new();
    let mut executed: HashSet<RequestId> = HashSet::new();
    let reexec_t0 = Instant::now();
    for (tag, rids) in &reports.groupings {
        let mut group_requests = Vec::new();
        let mut seen_in_group = HashSet::new();
        for rid in rids {
            if executed.contains(rid) || !seen_in_group.insert(*rid) {
                // Duplicate groupings are filtered; re-execution is
                // idempotent so this is an optimization, not a check (§3.1).
                continue;
            }
            if !balanced.contains(*rid) {
                return Err(Rejection::GroupUnknownRequest { rid: *rid });
            }
            group_requests.push((*rid, balanced.request(*rid).clone()));
        }
        if group_requests.is_empty() {
            continue;
        }
        let outputs = executor.execute_group(&group_requests, &mut ctx)?;
        let group_set: HashSet<RequestId> = group_requests.iter().map(|(r, _)| *r).collect();
        for (rid, resp) in outputs {
            if !group_set.contains(&rid) {
                return Err(Rejection::ExecutorProtocol(format!(
                    "output for {rid} not in group {tag}"
                )));
            }
            if produced.insert(rid, resp).is_some() {
                return Err(Rejection::ExecutorProtocol(format!(
                    "duplicate output for {rid}"
                )));
            }
        }
        for (rid, _) in &group_requests {
            ctx.finish_request(*rid)?;
            executed.insert(*rid);
        }
        ctx.stats.groups_executed += 1;
        ctx.stats.requests_reexecuted += group_requests.len();
    }
    let reexec_total = reexec_t0.elapsed();
    phases.add("DB query", ctx.db_query_time);
    phases.add("ReExec", reexec_total.saturating_sub(ctx.db_query_time));

    // Phase 5: produced outputs must be exactly the responses in the
    // trace (Fig. 12 line 55).
    let output_check = Instant::now();
    for rid in balanced.request_ids() {
        match produced.get(&rid) {
            None => return Err(Rejection::MissingOutput { rid }),
            Some(resp) => {
                if resp != balanced.response(rid) {
                    return Err(Rejection::OutputMismatch { rid });
                }
            }
        }
    }
    phases.add("Output", output_check.elapsed());

    let mut stats = ctx.stats;
    stats.phases = phases;
    for vdb in ctx.versioned_dbs.values() {
        let s = vdb.stats();
        stats.redo.transactions += s.transactions;
        stats.redo.queries += s.queries;
        stats.redo.versions_created += s.versions_created;
        stats.redo.aborted += s.aborted;
        stats.db_versioned_bytes += vdb.estimated_bytes();
        stats.db_final_bytes += vdb.latest_snapshot().estimated_bytes();
    }
    Ok(AuditOutcome { stats })
}

/// Builds a [`VersionedDb`] for every log that contains database
/// operations, replaying each `DbOp` at its log position.
fn build_versioned_dbs(
    reports: &Reports,
    config: &AuditConfig,
) -> Result<HashMap<usize, VersionedDb>, Rejection> {
    let mut out = HashMap::new();
    for (i, name, log) in reports.op_logs.iter() {
        let has_db_ops = log
            .entries()
            .iter()
            .any(|e| e.op_type() == OpType::DbOp);
        if !has_db_ops {
            continue;
        }
        let empty = Database::new();
        let initial = config
            .initial_dbs
            .get(name.as_str())
            .unwrap_or(&empty);
        let mut vdb = VersionedDb::from_snapshot(initial);
        for (seq, entry) in log.iter() {
            if let OpContents::DbOp {
                queries,
                succeeded,
                write_results,
            } = &entry.contents
            {
                let logged: Vec<Option<orochi_sqldb::engine::WriteOutcome>> = write_results
                    .iter()
                    .map(|w| {
                        w.map(|w| orochi_sqldb::engine::WriteOutcome {
                            affected: w.affected,
                            last_insert_id: w.last_insert_id,
                        })
                    })
                    .collect();
                vdb.redo_transaction(seq.0, queries, *succeeded, &logged)?;
            }
        }
        out.insert(i, vdb);
    }
    Ok(out)
}
