//! The HotCRP-shaped workload (§5: 269 papers, 58 reviewers, 820
//! reviews of average length 3,625 characters; one author submits one
//! paper with 1–20 updates; each paper gets 3 reviews, each submitted
//! twice; each reviewer views 100 pages — ~52,000 requests).

use crate::skew::Skew;
use crate::zipf::Zipf;
use crate::Workload;
use orochi_trace::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// HotCRP workload parameters; defaults are the paper's.
#[derive(Debug, Clone)]
pub struct Params {
    /// Submitted papers (paper: 269).
    pub papers: usize,
    /// Reviewers (paper: 58).
    pub reviewers: usize,
    /// Reviews per paper (paper: 3).
    pub reviews_per_paper: usize,
    /// Versions submitted per review (paper: 2).
    pub review_versions: usize,
    /// Page views per reviewer (paper: 100).
    pub views_per_reviewer: usize,
    /// Maximum updates per paper, uniform 1..=max (paper: 20).
    pub max_updates: usize,
    /// Page views per author. The paper's itemized parameters sum to
    /// ~11k requests against a stated total of 52k; we attribute the
    /// residual volume to paper-page views by authors (documented in
    /// DESIGN.md).
    pub views_per_author: usize,
    /// Average review body length in characters (paper: 3,625).
    pub review_len: usize,
    /// Zipf exponent over which papers reviewers browse (0 = uniform,
    /// the paper's implicit shape).
    pub view_theta: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            papers: 269,
            reviewers: 58,
            reviews_per_paper: 3,
            review_versions: 2,
            views_per_reviewer: 100,
            max_updates: 20,
            views_per_author: 155,
            review_len: 3_625,
            view_theta: 0.0,
        }
    }
}

impl Params {
    /// Scales the volume knobs while keeping the population shape.
    pub fn scaled(f: f64) -> Self {
        let base = Params::default();
        Params {
            papers: ((base.papers as f64 * f) as usize).max(5),
            reviewers: ((base.reviewers as f64 * f) as usize).max(3),
            views_per_reviewer: ((base.views_per_reviewer as f64 * f.sqrt()) as usize).max(5),
            max_updates: ((base.max_updates as f64 * f.sqrt()) as usize).max(2),
            views_per_author: ((base.views_per_author as f64 * f.sqrt()) as usize).max(3),
            review_len: ((base.review_len as f64 * f.max(0.05)) as usize).max(80),
            ..base
        }
    }

    /// Applies the shared skew knob: `theta` skews which papers
    /// reviewers browse, the session-length multiplier stretches each
    /// reviewer's and author's browsing session.
    pub fn with_skew(mut self, skew: &Skew) -> Self {
        self.view_theta = skew.theta_or(self.view_theta);
        self.views_per_reviewer = skew.scale_session(self.views_per_reviewer);
        self.views_per_author = skew.scale_session(self.views_per_author);
        self
    }
}

fn review_body(paper: usize, reviewer: usize, version: usize, len: usize) -> String {
    let seed =
        format!("Review v{version} of paper {paper} by reviewer {reviewer}: the approach is ");
    let filler = "sound and the evaluation is thorough. ";
    let mut body = seed;
    while body.len() < len {
        body.push_str(filler);
    }
    body.truncate(len);
    body
}

/// Generates the HotCRP workload.
pub fn generate(params: &Params, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut setup = Vec::new();
    // Authors (one per paper) and reviewers log in.
    for p in 0..params.papers {
        let who = format!("author{p}");
        setup
            .push(HttpRequest::post("/login.php", &[], &[("who", &who)]).with_cookie("sess", &who));
    }
    for r in 0..params.reviewers {
        let who = format!("rev{r}");
        setup
            .push(HttpRequest::post("/login.php", &[], &[("who", &who)]).with_cookie("sess", &who));
    }
    let mut requests = Vec::new();
    // Submissions: one valid paper per author, then 1..=max updates.
    for p in 0..params.papers {
        let who = format!("author{p}");
        let title = format!("Paper {p}");
        let updates = rng.random_range(1..=params.max_updates.max(1));
        for u in 0..=updates {
            let abstract_text =
                format!("Abstract (take {u}) of {title}: we audit untrusted servers efficiently.");
            requests.push(
                HttpRequest::post(
                    "/submit.php",
                    &[],
                    &[("title", &title), ("abstract", &abstract_text)],
                )
                .with_cookie("sess", &who),
            );
        }
    }
    // Reviews: round-robin reviewers over papers, two versions each.
    let mut review_no = 0usize;
    for p in 0..params.papers {
        for k in 0..params.reviews_per_paper {
            let reviewer = (p * params.reviews_per_paper + k) % params.reviewers;
            let who = format!("rev{reviewer}");
            let paper_id = (p + 1).to_string();
            for v in 1..=params.review_versions {
                let score = 1 + ((p + k + v) % 5);
                let body = review_body(p, reviewer, v, params.review_len);
                requests.push(
                    HttpRequest::post(
                        "/review.php",
                        &[],
                        &[
                            ("id", &paper_id),
                            ("score", &score.to_string()),
                            ("body", &body),
                        ],
                    )
                    .with_cookie("sess", &who),
                );
            }
            review_no += 1;
        }
    }
    let _ = review_no;
    // Page views: authors watch their own paper's page.
    for p in 0..params.papers {
        let who = format!("author{p}");
        let paper_id = (p + 1).to_string();
        for v in 0..params.views_per_author {
            if v % 20 == 0 {
                requests.push(HttpRequest::get("/list.php", &[]).with_cookie("sess", &who));
            } else {
                requests.push(
                    HttpRequest::get("/paper.php", &[("id", &paper_id)]).with_cookie("sess", &who),
                );
            }
        }
    }
    // Page views: each reviewer browses papers and the list. With
    // `view_theta` 0 the Zipf draw is uniform-ish (the paper's implicit
    // shape); the skew knob concentrates attention on hot papers.
    let view_zipf = Zipf::new(params.papers, params.view_theta);
    for r in 0..params.reviewers {
        let who = format!("rev{r}");
        for v in 0..params.views_per_reviewer {
            if v % 10 == 0 {
                requests.push(HttpRequest::get("/list.php", &[]).with_cookie("sess", &who));
            } else {
                let paper = view_zipf.sample(&mut rng);
                requests.push(
                    HttpRequest::get("/paper.php", &[("id", &paper.to_string())])
                        .with_cookie("sess", &who),
                );
            }
        }
    }
    Workload { setup, requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_workload_matches_paper_scale() {
        let w = generate(&Params::default(), 1);
        // ~269 submissions × avg 11.5 updates + 269×3×2 reviews + 58×100
        // views ≈ 52k, the paper's figure.
        let total = w.len();
        assert!(
            (35_000..70_000).contains(&total),
            "total {total} out of expected envelope"
        );
    }

    #[test]
    fn reviews_have_requested_length() {
        let p = Params::scaled(0.05);
        let w = generate(&p, 2);
        let body_len = w
            .requests
            .iter()
            .filter(|r| r.path == "/review.php")
            .map(|r| {
                r.post
                    .iter()
                    .find(|(k, _)| k == "body")
                    .map(|(_, v)| v.len())
                    .unwrap_or(0)
            })
            .next()
            .unwrap();
        assert_eq!(body_len, p.review_len);
    }

    #[test]
    fn every_paper_gets_reviews() {
        let p = Params::scaled(0.05);
        let w = generate(&p, 3);
        let review_count = w
            .requests
            .iter()
            .filter(|r| r.path == "/review.php")
            .count();
        assert_eq!(
            review_count,
            p.papers * p.reviews_per_paper * p.review_versions
        );
    }
}
