//! The storefront workload: a session state machine over Zipf-skewed
//! products with a Poisson open-loop session mix.
//!
//! Unlike the three paper workloads (flat request mixes), the shop
//! generator synthesizes *sessions*: each customer logs in (setup),
//! then browses a geometric number of Zipf-popular products, adds some
//! to the cart, and finally checks out or abandons. Sessions arrive as
//! a Poisson process and think between steps, and the per-session
//! streams are merged in virtual-arrival order — so concurrent sessions
//! interleave on the shared inventory counters and fragment cache
//! exactly where the check-then-act KV races live. A thin admin stream
//! restocks hot products, exercising cache invalidation.
//!
//! Every request in the measured mix opens a session register and most
//! touch the KV store, which is the point: this workload front-loads
//! the register and versioned-KV audit paths the SQL-dominated
//! workloads underuse.

use crate::skew::Skew;
use crate::zipf::Zipf;
use crate::Workload;
use orochi_trace::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shop workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Catalog size.
    pub products: usize,
    /// Customer sessions in the measured window (one distinct session
    /// cookie each).
    pub sessions: usize,
    /// Zipf exponent over product popularity.
    pub zipf_theta: f64,
    /// Mean browse steps per session (geometric).
    pub mean_session_len: f64,
    /// Probability a logged-in browse step also adds to the cart.
    pub add_fraction: f64,
    /// Probability a non-empty cart checks out (vs abandons).
    pub checkout_fraction: f64,
    /// Fraction of sessions that browse anonymously (no cookie, no
    /// register traffic) — kept small; the shop is session-heavy.
    pub guest_fraction: f64,
    /// One admin restock request per this many sessions.
    pub restock_every: usize,
    /// Session arrivals per (virtual) second, for the interleave order.
    pub arrival_rate: f64,
    /// Think steps per (virtual) second within a session.
    pub think_rate: f64,
    /// Initial stock per product.
    pub initial_stock: i64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            products: 120,
            sessions: 3_000,
            zipf_theta: 0.95,
            mean_session_len: 4.0,
            add_fraction: 0.5,
            checkout_fraction: 0.35,
            guest_fraction: 0.2,
            restock_every: 25,
            arrival_rate: 40.0,
            think_rate: 2.0,
            initial_stock: 1_000,
        }
    }
}

impl Params {
    /// Default parameters with the session count scaled by `f` (catalog
    /// kept, like the other workloads' downsampling).
    pub fn scaled(f: f64) -> Self {
        let base = Params::default();
        Params {
            sessions: ((base.sessions as f64 * f) as usize).max(40),
            ..base
        }
    }

    /// Applies the shared skew knob: `theta` overrides the product Zipf
    /// exponent, the session-length multiplier scales the mean browse
    /// count.
    pub fn with_skew(mut self, skew: &Skew) -> Self {
        self.zipf_theta = skew.theta_or(self.zipf_theta);
        if let Some(f) = skew.session_len {
            self.mean_session_len = (self.mean_session_len * f).max(1.0);
        }
        self
    }
}

/// SQL seeding the catalog and inventory (applied on both the server
/// and the verifier sides). Prices follow `8 + 2*id` so tests can
/// predict cart totals.
pub fn seed_sql(params: &Params) -> Vec<String> {
    let mut out = Vec::new();
    for p in 1..=params.products {
        out.push(format!(
            "INSERT INTO products (name, price) VALUES ('Product {p}', {})",
            8 + 2 * p
        ));
        out.push(format!(
            "INSERT INTO inventory (product_id, stock) VALUES ({p}, {})",
            params.initial_stock
        ));
    }
    out
}

/// One session's requests, in order.
fn session_requests(
    params: &Params,
    cookie: Option<&str>,
    zipf: &Zipf,
    rng: &mut StdRng,
) -> Vec<HttpRequest> {
    let mut out = Vec::new();
    let mut cart_items = 0usize;
    // Geometric session length with the configured mean, at least one
    // browse step.
    let p_stop = 1.0 / params.mean_session_len.max(1.0);
    loop {
        let product = zipf.sample(rng).to_string();
        let browse = HttpRequest::get("/product.php", &[("id", &product)]);
        match cookie {
            Some(c) => {
                out.push(browse.with_cookie("sess", c));
                if rng.random::<f64>() < params.add_fraction {
                    let qty = rng.random_range(1..=3u32).to_string();
                    out.push(
                        HttpRequest::post("/cart.php", &[], &[("id", &product), ("qty", &qty)])
                            .with_cookie("sess", c),
                    );
                    cart_items += 1;
                }
            }
            None => out.push(browse),
        }
        if rng.random::<f64>() < p_stop {
            break;
        }
    }
    if let Some(c) = cookie {
        if cart_items > 0 && rng.random::<f64>() < params.checkout_fraction {
            out.push(HttpRequest::post("/checkout.php", &[], &[]).with_cookie("sess", c));
        } else {
            out.push(HttpRequest::post("/logout.php", &[], &[]).with_cookie("sess", c));
        }
    }
    out
}

/// Generates the shop workload. Setup logs the admin and every
/// registered customer in (sequentially, like the other workloads);
/// the measured mix is the Poisson-interleaved session stream.
pub fn generate(params: &Params, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(params.products, params.zipf_theta);

    let mut setup = vec![
        HttpRequest::post("/login.php", &[], &[("user", "admin")]).with_cookie("sess", "admin")
    ];
    // Decide each session's identity up front so setup can log in
    // exactly the customers that will shop.
    let logged_in: Vec<bool> = (0..params.sessions)
        .map(|_| rng.random::<f64>() >= params.guest_fraction)
        .collect();
    for (s, yes) in logged_in.iter().enumerate() {
        if *yes {
            let user = format!("cust{s}");
            setup.push(
                HttpRequest::post("/login.php", &[], &[("user", &user)])
                    .with_cookie("sess", &format!("c{s}")),
            );
        }
    }

    // Build per-session request streams stamped with virtual times:
    // session starts are a Poisson process, think gaps are exponential.
    let mut timed: Vec<(f64, usize, HttpRequest)> = Vec::new();
    let mut start = 0.0f64;
    for (s, yes) in logged_in.iter().enumerate() {
        let u: f64 = rng.random();
        start += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / params.arrival_rate;
        let cookie = format!("c{s}");
        let reqs = session_requests(params, yes.then_some(cookie.as_str()), &zipf, &mut rng);
        let mut t = start;
        for req in reqs {
            let u: f64 = rng.random();
            t += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / params.think_rate;
            timed.push((t, timed.len(), req));
        }
        // A thin admin restock stream rides along, re-pricing a popular
        // product and invalidating its cached fragment.
        if params.restock_every > 0 && s % params.restock_every == params.restock_every - 1 {
            let product = zipf.sample(&mut rng).to_string();
            let stock = params.initial_stock.to_string();
            let price = rng.random_range(5..40u32).to_string();
            timed.push((
                start,
                timed.len(),
                HttpRequest::post(
                    "/restock.php",
                    &[],
                    &[("id", &product), ("stock", &stock), ("price", &price)],
                )
                .with_cookie("sess", "admin"),
            ));
        }
    }
    // Merge by virtual arrival; the insertion index breaks ties
    // deterministically. Per-session order is preserved because each
    // session's timestamps increase.
    timed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let requests = timed.into_iter().map(|(_, _, req)| req).collect();
    Workload { setup, requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = Params::scaled(0.02);
        let a = generate(&p, 5);
        let b = generate(&p, 5);
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.requests, b.requests);
        assert_ne!(generate(&p, 6).requests, a.requests);
    }

    #[test]
    fn sessions_keep_their_internal_order() {
        let w = generate(&Params::scaled(0.05), 3);
        // For every cookie, the terminal request (checkout or logout)
        // must come after all of that cookie's browses/adds.
        use std::collections::HashMap;
        let mut last_terminal: HashMap<&str, usize> = HashMap::new();
        let mut last_any: HashMap<&str, usize> = HashMap::new();
        for (i, r) in w.requests.iter().enumerate() {
            if let Some(c) = r.cookie("sess") {
                if c == "admin" {
                    continue;
                }
                last_any.insert(c, i);
                if r.path == "/checkout.php" || r.path == "/logout.php" {
                    last_terminal.insert(c, i);
                }
            }
        }
        assert!(!last_terminal.is_empty());
        for (c, t) in &last_terminal {
            assert_eq!(last_any[c], *t, "session {c}: terminal request is not last");
        }
    }

    #[test]
    fn popular_products_dominate() {
        let w = generate(&Params::scaled(0.25), 9);
        let mut head = 0usize;
        let mut total = 0usize;
        for r in &w.requests {
            if r.path != "/product.php" {
                continue;
            }
            total += 1;
            let id: usize = r.query_param("id").unwrap().parse().unwrap();
            if id <= 12 {
                head += 1;
            }
        }
        assert!(total > 0);
        assert!(
            head as f64 > total as f64 * 0.3,
            "Zipf head share {head}/{total}"
        );
    }

    #[test]
    fn most_sessions_are_registered() {
        let p = Params::scaled(0.25);
        let w = generate(&p, 4);
        let logins = w.setup.iter().filter(|r| r.path == "/login.php").count();
        // admin + roughly (1 - guest_fraction) of the sessions.
        let expect = 1.0 + p.sessions as f64 * (1.0 - p.guest_fraction);
        assert!(
            (logins as f64) > expect * 0.8 && (logins as f64) < expect * 1.2,
            "{logins} logins vs expected ~{expect}"
        );
    }

    #[test]
    fn skew_knob_moves_theta_and_session_length() {
        let skew = Skew {
            theta: Some(1.6),
            session_len: Some(3.0),
        };
        let p = Params::scaled(0.1).with_skew(&skew);
        assert_eq!(p.zipf_theta, 1.6);
        assert_eq!(p.mean_session_len, 12.0);
        let base = generate(&Params::scaled(0.1), 2);
        let long = generate(&p, 2);
        assert!(
            long.requests.len() > base.requests.len(),
            "longer sessions produce more requests ({} vs {})",
            long.requests.len(),
            base.requests.len()
        );
    }
}
