//! The shared workload-skew knob.
//!
//! Each generator used to hard-code its popularity skew (the wiki's
//! Zipf β, the forum's hot-topic concentration, the hotcrp reviewers'
//! uniform paper choice, the shop's product Zipf). This module threads
//! one knob through all four so experiments sweep the same parameter
//! space: a Zipf exponent `theta` for whatever each workload's "popular
//! thing" is, and a session-length multiplier for how many requests a
//! logged-in session issues before it ends.
//!
//! The knob comes from the `OROCHI_WORKLOAD_SKEW` environment variable
//! (`"theta"`, `"theta,session_len"`, or `",session_len"`) or from the
//! `--skew` / `--session-len` flags of the bench binaries, which set the
//! same variable. Unset fields leave the generator's default untouched,
//! so the paper's published parameters remain the defaults everywhere.

/// A parsed skew override. `None` fields keep the workload defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Skew {
    /// Zipf exponent over each workload's popularity axis (wiki pages,
    /// forum topics, hotcrp papers, shop products).
    pub theta: Option<f64>,
    /// Session-length multiplier: how many requests a logged-in session
    /// issues relative to the workload's default.
    pub session_len: Option<f64>,
}

impl Skew {
    /// Parses `"theta"`, `"theta,session_len"`, or `",session_len"`.
    ///
    /// # Examples
    ///
    /// ```
    /// use orochi_workload::skew::Skew;
    ///
    /// let s = Skew::parse("0.8,4").unwrap();
    /// assert_eq!(s.theta, Some(0.8));
    /// assert_eq!(s.session_len, Some(4.0));
    /// assert_eq!(Skew::parse(",2").unwrap().theta, None);
    /// ```
    pub fn parse(raw: &str) -> Result<Skew, String> {
        let raw = raw.trim();
        if raw.is_empty() {
            return Ok(Skew::default());
        }
        let mut parts = raw.splitn(2, ',');
        let theta_part = parts.next().unwrap_or("").trim();
        let len_part = parts.next().unwrap_or("").trim();
        let field = |label: &str, s: &str, min: f64| -> Result<Option<f64>, String> {
            if s.is_empty() {
                return Ok(None);
            }
            let v: f64 = s
                .parse()
                .map_err(|_| format!("{label} {s:?} is not a number"))?;
            if !v.is_finite() || v < min {
                return Err(format!("{label} {v} out of range (>= {min})"));
            }
            Ok(Some(v))
        };
        Ok(Skew {
            theta: field("skew theta", theta_part, 0.0)?,
            session_len: field("session length", len_part, 0.01)?,
        })
    }

    /// `theta`, defaulting to `base` when not overridden.
    pub fn theta_or(&self, base: f64) -> f64 {
        self.theta.unwrap_or(base)
    }

    /// `base` requests scaled by the session-length multiplier, never
    /// below one request.
    pub fn scale_session(&self, base: usize) -> usize {
        match self.session_len {
            Some(f) => ((base as f64 * f).round() as usize).max(1),
            None => base,
        }
    }
}

/// Reads the skew knob from `OROCHI_WORKLOAD_SKEW`.
///
/// # Panics
///
/// Panics on a malformed value — a silently ignored sweep parameter
/// would corrupt an experiment.
pub fn from_env() -> Skew {
    match std::env::var("OROCHI_WORKLOAD_SKEW") {
        Ok(raw) => {
            Skew::parse(&raw).unwrap_or_else(|e| panic!("OROCHI_WORKLOAD_SKEW invalid: {e}"))
        }
        Err(_) => Skew::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!(Skew::parse("").unwrap(), Skew::default());
        assert_eq!(
            Skew::parse("1.2").unwrap(),
            Skew {
                theta: Some(1.2),
                session_len: None
            }
        );
        assert_eq!(
            Skew::parse("0.53,3").unwrap(),
            Skew {
                theta: Some(0.53),
                session_len: Some(3.0)
            }
        );
        assert_eq!(
            Skew::parse(",2.5").unwrap(),
            Skew {
                theta: None,
                session_len: Some(2.5)
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Skew::parse("abc").is_err());
        assert!(Skew::parse("-1").is_err());
        assert!(Skew::parse("1,0").is_err());
        assert!(Skew::parse("nan").is_err());
    }

    #[test]
    fn defaults_pass_through() {
        let s = Skew::default();
        assert_eq!(s.theta_or(0.53), 0.53);
        assert_eq!(s.scale_session(7), 7);
        let s = Skew {
            theta: Some(1.1),
            session_len: Some(0.1),
        };
        assert_eq!(s.theta_or(0.53), 1.1);
        assert_eq!(s.scale_session(3), 1, "never below one request");
    }
}
