//! Zipf sampling for the wiki workload.
//!
//! The paper's MediaWiki workload is downsampled from a 2007 Wikipedia
//! trace "while retaining its Zipf distribution (β = 0.53)" (§5). This
//! sampler draws ranks `1..=n` with probability proportional to
//! `1 / rank^β` via a precomputed CDF and binary search.

use rand::Rng;

/// A Zipf(β) distribution over ranks `1..=n`.
///
/// # Examples
///
/// ```
/// use orochi_workload::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(200, 0.53);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=200).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `1..=n` with exponent `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, beta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(beta);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(50, 0.53);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = zipf.sample(&mut rng);
            assert!((1..=50).contains(&r));
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let zipf = Zipf::new(200, 0.53);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 201];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 1 must be sampled noticeably more often than rank 200.
        assert!(counts[1] > counts[200] * 5);
        // And the head (top 20 ranks) takes a disproportionate share.
        let head: usize = counts[1..=20].iter().sum();
        assert!(head as f64 > 100_000.0 * 0.15);
    }

    #[test]
    fn beta_zero_is_uniformish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 11];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / 100_000.0;
            assert!((share - 0.1).abs() < 0.02, "rank {rank} share {share}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
