//! The MediaWiki-shaped workload (§5: 20,000 requests to 200 pages,
//! Zipf β = 0.53, read-dominated).

use crate::skew::Skew;
use crate::zipf::Zipf;
use crate::Workload;
use orochi_trace::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wiki workload parameters; defaults are the paper's.
#[derive(Debug, Clone)]
pub struct Params {
    /// Distinct pages (the paper downsamples to 200).
    pub pages: usize,
    /// View requests in the measured window (paper: 20,000).
    pub view_requests: usize,
    /// Zipf exponent over page popularity (paper: β = 0.53).
    pub zipf_beta: f64,
    /// Fraction of measured requests that are edits.
    pub edit_fraction: f64,
    /// Editors (each logs in during setup).
    pub editors: usize,
    /// Fraction of views carrying a session cookie (logged-in readers).
    pub logged_in_fraction: f64,
    /// Consecutive views a logged-in reader issues once they appear
    /// (their "session"); 1 reproduces the paper's independent draws.
    pub session_len: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            pages: 200,
            view_requests: 20_000,
            zipf_beta: 0.53,
            edit_fraction: 0.02,
            editors: 10,
            logged_in_fraction: 0.1,
            session_len: 1,
        }
    }
}

impl Params {
    /// The paper's parameters with the request count scaled by `f`
    /// (page count kept, so grouping opportunities shrink — pessimistic
    /// for the verifier, like the paper's downsampling note).
    pub fn scaled(f: f64) -> Self {
        let base = Params::default();
        Params {
            view_requests: ((base.view_requests as f64 * f) as usize).max(50),
            ..base
        }
    }

    /// Applies the shared skew knob: `theta` overrides the page Zipf β,
    /// the session-length multiplier stretches logged-in reading runs.
    pub fn with_skew(mut self, skew: &Skew) -> Self {
        self.zipf_beta = skew.theta_or(self.zipf_beta);
        self.session_len = skew.scale_session(self.session_len);
        self
    }
}

fn page_title(i: usize) -> String {
    format!("Page_{i}")
}

/// Generates the wiki workload.
pub fn generate(params: &Params, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(params.pages, params.zipf_beta);
    let mut setup = Vec::new();
    // Editors log in, then create every page.
    for e in 0..params.editors {
        let user = format!("editor{e}");
        setup.push(
            HttpRequest::post("/login.php", &[], &[("user", &user)]).with_cookie("sess", &user),
        );
    }
    for p in 0..params.pages {
        let editor = format!("editor{}", p % params.editors.max(1));
        let title = page_title(p);
        let body = format!(
            "This is revision 1 of {title}.\nIt has body text of moderate length \
             so rendered pages overlap across requests."
        );
        setup.push(
            HttpRequest::post("/edit.php", &[], &[("title", &title), ("body", &body)])
                .with_cookie("sess", &editor),
        );
    }
    // Measured mix: Zipf-distributed views with a small edit stream.
    // Logged-in readers read `session_len` consecutive pages once they
    // appear. By renewal-reward the logged-in share is p·L/(p·L+1−p),
    // so starting runs with p = f/(L − f·(L−1)) keeps the share at the
    // paper's `f` exactly, for any run length.
    let mut requests = Vec::with_capacity(params.view_requests);
    let session_len = params.session_len.max(1);
    let run_start_p = {
        let f = params.logged_in_fraction;
        let l = session_len as f64;
        f / (l - f * (l - 1.0))
    };
    let mut run: Option<(String, usize)> = None;
    for i in 0..params.view_requests {
        let roll: f64 = rng.random();
        if roll < params.edit_fraction {
            let p = zipf.sample(&mut rng) - 1;
            let editor = format!("editor{}", rng.random_range(0..params.editors.max(1)));
            let title = page_title(p);
            let body = format!("Edited body {i} of {title}.\nStill similar in shape.");
            requests.push(
                HttpRequest::post("/edit.php", &[], &[("title", &title), ("body", &body)])
                    .with_cookie("sess", &editor),
            );
        } else {
            let p = zipf.sample(&mut rng) - 1;
            let title = page_title(p);
            let req = HttpRequest::get("/wiki.php", &[("title", &title)]);
            if let Some((editor, left)) = run.take() {
                requests.push(req.with_cookie("sess", &editor));
                if left > 1 {
                    run = Some((editor, left - 1));
                }
            } else if rng.random::<f64>() < run_start_p {
                let editor = format!("editor{}", rng.random_range(0..params.editors.max(1)));
                requests.push(req.with_cookie("sess", &editor));
                if session_len > 1 {
                    run = Some((editor, session_len - 1));
                }
            } else {
                requests.push(req);
            }
        }
    }
    Workload { setup, requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_creates_every_page() {
        let w = generate(&Params::scaled(0.01), 1);
        let edits = w.setup.iter().filter(|r| r.path == "/edit.php").count();
        assert_eq!(edits, Params::default().pages);
    }

    #[test]
    fn measured_mix_is_read_dominated() {
        let w = generate(&Params::scaled(0.1), 1);
        let views = w.requests.iter().filter(|r| r.path == "/wiki.php").count();
        assert!(views as f64 > w.requests.len() as f64 * 0.9);
    }

    #[test]
    fn popular_pages_dominate_views() {
        let w = generate(&Params::scaled(0.25), 5);
        let mut head = 0usize;
        let mut total = 0usize;
        for r in &w.requests {
            if r.path != "/wiki.php" {
                continue;
            }
            total += 1;
            let title = r.query_param("title").unwrap();
            let idx: usize = title.trim_start_matches("Page_").parse().unwrap();
            if idx < 20 {
                head += 1;
            }
        }
        assert!(head as f64 > total as f64 * 0.15);
    }
}
