//! The phpBB-shaped workload (§5: 63 posts, 83 users, 1:40
//! registered:guest view ratio, 30,000 requests).
//!
//! Our forum app has no admin endpoint for creating topics, so the setup
//! phase creates one topic per original post through replies from a
//! "seed" user — the shapes that matter (reads of a hot topic, counter
//! updates from registered viewers, reply transactions) are preserved.

use crate::skew::Skew;
use crate::zipf::Zipf;
use crate::Workload;
use orochi_trace::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forum workload parameters; defaults are the paper's.
#[derive(Debug, Clone)]
pub struct Params {
    /// Posts in the chosen topic area (paper: 63).
    pub posts: usize,
    /// Registered users (paper: 83, the distinct posters).
    pub users: usize,
    /// Measured requests (paper: 30,000).
    pub requests: usize,
    /// Guests per registered viewer (paper: 1:40).
    pub guest_ratio: u32,
    /// Fraction of measured requests that are replies.
    pub reply_fraction: f64,
    /// Zipf exponent over topic popularity ("tens to thousands of views
    /// per post" — previously a hardcoded cubed-uniform draw).
    pub topic_theta: f64,
    /// Consecutive topic views a registered viewer issues once they
    /// appear; 1 reproduces independent draws.
    pub session_len: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            posts: 63,
            users: 83,
            requests: 30_000,
            guest_ratio: 40,
            reply_fraction: 0.01,
            topic_theta: 1.3,
            session_len: 1,
        }
    }
}

impl Params {
    /// The paper's parameters with the measured request count scaled.
    pub fn scaled(f: f64) -> Self {
        let base = Params::default();
        Params {
            requests: ((base.requests as f64 * f) as usize).max(50),
            ..base
        }
    }

    /// Applies the shared skew knob: `theta` overrides the topic Zipf
    /// exponent, the session-length multiplier stretches registered
    /// viewers' reading runs.
    pub fn with_skew(mut self, skew: &Skew) -> Self {
        self.topic_theta = skew.theta_or(self.topic_theta);
        self.session_len = skew.scale_session(self.session_len);
        self
    }
}

/// Generates the forum workload. Topics are seeded via the forum's own
/// database by the harness (see `seed_sql`); setup logs users in.
pub fn generate(params: &Params, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(params.posts, params.topic_theta);
    let mut setup = Vec::new();
    for u in 0..params.users {
        let name = format!("user{u}");
        setup.push(
            HttpRequest::post("/login.php", &[], &[("user", &name)]).with_cookie("sess", &name),
        );
    }
    let mut requests = Vec::with_capacity(params.requests);
    // Registered viewers read `session_len` consecutive pages once they
    // appear; the appearance rate shrinks accordingly so the overall
    // registered:guest ratio stays at the paper's 1:40.
    let mut run: Option<(String, usize)> = None;
    for i in 0..params.requests {
        let roll: f64 = rng.random();
        if roll < params.reply_fraction {
            let user = format!("user{}", rng.random_range(0..params.users));
            let topic = rng.random_range(1..=params.posts);
            let body = format!("reply {i} in topic {topic}\nagreeing with the above");
            requests.push(
                HttpRequest::post(
                    "/reply.php",
                    &[],
                    &[("id", &topic.to_string()), ("body", &body)],
                )
                .with_cookie("sess", &user),
            );
        } else if roll < params.reply_fraction + 0.1 {
            // Topic index views.
            let req = HttpRequest::get("/forum.php", &[]);
            requests.push(maybe_logged_in(req, params, &mut rng, &mut run));
        } else {
            // Topic views: hot topics get most of the traffic
            // ("tens to thousands of views per post").
            let topic = zipf.sample(&mut rng);
            let req = HttpRequest::get("/topic.php", &[("id", &topic.to_string())]);
            requests.push(maybe_logged_in(req, params, &mut rng, &mut run));
        }
    }
    Workload { setup, requests }
}

fn maybe_logged_in(
    req: HttpRequest,
    params: &Params,
    rng: &mut StdRng,
    run: &mut Option<(String, usize)>,
) -> HttpRequest {
    let session_len = params.session_len.max(1);
    if let Some((user, left)) = run.take() {
        let req = req.with_cookie("sess", &user);
        if left > 1 {
            *run = Some((user, left - 1));
        }
        return req;
    }
    // 1 registered viewer per `guest_ratio` guests, appearance rate
    // divided by the run length they will read (u64: the knob accepts
    // session lengths big enough to overflow the u32 product).
    if rng.random_range(0..=params.guest_ratio as u64 * session_len as u64) == 0 {
        let user = format!("user{}", rng.random_range(0..params.users));
        if session_len > 1 {
            *run = Some((user.clone(), session_len - 1));
        }
        req.with_cookie("sess", &user)
    } else {
        req
    }
}

/// SQL statements that seed the topics and original posts (run against
/// the initial database before serving, on both the server and the
/// verifier sides).
pub fn seed_sql(params: &Params) -> Vec<String> {
    let mut out = Vec::new();
    for t in 1..=params.posts {
        out.push(format!(
            "INSERT INTO topics (title, views, replies) VALUES ('Topic {t}', 0, 0)"
        ));
        out.push(format!(
            "INSERT INTO posts (topic_id, author, body, ts) VALUES \
             ({t}, 'user{}', 'original post of topic {t}', 1000)",
            t % Params::default().users
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_ratio_approximately_held() {
        let w = generate(&Params::scaled(0.5), 1);
        let mut logged_in = 0usize;
        let mut guests = 0usize;
        for r in &w.requests {
            if r.path == "/topic.php" || r.path == "/forum.php" {
                if r.cookie("sess").is_some() {
                    logged_in += 1;
                } else {
                    guests += 1;
                }
            }
        }
        let ratio = guests as f64 / logged_in.max(1) as f64;
        assert!(
            (20.0..=80.0).contains(&ratio),
            "guest:registered ratio {ratio}"
        );
    }

    #[test]
    fn seed_sql_covers_every_topic() {
        let sql = seed_sql(&Params::default());
        assert_eq!(sql.len(), 63 * 2);
    }

    #[test]
    fn replies_come_from_registered_users() {
        let w = generate(&Params::scaled(1.0), 2);
        for r in &w.requests {
            if r.path == "/reply.php" {
                assert!(r.cookie("sess").is_some());
            }
        }
    }
}
