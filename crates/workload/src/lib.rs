//! Workload generators with the paper's published parameters (§5).
//!
//! The original traces are unavailable (the 2007 Wikipedia trace, the
//! CentOS forum scrape, the SIGCOMM'09 statistics), so these generators
//! reproduce the *distributions* the paper reports:
//!
//! * [`wiki`] — 20,000 requests over 200 pages with a Zipf distribution
//!   (β = 0.53), read-dominated with a small edit mix.
//! * [`forum`] — 63 posts in one popular topic area, 83 registered
//!   users, a 1:40 registered:guest view ratio, 30,000 requests.
//! * [`hotcrp`] — 269 papers, 58 reviewers, 820 reviews, 1–20 paper
//!   updates per author, two review versions, 100 page views per
//!   reviewer (~52,000 requests).
//! * [`shop`] — beyond the paper: a session-heavy storefront (Zipf
//!   products, Poisson-interleaved browse/add/checkout/abandon
//!   sessions) that front-loads the register and KV audit paths.
//!
//! All four share the [`skew`] knob (`OROCHI_WORKLOAD_SKEW`): one Zipf
//! `theta` over each workload's popularity axis plus a session-length
//! multiplier, so experiments sweep the same parameter space.
//!
//! Each generator produces a `Vec<HttpRequest>` the driver replays; all
//! sampling is seeded, so workloads are reproducible. The `scale`
//! parameter shrinks request counts for CI-sized runs
//! (`OROCHI_FULL=1` in the harness selects scale 1.0).

pub mod forum;
pub mod hotcrp;
pub mod mixed;
pub mod poisson;
pub mod shop;
pub mod skew;
pub mod wiki;
pub mod zipf;

pub use poisson::poisson_arrivals;
pub use skew::Skew;
pub use zipf::Zipf;

use orochi_trace::HttpRequest;

/// A generated workload: setup requests (run first, sequentially) and
/// the measured request body.
pub struct Workload {
    /// Setup phase: seeds application data through the application's own
    /// endpoints (runs before the audited window in real deployments;
    /// we keep it in the trace — the audit covers it too).
    pub setup: Vec<HttpRequest>,
    /// The measured request mix, in arrival order.
    pub requests: Vec<HttpRequest>,
}

impl Workload {
    /// All requests in order.
    pub fn all(self) -> Vec<HttpRequest> {
        let mut out = self.setup;
        out.extend(self.requests);
        out
    }

    /// Total request count.
    pub fn len(&self) -> usize {
        self.setup.len() + self.requests.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = wiki::generate(&wiki::Params::scaled(0.02), 1);
        let b = wiki::generate(&wiki::Params::scaled(0.02), 1);
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.requests, b.requests);
        let c = wiki::generate(&wiki::Params::scaled(0.02), 2);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn paper_parameters_are_default() {
        let w = wiki::Params::default();
        assert_eq!(w.pages, 200);
        assert_eq!(w.view_requests, 20_000);
        let f = forum::Params::default();
        assert_eq!(f.users, 83);
        assert_eq!(f.posts, 63);
        assert_eq!(f.requests, 30_000);
        let h = hotcrp::Params::default();
        assert_eq!(h.papers, 269);
        assert_eq!(h.reviewers, 58);
    }

    #[test]
    fn skew_knob_reaches_all_four_workloads() {
        let skew = Skew {
            theta: Some(1.4),
            session_len: Some(2.0),
        };
        assert_eq!(wiki::Params::default().with_skew(&skew).zipf_beta, 1.4);
        assert_eq!(wiki::Params::default().with_skew(&skew).session_len, 2);
        assert_eq!(forum::Params::default().with_skew(&skew).topic_theta, 1.4);
        assert_eq!(forum::Params::default().with_skew(&skew).session_len, 2);
        let h = hotcrp::Params::default().with_skew(&skew);
        assert_eq!(h.view_theta, 1.4);
        assert_eq!(h.views_per_reviewer, 200);
        let s = shop::Params::default().with_skew(&skew);
        assert_eq!(s.zipf_theta, 1.4);
        assert_eq!(s.mean_session_len, 8.0);
        // The default knob is a no-op everywhere.
        let noop = Skew::default();
        assert_eq!(wiki::Params::default().with_skew(&noop).zipf_beta, 0.53);
        assert_eq!(
            hotcrp::Params::default()
                .with_skew(&noop)
                .views_per_reviewer,
            100
        );
    }

    #[test]
    fn scaled_workloads_shrink() {
        let small = wiki::generate(&wiki::Params::scaled(0.01), 3);
        let large = wiki::generate(&wiki::Params::scaled(0.05), 3);
        assert!(small.requests.len() < large.requests.len());
        assert!(!small.is_empty());
    }
}
