//! The verifier's group executor: grouped SIMD-on-demand re-execution
//! with a scalar per-request fallback.
//!
//! Grouped execution is purely an accelerator: every correctness check
//! (`CheckOp`, op counts, output comparison) is enforced per request by
//! the [`AuditContext`]. When a group diverges — hostile grouping, or a
//! per-lane error the superposed execution cannot express — the executor
//! resets the affected requests and re-executes each one on the scalar
//! VM through a checking backend, mirroring acc-PHP's "re-executing the
//! requests separately in sequence" escape hatch (§4.3). This is
//! strictly more complete than Fig. 12's REJECT-on-divergence and
//! equally sound.
//!
//! The executor also collects the per-group `(n_c, α_c, ℓ_c)` triples of
//! Fig. 11 (group size, univalent-instruction proportion, instruction
//! count).

use crate::groupvm::{self, GroupOutcome, GroupRunError};
use orochi_common::ids::RequestId;
use orochi_core::audit::{AuditContext, Rejection};
use orochi_core::exec::{DbQueryResult, DbTxnHandle, GroupExecutor, SimResult};
use orochi_core::nondet::NondetValue;
use orochi_php::backend::{BackendError, DbResult, DbScalar, NondetProvider, StateBackend};
use orochi_php::builtins;
use orochi_php::bytecode::CompiledScript;
use orochi_php::value::Value;
use orochi_php::vm::{not_found_output, run_request, RequestInput, RequestOutput};
use orochi_sqldb::{ExecOutcome, SqlValue};
use orochi_state::object::ObjectName;
use orochi_trace::{HttpRequest, HttpResponse};
use std::collections::HashMap;

/// Which PHP bytecode engine the executor re-executes requests on.
///
/// Both engines produce identical outputs, state operations, and
/// control-flow digests; the register engine is the default because its
/// fixed-width instructions and pooled register windows dispatch faster.
/// The stack engine is kept as the differential baseline (property
/// tests, `fig10_instructions`, the `OROCHI_VM_ENGINE=stack` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmEngine {
    /// Fixed-width 32-bit register bytecode (the default).
    #[default]
    Register,
    /// The legacy stack bytecode interpreter.
    Stack,
}

/// Per-group statistics: the Fig. 11 bubble for one group.
#[derive(Debug, Clone, Copy)]
pub struct GroupStat {
    /// `n_c`: requests in the group.
    pub n: usize,
    /// Instructions that executed once for the whole group.
    pub univalent: u64,
    /// Instructions that executed per lane.
    pub multivalent: u64,
}

impl GroupStat {
    /// `α_c`: the proportion of univalent instructions.
    pub fn alpha(&self) -> f64 {
        let total = self.univalent + self.multivalent;
        if total == 0 {
            1.0
        } else {
            self.univalent as f64 / total as f64
        }
    }

    /// `ℓ_c`: instructions in the group's superposed execution.
    pub fn len(&self) -> u64 {
        self.univalent + self.multivalent
    }

    /// True when no instructions ran.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Aggregate executor statistics.
#[derive(Debug, Default, Clone)]
pub struct ExecutorStats {
    /// Groups executed in superposed (grouped) mode.
    pub grouped: usize,
    /// Groups that fell back to scalar per-request execution.
    pub fallbacks: usize,
    /// Requests executed on the scalar path.
    pub scalar_requests: usize,
    /// Per-group Fig. 11 triples (grouped mode only).
    pub group_stats: Vec<GroupStat>,
}

impl ExecutorStats {
    /// Folds another executor's statistics into this one. The parallel
    /// audit runs one executor per worker thread; the harness merges
    /// their counters afterwards. Counter sums are order-independent;
    /// only the order of the Fig. 11 triples depends on scheduling (the
    /// triples themselves do not — consumers sort before rendering).
    pub fn merge(&mut self, other: &ExecutorStats) {
        self.grouped += other.grouped;
        self.fallbacks += other.fallbacks;
        self.scalar_requests += other.scalar_requests;
        self.group_stats.extend_from_slice(&other.group_stats);
    }
}

/// The acc-PHP group executor: routes requests to compiled scripts and
/// re-executes each control-flow group.
pub struct AccPhpExecutor {
    scripts: HashMap<String, CompiledScript>,
    /// Force the scalar path for every request (the "SIMD off" ablation
    /// arm, §5.2).
    pub force_scalar: bool,
    /// Maximum group size per superposed execution (OROCHI caps at
    /// 3,000 to avoid thrashing, §4.7); larger groups split.
    pub max_group: usize,
    /// Which bytecode engine re-executes requests.
    pub engine: VmEngine,
    /// Statistics for the evaluation harness.
    pub stats: ExecutorStats,
}

// The parallel audit moves one executor into each worker thread, so the
// executor (and the compiled scripts it routes to) must stay `Send`.
const _: fn() = || {
    fn sendable<T: Send>() {}
    sendable::<AccPhpExecutor>();
};

impl AccPhpExecutor {
    /// Creates an executor for the given `(path, script)` routing table.
    pub fn new(scripts: HashMap<String, CompiledScript>) -> Self {
        AccPhpExecutor {
            scripts,
            force_scalar: false,
            max_group: 3000,
            engine: VmEngine::default(),
            stats: ExecutorStats::default(),
        }
    }

    fn to_input(req: &HttpRequest) -> RequestInput {
        RequestInput {
            method: req.method.clone(),
            path: req.path.clone(),
            get: req.query.clone(),
            post: req.post.clone(),
            cookies: req.cookies.clone(),
        }
    }

    fn to_response(rid: RequestId, out: RequestOutput) -> HttpResponse {
        HttpResponse {
            rid_label: rid,
            status: out.status,
            headers: out.headers,
            body: out.body,
        }
    }

    /// Scalar re-execution of one request through the checking backend.
    fn run_scalar(
        &mut self,
        rid: RequestId,
        input: &RequestInput,
        ctx: &mut AuditContext<'_>,
    ) -> Result<RequestOutput, Rejection> {
        self.stats.scalar_requests += 1;
        let Some(script) = self.scripts.get(&input.path) else {
            return Ok(not_found_output(&input.path));
        };
        let mut backend = AuditBackend {
            ctx,
            rid,
            txn: None,
            rejection: None,
        };
        let result = match self.engine {
            VmEngine::Register => run_request(script, &mut backend, input),
            VmEngine::Stack => orochi_php::vm::stack::run_request(script, &mut backend, input),
        };
        match result {
            Ok(result) => {
                // Scalar execution dispatches every instruction once:
                // total and executed coincide.
                backend
                    .ctx
                    .record_vm_dispatches(result.stats.instructions, result.stats.instructions);
                Ok(result.output)
            }
            Err(msg) => Err(backend
                .rejection
                .take()
                .unwrap_or(Rejection::ExecFailure(msg))),
        }
    }

    fn run_group(
        &self,
        script: &CompiledScript,
        rids: &[RequestId],
        inputs: &[RequestInput],
        ctx: &mut AuditContext<'_>,
    ) -> Result<GroupOutcome, GroupRunError> {
        match self.engine {
            VmEngine::Register => groupvm::run_group(script, rids, inputs, ctx),
            VmEngine::Stack => groupvm::stack::run_group(script, rids, inputs, ctx),
        }
    }
}

impl GroupExecutor for AccPhpExecutor {
    fn execute_group(
        &mut self,
        requests: &[(RequestId, HttpRequest)],
        ctx: &mut AuditContext<'_>,
    ) -> Result<Vec<(RequestId, HttpResponse)>, Rejection> {
        let rids: Vec<RequestId> = requests.iter().map(|(r, _)| *r).collect();
        let inputs: Vec<RequestInput> = requests
            .iter()
            .map(|(_, req)| Self::to_input(req))
            .collect();
        let mut outputs: Vec<(RequestId, HttpResponse)> = Vec::with_capacity(requests.len());

        // Grouped execution requires a single script; groups beyond
        // max_group split into chunks (OROCHI caps groups at 3,000 to
        // avoid thrashing, §4.7). Anything else goes scalar.
        let same_path = inputs.windows(2).all(|w| w[0].path == w[1].path);
        let script_known = same_path && self.scripts.contains_key(&inputs[0].path);
        let try_grouped = !self.force_scalar && requests.len() > 1 && script_known;

        if try_grouped {
            let script = self
                .scripts
                .get(&inputs[0].path)
                .expect("checked script_known")
                .clone();
            let chunk = self.max_group.max(1);
            let mut diverged = false;
            let mut chunk_outputs = Vec::with_capacity(requests.len());
            for (rid_chunk, input_chunk) in rids.chunks(chunk).zip(inputs.chunks(chunk)) {
                match self.run_group(&script, rid_chunk, input_chunk, ctx) {
                    Ok(outcome) => {
                        self.stats.grouped += 1;
                        self.stats.group_stats.push(GroupStat {
                            n: rid_chunk.len(),
                            univalent: outcome.univalent,
                            multivalent: outcome.multivalent,
                        });
                        // A fully scalar audit would dispatch every
                        // group instruction once per lane; superposed
                        // execution pays univalent instructions once.
                        let n = rid_chunk.len() as u64;
                        ctx.record_vm_dispatches(
                            n * (outcome.univalent + outcome.multivalent),
                            outcome.univalent + n * outcome.multivalent,
                        );
                        for (rid, out) in rid_chunk.iter().zip(outcome.outputs) {
                            chunk_outputs.push((*rid, Self::to_response(*rid, out)));
                        }
                    }
                    Err(GroupRunError::Reject(r)) => return Err(r),
                    Err(GroupRunError::Diverged(_why)) => {
                        // Retry the whole group per request; checks rerun
                        // identically after the reset.
                        diverged = true;
                        break;
                    }
                }
            }
            if !diverged {
                return Ok(chunk_outputs);
            }
            self.stats.fallbacks += 1;
            ctx.reset_requests(&rids);
        }

        for (rid, input) in rids.iter().zip(&inputs) {
            let out = self.run_scalar(*rid, input, ctx)?;
            outputs.push((*rid, Self::to_response(*rid, out)));
        }
        Ok(outputs)
    }
}

/// Scalar-path adapter: implements the PHP runtime's backend traits over
/// the audit context, preserving the precise rejection for the driver.
struct AuditBackend<'b, 'a> {
    ctx: &'b mut AuditContext<'a>,
    rid: RequestId,
    txn: Option<DbTxnHandle>,
    rejection: Option<Rejection>,
}

impl AuditBackend<'_, '_> {
    fn reject<T>(&mut self, r: Rejection) -> Result<T, BackendError> {
        let msg = r.to_string();
        self.rejection = Some(r);
        Err(BackendError::AuditReject(msg))
    }
}

fn exec_outcome_to_db_result(outcome: DbQueryResult) -> DbResult {
    match outcome {
        DbQueryResult::Failed => DbResult::Failed,
        DbQueryResult::Ok(ExecOutcome::Rows { columns, rows }) => DbResult::Rows(
            rows.into_iter()
                .map(|row| {
                    columns
                        .iter()
                        .cloned()
                        .zip(row.into_iter().map(|v| match v {
                            SqlValue::Null => DbScalar::Null,
                            SqlValue::Int(i) => DbScalar::Int(i),
                            SqlValue::Float(f) => DbScalar::Float(f),
                            SqlValue::Text(s) => DbScalar::Text(s),
                        }))
                        .collect()
                })
                .collect(),
        ),
        DbQueryResult::Ok(ExecOutcome::Write(w)) => DbResult::Write {
            affected: w.affected,
            insert_id: w.last_insert_id,
        },
    }
}

impl StateBackend for AuditBackend<'_, '_> {
    fn register_read(&mut self, object: &str) -> Result<Option<Vec<u8>>, BackendError> {
        let name = ObjectName(object.to_string());
        match self.ctx.register_read(self.rid, &name) {
            Ok(SimResult::Register(v)) => Ok(v),
            Ok(_) => Ok(None),
            Err(r) => self.reject(r),
        }
    }

    fn register_write(&mut self, object: &str, value: Vec<u8>) -> Result<(), BackendError> {
        let name = ObjectName(object.to_string());
        match self.ctx.register_write(self.rid, &name, value) {
            Ok(_) => Ok(()),
            Err(r) => self.reject(r),
        }
    }

    fn kv_get(&mut self, object: &str, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
        let name = ObjectName(object.to_string());
        match self.ctx.kv_get(self.rid, &name, key) {
            Ok(SimResult::Kv(v)) => Ok(v),
            Ok(_) => Ok(None),
            Err(r) => self.reject(r),
        }
    }

    fn kv_set(
        &mut self,
        object: &str,
        key: &str,
        value: Option<Vec<u8>>,
    ) -> Result<(), BackendError> {
        let name = ObjectName(object.to_string());
        match self.ctx.kv_set(self.rid, &name, key, value) {
            Ok(_) => Ok(()),
            Err(r) => self.reject(r),
        }
    }

    fn db_begin(&mut self, object: &str) -> Result<(), BackendError> {
        if self.txn.is_some() {
            return Err(BackendError::Fatal("nested transaction".into()));
        }
        let name = ObjectName(object.to_string());
        match self.ctx.db_begin(self.rid, &name) {
            Ok(h) => {
                self.txn = Some(h);
                Ok(())
            }
            Err(r) => self.reject(r),
        }
    }

    fn db_query(&mut self, object: &str, sql: &str) -> Result<DbResult, BackendError> {
        if self.txn.is_some() {
            let mut handle = self.txn.take().expect("checked above");
            let result = self.ctx.db_query(&mut handle, sql);
            self.txn = Some(handle);
            match result {
                Ok(out) => Ok(exec_outcome_to_db_result(out)),
                Err(r) => self.reject(r),
            }
        } else {
            // Auto-commit single-statement transaction.
            let name = ObjectName(object.to_string());
            let mut handle = match self.ctx.db_begin(self.rid, &name) {
                Ok(h) => h,
                Err(r) => return self.reject(r),
            };
            let result = match self.ctx.db_query(&mut handle, sql) {
                Ok(out) => out,
                Err(r) => return self.reject(r),
            };
            if let Err(r) = self.ctx.db_finish(handle, true) {
                return self.reject(r);
            }
            Ok(exec_outcome_to_db_result(result))
        }
    }

    fn db_commit(&mut self, _object: &str) -> Result<bool, BackendError> {
        let handle = self
            .txn
            .take()
            .ok_or_else(|| BackendError::Fatal("commit without transaction".into()))?;
        match self.ctx.db_finish(handle, true) {
            Ok(ok) => Ok(ok),
            Err(r) => self.reject(r),
        }
    }

    fn db_rollback(&mut self, _object: &str) -> Result<(), BackendError> {
        let handle = self
            .txn
            .take()
            .ok_or_else(|| BackendError::Fatal("rollback without transaction".into()))?;
        match self.ctx.db_finish(handle, false) {
            Ok(_) => Ok(()),
            Err(r) => self.reject(r),
        }
    }

    fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    fn end_of_request(&mut self) -> Result<(), BackendError> {
        if let Some(handle) = self.txn.take() {
            // Mirror the server: the leaked transaction was rolled back
            // and logged online; consume the operation, then fail the
            // request with the server's exact message.
            if let Err(r) = self.ctx.db_finish(handle, false) {
                return self.reject(r);
            }
            return Err(BackendError::Fatal(
                "script ended with open transaction".into(),
            ));
        }
        Ok(())
    }
}

impl NondetProvider for AuditBackend<'_, '_> {
    fn time(&mut self) -> Result<i64, BackendError> {
        match self.ctx.nondet(self.rid, "time") {
            Ok(NondetValue::Time(t)) => Ok(t),
            Ok(_) => unreachable!("kind checked by nondet()"),
            Err(r) => self.reject(r),
        }
    }

    fn microtime(&mut self) -> Result<f64, BackendError> {
        match self.ctx.nondet(self.rid, "microtime") {
            Ok(NondetValue::Microtime(t)) => Ok(t),
            Ok(_) => unreachable!("kind checked by nondet()"),
            Err(r) => self.reject(r),
        }
    }

    fn getpid(&mut self) -> Result<i64, BackendError> {
        match self.ctx.nondet(self.rid, "pid") {
            Ok(NondetValue::Pid(p)) => Ok(p),
            Ok(_) => unreachable!("kind checked by nondet()"),
            Err(r) => self.reject(r),
        }
    }

    fn mt_rand(&mut self) -> Result<i64, BackendError> {
        match self.ctx.nondet(self.rid, "rand") {
            Ok(NondetValue::Rand(v)) => Ok(v),
            Ok(_) => unreachable!("kind checked by nondet()"),
            Err(r) => self.reject(r),
        }
    }

    fn uniqid(&mut self) -> Result<String, BackendError> {
        match self.ctx.nondet(self.rid, "uniqid") {
            Ok(NondetValue::Uniqid(u)) => Ok(u),
            Ok(_) => unreachable!("kind checked by nondet()"),
            Err(r) => self.reject(r),
        }
    }
}

// Keep the `builtins` and `Value` imports alive for the doc references
// above and potential direct dispatch extensions.
#[allow(unused)]
fn _doc_anchors(_: &Value) {
    let _ = builtins::NAMES.len();
}
