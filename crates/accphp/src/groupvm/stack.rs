//! The stack-bytecode multivalue VM, retained as the differential
//! baseline for the register group engine in the parent module.
//!
//! Runs the stack `code` stream with every stack slot, local, and
//! global holding an [`MVal`]. Same execution discipline as the
//! register engine (uniform branches, per-lane splits, CheckOp/SimOp
//! per lane); `fig10_instructions` and the property tests compare the
//! two engines' outputs, verdicts, and dispatch counts.

use crate::mval::MVal;
use orochi_common::codec::Wire;
use orochi_common::ids::RequestId;
use orochi_core::audit::{AuditContext, Rejection};
use orochi_core::exec::DbTxnHandle;
use orochi_core::nondet::NondetValue;
use orochi_php::builtins;
use orochi_php::bytecode::{CompiledScript, Op};
use orochi_php::value::Value;
use orochi_php::vm::{ops, RequestInput, RequestOutput, VmError};
use orochi_state::object::ObjectName;

use super::{
    db_query_result_to_value, incdec_mval, init_globals, is_impure, lane_err, uni_err, Flow, FnRef,
    GroupIter, GroupOutcome, GroupRunError, NoHost,
};

struct Frame {
    func: FnRef,
    pc: usize,
    locals: Vec<MVal>,
    iters: Vec<GroupIter>,
    stack_base: usize,
}

struct GroupVm<'c, 'a> {
    script: &'c CompiledScript,
    ctx: &'c mut AuditContext<'a>,
    rids: Vec<RequestId>,
    lanes: usize,
    globals: Vec<MVal>,
    stack: Vec<MVal>,
    frames: Vec<Frame>,
    // Per-lane request effects.
    outputs: Vec<String>,
    headers: Vec<Vec<(String, String)>>,
    statuses: Vec<u16>,
    session_started: bool,
    session_cookies: Vec<Option<String>>,
    last_insert_id: Vec<i64>,
    last_affected: Vec<i64>,
    txns: Vec<Option<DbTxnHandle>>,
    univalent: u64,
    multivalent: u64,
    steps: u64,
}

/// Runs one control-flow group's superposed execution.
pub fn run_group(
    script: &CompiledScript,
    rids: &[RequestId],
    inputs: &[RequestInput],
    ctx: &mut AuditContext<'_>,
) -> Result<GroupOutcome, GroupRunError> {
    debug_assert_eq!(rids.len(), inputs.len(), "one input per rid");
    let lanes = rids.len();
    let mut vm = GroupVm {
        script,
        ctx,
        rids: rids.to_vec(),
        lanes,
        globals: init_globals(script, inputs, lanes),
        stack: Vec::with_capacity(64),
        frames: Vec::new(),
        outputs: vec![String::new(); lanes],
        headers: vec![Vec::new(); lanes],
        statuses: vec![200; lanes],
        session_started: false,
        session_cookies: inputs
            .iter()
            .map(|i| i.session_cookie().map(str::to_string))
            .collect(),
        last_insert_id: vec![0; lanes],
        last_affected: vec![0; lanes],
        txns: (0..lanes).map(|_| None).collect(),
        univalent: 0,
        multivalent: 0,
        steps: 0,
    };
    vm.frames.push(Frame {
        func: FnRef::Main,
        pc: 0,
        locals: vec![MVal::Uni(Value::Null); script.main.num_locals as usize],
        iters: Vec::new(),
        stack_base: 0,
    });
    match vm.interp() {
        Ok(()) => {
            if vm.close_leaked_txns()? {
                return vm.uniform_fatal_outcome("script ended with open transaction");
            }
            vm.write_sessions_back()?;
            Ok(vm.into_outcome())
        }
        Err(Flow::Exit) => {
            if vm.close_leaked_txns()? {
                return vm.uniform_fatal_outcome("script ended with open transaction");
            }
            vm.write_sessions_back()?;
            Ok(vm.into_outcome())
        }
        Err(Flow::GroupFatal(m)) => {
            // Uniform fatal: all lanes produce the identical 500 page
            // (no headers, no session write) — exactly what the scalar
            // runtime does per request.
            let body = format!("Fatal error: {m}");
            Ok(GroupOutcome {
                outputs: (0..vm.lanes)
                    .map(|_| RequestOutput {
                        status: 500,
                        headers: Vec::new(),
                        body: body.clone(),
                    })
                    .collect(),
                univalent: vm.univalent,
                multivalent: vm.multivalent,
            })
        }
        Err(Flow::Diverged(why)) => Err(GroupRunError::Diverged(why)),
        Err(Flow::Reject(r)) => Err(GroupRunError::Reject(r)),
    }
}

impl GroupVm<'_, '_> {
    fn into_outcome(mut self) -> GroupOutcome {
        GroupOutcome {
            outputs: (0..self.lanes)
                .map(|l| RequestOutput {
                    status: self.statuses[l],
                    headers: std::mem::take(&mut self.headers[l]),
                    body: std::mem::take(&mut self.outputs[l]),
                })
                .collect(),
            univalent: self.univalent,
            multivalent: self.multivalent,
        }
    }

    /// Closes transactions the script leaked (uniform control flow
    /// means all lanes leak together); returns true if any were open.
    fn close_leaked_txns(&mut self) -> Result<bool, GroupRunError> {
        let mut any = false;
        for l in 0..self.lanes {
            if let Some(handle) = self.txns[l].take() {
                any = true;
                self.ctx
                    .db_finish(handle, false)
                    .map_err(GroupRunError::Reject)?;
            }
        }
        Ok(any)
    }

    /// All lanes answer with the same fatal page (no headers/session).
    fn uniform_fatal_outcome(&mut self, message: &str) -> Result<GroupOutcome, GroupRunError> {
        let body = format!("Fatal error: {message}");
        Ok(GroupOutcome {
            outputs: (0..self.lanes)
                .map(|_| RequestOutput {
                    status: 500,
                    headers: Vec::new(),
                    body: body.clone(),
                })
                .collect(),
            univalent: self.univalent,
            multivalent: self.multivalent,
        })
    }

    fn write_sessions_back(&mut self) -> Result<(), GroupRunError> {
        if !self.session_started {
            return Ok(());
        }
        for l in 0..self.lanes {
            if let Some(cookie) = self.session_cookies[l].clone() {
                let bytes = self.globals[3].lane(l).to_wire_bytes();
                let name = ObjectName(format!("reg:sess:{cookie}"));
                self.ctx
                    .register_write(self.rids[l], &name, bytes)
                    .map_err(GroupRunError::Reject)?;
            }
        }
        Ok(())
    }

    fn pop(&mut self) -> MVal {
        self.stack.pop().expect("compiler guarantees stack depth")
    }

    /// Counts an instruction as univalent or multivalent.
    fn account(&mut self, multivalent: bool) {
        if multivalent {
            self.multivalent += 1;
        } else {
            self.univalent += 1;
        }
    }

    fn interp(&mut self) -> Result<(), Flow> {
        loop {
            self.steps += 1;
            if self.steps > 2_000_000_000 {
                return Err(Flow::GroupFatal("execution step limit exceeded".into()));
            }
            let frame = self.frames.last_mut().expect("frame present while running");
            let code = match frame.func {
                FnRef::Main => &self.script.main.code,
                FnRef::User(i) => &self.script.functions[i as usize].code,
            };
            let pc = frame.pc;
            let op = code[pc];
            frame.pc += 1;
            match op {
                Op::Const(i) => {
                    self.account(false);
                    self.stack
                        .push(MVal::Uni(self.script.consts[i as usize].clone()));
                }
                Op::LoadLocal(s) => {
                    let frame = self.frames.last().expect("running frame");
                    let v = frame.locals[s as usize].clone();
                    self.account(!v.is_uni());
                    self.stack.push(v);
                }
                Op::StoreLocal(s) => {
                    let v = self.pop();
                    self.account(!v.is_uni());
                    let frame = self.frames.last_mut().expect("running frame");
                    frame.locals[s as usize] = v;
                }
                Op::LoadGlobal(s) => {
                    let v = self.globals[s as usize].clone();
                    self.account(!v.is_uni());
                    self.stack.push(v);
                }
                Op::StoreGlobal(s) => {
                    let v = self.pop();
                    self.account(!v.is_uni());
                    self.globals[s as usize] = v;
                }
                Op::Pop => {
                    self.account(false);
                    self.pop();
                }
                Op::Dup => {
                    self.account(false);
                    let v = self.stack.last().expect("dup target").clone();
                    self.stack.push(v);
                }
                Op::Swap => {
                    self.account(false);
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod | Op::Concat => {
                    let b = self.pop();
                    let a = self.pop();
                    let multi = !a.is_uni() || !b.is_uni();
                    self.account(multi);
                    let r = if multi {
                        MVal::map2(&a, &b, self.lanes, |x, y| ops::binary(op, x, y))
                            .map_err(lane_err)?
                    } else {
                        MVal::map2(&a, &b, self.lanes, |x, y| ops::binary(op, x, y))
                            .map_err(uni_err)?
                    };
                    self.stack.push(r);
                }
                Op::Eq | Op::Ne | Op::Identical | Op::NotIdentical => {
                    let b = self.pop();
                    let a = self.pop();
                    self.account(!a.is_uni() || !b.is_uni());
                    let r = MVal::map2::<VmError>(&a, &b, self.lanes, |x, y| {
                        Ok(Value::Bool(match op {
                            Op::Eq => x.loose_eq(y),
                            Op::Ne => !x.loose_eq(y),
                            Op::Identical => x.identical(y),
                            Op::NotIdentical => !x.identical(y),
                            _ => unreachable!("equality subset"),
                        }))
                    })
                    .expect("equality is infallible");
                    self.stack.push(r);
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let b = self.pop();
                    let a = self.pop();
                    self.account(!a.is_uni() || !b.is_uni());
                    let r = MVal::map2::<VmError>(&a, &b, self.lanes, |x, y| {
                        Ok(Value::Bool(ops::relational(op, x, y)))
                    })
                    .expect("relational is infallible");
                    self.stack.push(r);
                }
                Op::Not => {
                    let v = self.pop();
                    self.account(!v.is_uni());
                    let r = v
                        .map1::<VmError>(self.lanes, |x| Ok(Value::Bool(!x.is_truthy())))
                        .expect("not is infallible");
                    self.stack.push(r);
                }
                Op::Neg => {
                    let v = self.pop();
                    let multi = !v.is_uni();
                    self.account(multi);
                    let r = v.map1(self.lanes, ops::negate).map_err(if multi {
                        lane_err
                    } else {
                        uni_err
                    })?;
                    self.stack.push(r);
                }
                Op::Jump(t) => {
                    self.account(false);
                    self.frames.last_mut().expect("running frame").pc = t as usize;
                }
                Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                    let v = self.pop();
                    self.account(!v.is_uni());
                    let truth = v
                        .uniform_truthiness(self.lanes)
                        .map_err(|()| Flow::Diverged("non-uniform branch"))?;
                    let take = match op {
                        Op::JumpIfFalse(_) => !truth,
                        _ => truth,
                    };
                    if take {
                        self.frames.last_mut().expect("running frame").pc = t as usize;
                    }
                }
                Op::NewArray => {
                    self.account(false);
                    self.stack.push(MVal::Uni(Value::empty_array()));
                }
                Op::AppendStack => {
                    let v = self.pop();
                    let arr = self.pop();
                    let multi = !v.is_uni() || !arr.is_uni();
                    self.account(multi);
                    let r = MVal::map2(&arr, &v, self.lanes, |a, x| {
                        ops::array_append(a.clone(), x.clone())
                    })
                    .map_err(if multi { lane_err } else { uni_err })?;
                    self.stack.push(r);
                }
                Op::InsertStack => {
                    let v = self.pop();
                    let k = self.pop();
                    let arr = self.pop();
                    let multi = !v.is_uni() || !k.is_uni() || !arr.is_uni();
                    self.account(multi);
                    let mut out = Vec::with_capacity(self.lanes);
                    if multi {
                        for l in 0..self.lanes {
                            out.push(
                                ops::array_insert(
                                    arr.lane(l).clone(),
                                    k.lane(l),
                                    v.lane(l).clone(),
                                )
                                .map_err(lane_err)?,
                            );
                        }
                        self.stack.push(MVal::from_lanes(out));
                    } else {
                        let r =
                            ops::array_insert(arr.lane(0).clone(), k.lane(0), v.lane(0).clone())
                                .map_err(uni_err)?;
                        self.stack.push(MVal::Uni(r));
                    }
                }
                Op::IndexGet => {
                    let k = self.pop();
                    let base = self.pop();
                    self.account(!k.is_uni() || !base.is_uni());
                    let r = MVal::map2::<VmError>(&base, &k, self.lanes, |b, key| {
                        Ok(ops::index_get(b, key))
                    })
                    .expect("index_get is infallible");
                    self.stack.push(r);
                }
                Op::SetPathLocal(slot, n) | Op::SetPathGlobal(slot, n) => {
                    let keys: Vec<MVal> = self.pop_keys(n as usize);
                    let value = self.pop();
                    let is_local = matches!(op, Op::SetPathLocal(..));
                    self.modify_path(is_local, slot, &keys, ops::set_path, Some(value.clone()))?;
                    self.stack.push(value);
                }
                Op::AppendPathLocal(slot, n) | Op::AppendPathGlobal(slot, n) => {
                    let keys: Vec<MVal> = self.pop_keys(n as usize - 1);
                    let value = self.pop();
                    let is_local = matches!(op, Op::AppendPathLocal(..));
                    self.modify_path(is_local, slot, &keys, ops::append_path, Some(value.clone()))?;
                    self.stack.push(value);
                }
                Op::UnsetPathLocal(slot, n) | Op::UnsetPathGlobal(slot, n) => {
                    let keys: Vec<MVal> = self.pop_keys(n as usize);
                    let is_local = matches!(op, Op::UnsetPathLocal(..));
                    self.modify_path(
                        is_local,
                        slot,
                        &keys,
                        |cur, lane_keys, _v| {
                            ops::unset_path(cur, lane_keys);
                            Ok(())
                        },
                        None,
                    )?;
                }
                Op::IssetPathLocal(slot, n) | Op::IssetPathGlobal(slot, n) => {
                    let keys: Vec<MVal> = self.pop_keys(n as usize);
                    let is_local = matches!(op, Op::IssetPathLocal(..));
                    let base = if is_local {
                        self.frames.last().expect("running frame").locals[slot as usize].clone()
                    } else {
                        self.globals[slot as usize].clone()
                    };
                    let multi = !base.is_uni() || keys.iter().any(|k| !k.is_uni());
                    self.account(multi);
                    let mut out = Vec::with_capacity(self.lanes);
                    let lane_count = if multi { self.lanes } else { 1 };
                    for l in 0..lane_count {
                        let lane_keys: Vec<Value> =
                            keys.iter().map(|k| k.lane(l).clone()).collect();
                        out.push(Value::Bool(ops::isset_path(base.lane(l), &lane_keys)));
                    }
                    self.stack.push(if multi {
                        MVal::from_lanes(out)
                    } else {
                        MVal::Uni(out.into_iter().next().expect("one lane"))
                    });
                }
                Op::PreIncLocal(s)
                | Op::PostIncLocal(s)
                | Op::PreDecLocal(s)
                | Op::PostDecLocal(s) => {
                    let frame = self.frames.last_mut().expect("running frame");
                    let cur = frame.locals[s as usize].clone();
                    let multi = !cur.is_uni();
                    self.account(multi);
                    // Rebind the local-variant op for the shared scalar helper.
                    let scalar_op = match op {
                        Op::PreIncLocal(_) => Op::PreIncLocal(0),
                        Op::PostIncLocal(_) => Op::PostIncLocal(0),
                        Op::PreDecLocal(_) => Op::PreDecLocal(0),
                        _ => Op::PostDecLocal(0),
                    };
                    let (new_slot, result) = incdec_mval(&cur, scalar_op, self.lanes)
                        .map_err(if multi { lane_err } else { uni_err })?;
                    let frame = self.frames.last_mut().expect("running frame");
                    frame.locals[s as usize] = new_slot;
                    self.stack.push(result);
                }
                Op::PreIncGlobal(s)
                | Op::PostIncGlobal(s)
                | Op::PreDecGlobal(s)
                | Op::PostDecGlobal(s) => {
                    let cur = self.globals[s as usize].clone();
                    let multi = !cur.is_uni();
                    self.account(multi);
                    let scalar_op = match op {
                        Op::PreIncGlobal(_) => Op::PreIncLocal(0),
                        Op::PostIncGlobal(_) => Op::PostIncLocal(0),
                        Op::PreDecGlobal(_) => Op::PreDecLocal(0),
                        _ => Op::PostDecLocal(0),
                    };
                    let (new_slot, result) = incdec_mval(&cur, scalar_op, self.lanes)
                        .map_err(if multi { lane_err } else { uni_err })?;
                    self.globals[s as usize] = new_slot;
                    self.stack.push(result);
                }
                Op::Call(fidx, argc) => {
                    self.account(false);
                    let func = &self.script.functions[fidx as usize];
                    let argc = argc as usize;
                    let mut locals = vec![MVal::Uni(Value::Null); func.num_locals as usize];
                    let args_start = self.stack.len() - argc;
                    for (i, v) in self.stack.drain(args_start..).enumerate() {
                        if i < func.num_params as usize {
                            locals[i] = v;
                        }
                    }
                    #[allow(clippy::needless_range_loop)]
                    for p in argc..func.num_params as usize {
                        match func.defaults[p] {
                            Some(cidx) => {
                                locals[p] = MVal::Uni(self.script.consts[cidx as usize].clone())
                            }
                            None => {
                                return Err(Flow::GroupFatal(format!(
                                    "too few arguments to function {}()",
                                    func.name
                                )))
                            }
                        }
                    }
                    if self.frames.len() >= 200 {
                        return Err(Flow::GroupFatal("call stack depth exceeded".into()));
                    }
                    self.frames.push(Frame {
                        func: FnRef::User(fidx),
                        pc: 0,
                        locals,
                        iters: Vec::new(),
                        stack_base: self.stack.len(),
                    });
                }
                Op::CallBuiltin(bidx, argc) => {
                    self.builtin(bidx, argc as usize)?;
                }
                Op::Return => {
                    self.account(false);
                    let value = self.pop();
                    let frame = self.frames.pop().expect("returning frame");
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    self.stack.truncate(frame.stack_base);
                    self.stack.push(value);
                }
                Op::ReturnNull => {
                    self.account(false);
                    let frame = self.frames.pop().expect("returning frame");
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    self.stack.truncate(frame.stack_base);
                    self.stack.push(MVal::Uni(Value::Null));
                }
                Op::Echo => {
                    let v = self.pop();
                    self.account(!v.is_uni());
                    match &v {
                        MVal::Uni(val) => {
                            let s = val.to_php_string();
                            for out in &mut self.outputs {
                                out.push_str(&s);
                            }
                        }
                        MVal::Multi(vals) => {
                            for (out, val) in self.outputs.iter_mut().zip(vals.iter()) {
                                out.push_str(&val.to_php_string());
                            }
                        }
                    }
                }
                Op::IterInit => {
                    let arr = self.pop();
                    self.account(!arr.is_uni());
                    let iter = match &arr {
                        MVal::Uni(Value::Array(a)) => GroupIter::Uni {
                            pairs: a.to_pairs(),
                            pos: 0,
                        },
                        MVal::Uni(_) => GroupIter::Uni {
                            pairs: Vec::new(),
                            pos: 0,
                        },
                        MVal::Multi(vals) => GroupIter::PerLane {
                            lanes: vals
                                .iter()
                                .map(|v| match v {
                                    Value::Array(a) => (a.to_pairs(), 0),
                                    _ => (Vec::new(), 0),
                                })
                                .collect(),
                        },
                    };
                    self.frames
                        .last_mut()
                        .expect("running frame")
                        .iters
                        .push(iter);
                }
                Op::IterNext(t) | Op::IterNextKV(t) => {
                    let want_key = matches!(op, Op::IterNextKV(_));
                    let lanes = self.lanes;
                    let frame = self.frames.last_mut().expect("running frame");
                    let iter = frame.iters.last_mut().expect("IterInit precedes IterNext");
                    match iter {
                        GroupIter::Uni { pairs, pos } => {
                            self.univalent += 1;
                            if *pos < pairs.len() {
                                let (k, v) = pairs[*pos].clone();
                                *pos += 1;
                                if want_key {
                                    self.stack.push(MVal::Uni(k.to_value()));
                                }
                                self.stack.push(MVal::Uni(v));
                            } else {
                                frame.pc = t as usize;
                            }
                        }
                        GroupIter::PerLane { lanes: iters } => {
                            self.multivalent += 1;
                            let has: Vec<bool> =
                                iters.iter().map(|(p, pos)| *pos < p.len()).collect();
                            let first = has[0];
                            if !has.iter().all(|h| *h == first) {
                                return Err(Flow::Diverged("non-uniform iteration"));
                            }
                            if first {
                                let mut keys = Vec::with_capacity(lanes);
                                let mut vals = Vec::with_capacity(lanes);
                                for (pairs, pos) in iters.iter_mut() {
                                    let (k, v) = pairs[*pos].clone();
                                    *pos += 1;
                                    keys.push(k.to_value());
                                    vals.push(v);
                                }
                                if want_key {
                                    self.stack.push(MVal::from_lanes(keys));
                                }
                                self.stack.push(MVal::from_lanes(vals));
                            } else {
                                frame.pc = t as usize;
                            }
                        }
                    }
                }
                Op::IterPop => {
                    self.account(false);
                    self.frames.last_mut().expect("running frame").iters.pop();
                }
            }
        }
    }

    fn pop_keys(&mut self, n: usize) -> Vec<MVal> {
        if n == 0 {
            return Vec::new();
        }
        self.stack.split_off(self.stack.len() - n)
    }

    /// Read-modify-write of a local/global slot through an index path,
    /// univalently when every participant is a univalue.
    fn modify_path(
        &mut self,
        is_local: bool,
        slot: u16,
        keys: &[MVal],
        f: impl Fn(&mut Value, &[Value], Value) -> Result<(), VmError>,
        value: Option<MVal>,
    ) -> Result<(), Flow> {
        let cur = if is_local {
            self.frames.last().expect("running frame").locals[slot as usize].clone()
        } else {
            self.globals[slot as usize].clone()
        };
        let multi = !cur.is_uni()
            || keys.iter().any(|k| !k.is_uni())
            || value.as_ref().is_some_and(|v| !v.is_uni());
        self.account(multi);
        let new = if !multi {
            let mut v = cur.lane(0).clone();
            let lane_keys: Vec<Value> = keys.iter().map(|k| k.lane(0).clone()).collect();
            let val = value.map(|m| m.lane(0).clone()).unwrap_or(Value::Null);
            f(&mut v, &lane_keys, val).map_err(uni_err)?;
            MVal::Uni(v)
        } else {
            let mut out = Vec::with_capacity(self.lanes);
            for l in 0..self.lanes {
                let mut v = cur.lane(l).clone();
                let lane_keys: Vec<Value> = keys.iter().map(|k| k.lane(l).clone()).collect();
                let val = value
                    .as_ref()
                    .map(|m| m.lane(l).clone())
                    .unwrap_or(Value::Null);
                f(&mut v, &lane_keys, val).map_err(lane_err)?;
                out.push(v);
            }
            MVal::from_lanes(out)
        };
        if is_local {
            self.frames.last_mut().expect("running frame").locals[slot as usize] = new;
        } else {
            self.globals[slot as usize] = new;
        }
        Ok(())
    }

    /// Builtin calls: pure builtins split per lane when any argument is
    /// a multivalue (§4.3); impure builtins route through the audit
    /// context per lane.
    fn builtin(&mut self, bidx: u16, argc: usize) -> Result<(), Flow> {
        let name = builtins::NAMES[bidx as usize];
        let args_start = self.stack.len() - argc;
        let args: Vec<MVal> = self.stack.drain(args_start..).collect();
        if is_impure(name) {
            return self.impure_builtin(name, &args);
        }
        let all_uni = args.iter().all(MVal::is_uni);
        self.account(!all_uni);
        if builtins::is_byref(bidx) {
            if all_uni {
                let mut lane_args: Vec<Value> = args.iter().map(|a| a.lane(0).clone()).collect();
                let (target, ret) =
                    builtins::dispatch_byref(bidx, &mut lane_args).map_err(uni_err)?;
                self.stack.push(MVal::Uni(target));
                self.stack.push(MVal::Uni(ret));
            } else {
                let mut targets = Vec::with_capacity(self.lanes);
                let mut rets = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let mut lane_args: Vec<Value> =
                        args.iter().map(|a| a.lane(l).clone()).collect();
                    let (t, r) =
                        builtins::dispatch_byref(bidx, &mut lane_args).map_err(lane_err)?;
                    targets.push(t);
                    rets.push(r);
                }
                self.stack.push(MVal::from_lanes(targets));
                self.stack.push(MVal::from_lanes(rets));
            }
            return Ok(());
        }
        if all_uni {
            let lane_args: Vec<Value> = args.iter().map(|a| a.lane(0).clone()).collect();
            let r = builtins::dispatch(bidx, &lane_args, &mut NoHost).map_err(uni_err)?;
            self.stack.push(MVal::Uni(r));
        } else {
            // Split execution: clone arguments per lane and run the
            // scalar implementation n times (§4.3).
            let mut out = Vec::with_capacity(self.lanes);
            for l in 0..self.lanes {
                let lane_args: Vec<Value> = args.iter().map(|a| a.lane(l).clone()).collect();
                out.push(builtins::dispatch(bidx, &lane_args, &mut NoHost).map_err(lane_err)?);
            }
            self.stack.push(MVal::from_lanes(out));
        }
        Ok(())
    }

    fn impure_builtin(&mut self, name: &str, args: &[MVal]) -> Result<(), Flow> {
        // Impure builtins count as multivalent when their arguments (or
        // their per-lane results) differ.
        match name {
            "print" => {
                let v = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!v.is_uni());
                for l in 0..self.lanes {
                    let s = v.lane(l).to_php_string();
                    self.outputs[l].push_str(&s);
                }
                self.stack.push(MVal::Uni(Value::Int(1)));
                Ok(())
            }
            "exit" | "die" => {
                self.account(false);
                if let Some(v) = args.first() {
                    for l in 0..self.lanes {
                        if matches!(v.lane(l), Value::Str(_)) {
                            let s = v.lane(l).to_php_string();
                            self.outputs[l].push_str(&s);
                        }
                    }
                }
                Err(Flow::Exit)
            }
            "header" => {
                let h = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!h.is_uni());
                for l in 0..self.lanes {
                    let text = h.lane(l).to_php_string();
                    match text.split_once(':') {
                        Some((n, v)) => {
                            self.headers[l].push((n.trim().to_string(), v.trim().to_string()))
                        }
                        None => {
                            return Err(if h.is_uni() {
                                Flow::GroupFatal("header(): malformed header".into())
                            } else {
                                Flow::Diverged("per-lane header error")
                            })
                        }
                    }
                }
                self.stack.push(MVal::Uni(Value::Null));
                Ok(())
            }
            "http_response_code" => {
                let c = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!c.is_uni());
                for l in 0..self.lanes {
                    let code = c.lane(l).to_php_int();
                    if !(100..=599).contains(&code) {
                        return Err(if c.is_uni() {
                            Flow::GroupFatal("http_response_code(): bad code".into())
                        } else {
                            Flow::Diverged("per-lane status error")
                        });
                    }
                    self.statuses[l] = code as u16;
                }
                self.stack.push(MVal::Uni(Value::Bool(true)));
                Ok(())
            }
            "setcookie" => {
                let n = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                let v = args.get(1).cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!n.is_uni() || !v.is_uni());
                for l in 0..self.lanes {
                    self.headers[l].push((
                        "Set-Cookie".to_string(),
                        format!(
                            "{}={}",
                            n.lane(l).to_php_string(),
                            v.lane(l).to_php_string()
                        ),
                    ));
                }
                self.stack.push(MVal::Uni(Value::Bool(true)));
                Ok(())
            }
            "session_start" => {
                self.account(true);
                if !self.session_started {
                    self.session_started = true;
                    let mut sessions = Vec::with_capacity(self.lanes);
                    for l in 0..self.lanes {
                        match self.session_cookies[l].clone() {
                            None => sessions.push(Value::empty_array()),
                            Some(cookie) => {
                                let obj = ObjectName(format!("reg:sess:{cookie}"));
                                let sim = self
                                    .ctx
                                    .register_read(self.rids[l], &obj)
                                    .map_err(Flow::Reject)?;
                                let bytes = match sim {
                                    orochi_core::exec::SimResult::Register(b) => b,
                                    _ => None,
                                };
                                sessions.push(match bytes {
                                    Some(b) => Value::from_wire_bytes(&b).map_err(|_| {
                                        Flow::GroupFatal("corrupt session data".into())
                                    })?,
                                    None => Value::empty_array(),
                                });
                            }
                        }
                    }
                    self.globals[3] = MVal::from_lanes(sessions);
                }
                self.stack.push(MVal::Uni(Value::Bool(true)));
                Ok(())
            }
            "apc_fetch" => {
                let key = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let k = key.lane(l).to_php_string();
                    let sim = self
                        .ctx
                        .kv_get(self.rids[l], &ObjectName("kv:apc".into()), &k)
                        .map_err(Flow::Reject)?;
                    let bytes = match sim {
                        orochi_core::exec::SimResult::Kv(b) => b,
                        _ => None,
                    };
                    out.push(match bytes {
                        Some(b) => Value::from_wire_bytes(&b)
                            .map_err(|_| Flow::GroupFatal("corrupt apc data".into()))?,
                        None => Value::Bool(false),
                    });
                }
                self.stack.push(MVal::from_lanes(out));
                Ok(())
            }
            "apc_store" | "apc_delete" => {
                let key = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(true);
                for l in 0..self.lanes {
                    let k = key.lane(l).to_php_string();
                    let bytes = if name == "apc_store" {
                        Some(
                            args.get(1)
                                .map(|v| v.lane(l).clone())
                                .unwrap_or(Value::Null)
                                .to_wire_bytes(),
                        )
                    } else {
                        None
                    };
                    self.ctx
                        .kv_set(self.rids[l], &ObjectName("kv:apc".into()), &k, bytes)
                        .map_err(Flow::Reject)?;
                }
                self.stack.push(MVal::Uni(Value::Bool(true)));
                Ok(())
            }
            "db_begin" => {
                self.account(true);
                for l in 0..self.lanes {
                    if self.txns[l].is_some() {
                        return Err(Flow::GroupFatal("nested transaction".into()));
                    }
                    let h = self
                        .ctx
                        .db_begin(self.rids[l], &ObjectName("db:main".into()))
                        .map_err(Flow::Reject)?;
                    self.txns[l] = Some(h);
                }
                self.stack.push(MVal::Uni(Value::Bool(true)));
                Ok(())
            }
            "db_query" => {
                let sql = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let text = sql.lane(l).to_php_string();
                    let result = if self.txns[l].is_some() {
                        let handle = self.txns[l].as_mut().expect("checked above");
                        self.ctx.db_query(handle, &text).map_err(Flow::Reject)?
                    } else {
                        // Auto-commit single-statement transaction.
                        let mut handle = self
                            .ctx
                            .db_begin(self.rids[l], &ObjectName("db:main".into()))
                            .map_err(Flow::Reject)?;
                        let r = self
                            .ctx
                            .db_query(&mut handle, &text)
                            .map_err(Flow::Reject)?;
                        self.ctx.db_finish(handle, true).map_err(Flow::Reject)?;
                        r
                    };
                    out.push(db_query_result_to_value(
                        result,
                        &mut self.last_insert_id[l],
                        &mut self.last_affected[l],
                    ));
                }
                self.stack.push(MVal::from_lanes(out));
                Ok(())
            }
            "db_commit" | "db_rollback" => {
                self.account(true);
                let committed = name == "db_commit";
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let handle = match self.txns[l].take() {
                        Some(h) => h,
                        None => {
                            return Err(Flow::GroupFatal(format!("{name}() without transaction")))
                        }
                    };
                    let ok = self
                        .ctx
                        .db_finish(handle, committed)
                        .map_err(Flow::Reject)?;
                    out.push(Value::Bool(if committed { ok } else { true }));
                }
                self.stack.push(MVal::from_lanes(out));
                Ok(())
            }
            "db_insert_id" => {
                self.account(true);
                let vals = self.last_insert_id.iter().map(|i| Value::Int(*i)).collect();
                self.stack.push(MVal::from_lanes(vals));
                Ok(())
            }
            "db_affected_rows" => {
                self.account(true);
                let vals = self.last_affected.iter().map(|i| Value::Int(*i)).collect();
                self.stack.push(MVal::from_lanes(vals));
                Ok(())
            }
            "time" | "microtime" | "getpid" | "uniqid" => {
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                let kind = if name == "getpid" { "pid" } else { name };
                for l in 0..self.lanes {
                    let v = self.ctx.nondet(self.rids[l], kind).map_err(Flow::Reject)?;
                    out.push(match v {
                        NondetValue::Time(t) => Value::Int(t),
                        NondetValue::Microtime(t) => Value::Float(t),
                        NondetValue::Pid(p) => Value::Int(p),
                        NondetValue::Uniqid(u) => Value::str(u),
                        NondetValue::Rand(_) => {
                            return Err(Flow::Reject(Rejection::NondetKindMismatch {
                                rid: self.rids[l],
                            }))
                        }
                    });
                }
                self.stack.push(MVal::from_lanes(out));
                Ok(())
            }
            "mt_rand" | "rand" => {
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let v = self
                        .ctx
                        .nondet(self.rids[l], "rand")
                        .map_err(Flow::Reject)?;
                    let raw = match v {
                        NondetValue::Rand(r) => r,
                        _ => {
                            return Err(Flow::Reject(Rejection::NondetKindMismatch {
                                rid: self.rids[l],
                            }))
                        }
                    };
                    let lane_args: Vec<Value> = args.iter().map(|a| a.lane(l).clone()).collect();
                    out.push(builtins::mt_rand_reduce(raw, &lane_args).map_err(lane_err)?);
                }
                self.stack.push(MVal::from_lanes(out));
                Ok(())
            }
            other => Err(Flow::GroupFatal(format!(
                "impure builtin {other}() not handled in grouped mode"
            ))),
        }
    }
}
