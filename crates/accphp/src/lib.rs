//! acc-PHP: the verifier's accelerated PHP runtime (§4.3).
//!
//! Implements **SIMD-on-demand execution** (§3.1): all requests of one
//! control-flow group re-execute together as a single "superposed"
//! execution over *multivalues*. An instruction whose operands are
//! identical across the group executes once (univalently); one whose
//! operands differ executes per lane (multivalently), and the result
//! collapses back to a single value the moment the lanes agree — the
//! opportunistic collapsing that §5.2 identifies as the real source of
//! acceleration ("the gain comes not from the 'SIMD' part but from the
//! 'on demand' part").
//!
//! * [`mval`] — the multivalue representation: `Uni(Value)` or
//!   `Multi(Vec<Value>)`, with scalar expansion and collapse.
//! * [`groupvm`] — the multivalue VM over the same bytecode as the
//!   scalar runtime. Conditional branches on non-uniform conditions
//!   signal *divergence* (Fig. 12 line 39); state and nondeterministic
//!   builtins split into per-lane calls against the audit context
//!   (Fig. 12 lines 41–47); pure builtins split per lane exactly as
//!   §4.3 describes.
//! * [`executor`] — the [`orochi_core::GroupExecutor`] implementation:
//!   grouped execution with a scalar per-request fallback (mirroring
//!   acc-PHP's "re-execute separately" escape hatch), plus the
//!   univalent/multivalent accounting behind Figs. 10 and 11.

pub mod executor;
pub mod groupvm;
pub mod mval;

pub use executor::{AccPhpExecutor, GroupStat, VmEngine};
pub use groupvm::GroupRunError;
pub use mval::MVal;
