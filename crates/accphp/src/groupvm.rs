//! The multivalue VM: superposed execution of one control-flow group.
//!
//! Runs the same register bytecode as the scalar runtime, but every
//! register and global holds an [`MVal`] — the multivalue lanes are
//! widened *over the register file*, so one 32-bit instruction executes
//! across all member requests at once. The execution discipline follows
//! §3.1/§4.3:
//!
//! * instructions with univalue operands execute **once**;
//! * instructions with multivalue operands execute **per lane**, and the
//!   result collapses back to a univalue whenever the lanes agree;
//! * conditional branches (and iteration steps) require a *uniform*
//!   decision across lanes — otherwise the group **diverges**
//!   (Fig. 12 line 39) and the caller falls back to per-request scalar
//!   re-execution, acc-PHP's escape hatch (§4.3, §4.7);
//! * state operations split into per-lane `CheckOp`/`SimOp` calls against
//!   the [`AuditContext`] (Fig. 12 lines 41–47), and nondeterministic
//!   builtins consume each lane's recorded values (§4.6);
//! * pure builtins with multivalue arguments split into per-lane calls
//!   of the *same* implementations the scalar VM uses (§4.3 "built-in
//!   functions").
//!
//! The previous stack-bytecode group engine survives as [`stack`] — the
//! differential baseline `fig10_instructions` and the property tests
//! compare against.

use crate::mval::MVal;
use orochi_common::codec::Wire;
use orochi_common::ids::RequestId;
use orochi_core::audit::{AuditContext, Rejection};
use orochi_core::exec::{DbQueryResult, DbTxnHandle};
use orochi_core::nondet::NondetValue;
use orochi_php::backend::{DbResult, DbScalar};
use orochi_php::builtins::{self, Host};
use orochi_php::bytecode::{rinsn, CompiledScript, Op, ROp};
use orochi_php::value::{ArrayKey, Value};
use orochi_php::vm::{ops, RequestInput, RequestOutput, VmError};
use orochi_sqldb::{ExecOutcome, SqlValue};
use orochi_state::object::ObjectName;

pub mod stack;

/// Why grouped execution stopped without producing outputs.
#[derive(Debug)]
pub enum GroupRunError {
    /// Execution within the group diverged (non-uniform branch,
    /// per-lane error, mixed types): the caller should re-execute the
    /// requests separately.
    Diverged(&'static str),
    /// The audit context rejected an operation: the audit fails.
    Reject(Rejection),
}

impl From<Rejection> for GroupRunError {
    fn from(r: Rejection) -> Self {
        GroupRunError::Reject(r)
    }
}

/// Result of a grouped run.
#[derive(Debug)]
pub struct GroupOutcome {
    /// Per-lane response outputs (same order as the input requests).
    pub outputs: Vec<RequestOutput>,
    /// Instructions that executed once for the whole group.
    pub univalent: u64,
    /// Instructions that executed per lane.
    pub multivalent: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FnRef {
    Main,
    User(u16),
}

enum GroupIter {
    Uni {
        pairs: Vec<(ArrayKey, Value)>,
        pos: usize,
    },
    PerLane {
        lanes: Vec<(Vec<(ArrayKey, Value)>, usize)>,
    },
}

/// Internal control signals of the superposed interpreter.
enum Flow {
    Diverged(&'static str),
    Reject(Rejection),
    /// Uniform fatal error: the whole group produces the same 500 page.
    GroupFatal(String),
    /// Uniform `exit`/`die`.
    Exit,
}

impl From<Rejection> for Flow {
    fn from(r: Rejection) -> Self {
        Flow::Reject(r)
    }
}

/// Lifts a scalar VmError arising from *univalent* execution: fatal
/// errors are uniform across lanes.
fn uni_err(e: VmError) -> Flow {
    match e {
        VmError::Fatal(m) => Flow::GroupFatal(m),
        VmError::Exit => Flow::Exit,
        VmError::AuditReject(m) => Flow::Reject(Rejection::ExecFailure(m)),
    }
}

/// Lifts per-lane errors: a fatal in *some* lanes is divergence; the
/// caller re-executes scalar per request, where each lane gets its own
/// (possibly 500) output.
fn lane_err(e: VmError) -> Flow {
    match e {
        VmError::Fatal(_) => Flow::Diverged("per-lane error"),
        VmError::Exit => Flow::Diverged("per-lane exit"),
        VmError::AuditReject(m) => Flow::Reject(Rejection::ExecFailure(m)),
    }
}

/// A [`Host`] that pure builtins never actually call.
struct NoHost;

impl Host for NoHost {
    fn echo(&mut self, _s: &str) {}
    fn add_header(&mut self, _n: String, _v: String) {}
    fn set_status(&mut self, _c: u16) {}
    fn session_start(&mut self) -> Result<(), VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn kv_get(&mut self, _k: &str) -> Result<Value, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn kv_set(&mut self, _k: &str, _v: Option<&Value>) -> Result<(), VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn db_begin(&mut self) -> Result<(), VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn db_query(&mut self, _sql: &str) -> Result<Value, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn db_commit(&mut self) -> Result<bool, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn db_rollback(&mut self) -> Result<(), VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn db_insert_id(&mut self) -> i64 {
        0
    }
    fn db_affected_rows(&mut self) -> i64 {
        0
    }
    fn nd_time(&mut self) -> Result<i64, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn nd_microtime(&mut self) -> Result<f64, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn nd_getpid(&mut self) -> Result<i64, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn nd_rand_raw(&mut self) -> Result<i64, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
    fn nd_uniqid(&mut self) -> Result<String, VmError> {
        Err(VmError::Fatal("impure builtin in pure dispatch".into()))
    }
}

/// Builtins that interact with per-request effects or state; everything
/// else is pure and lane-splittable.
fn is_impure(name: &str) -> bool {
    matches!(
        name,
        "print"
            | "exit"
            | "die"
            | "header"
            | "http_response_code"
            | "setcookie"
            | "session_start"
            | "apc_fetch"
            | "apc_store"
            | "apc_delete"
            | "db_query"
            | "db_begin"
            | "db_commit"
            | "db_rollback"
            | "db_insert_id"
            | "db_affected_rows"
            | "time"
            | "microtime"
            | "getpid"
            | "mt_rand"
            | "rand"
            | "uniqid"
    )
}

fn init_globals(script: &CompiledScript, inputs: &[RequestInput], lanes: usize) -> Vec<MVal> {
    let mut globals = vec![MVal::Uni(Value::Null); script.global_names.len()];
    let lane_vals =
        |f: &dyn Fn(&RequestInput) -> Value| MVal::from_lanes(inputs.iter().map(f).collect());
    globals[0] = lane_vals(&|i| orochi_php::vm::pairs_to_array(&i.get));
    globals[1] = lane_vals(&|i| orochi_php::vm::pairs_to_array(&i.post));
    globals[2] = lane_vals(&|i| orochi_php::vm::pairs_to_array(&i.cookies));
    globals[3] = MVal::Uni(Value::empty_array());
    globals[4] = lane_vals(&|i| {
        let mut server = orochi_php::value::PhpArray::new();
        server.set(
            ArrayKey::Str("REQUEST_METHOD".into()),
            Value::str(i.method.clone()),
        );
        server.set(
            ArrayKey::Str("SCRIPT_NAME".into()),
            Value::str(i.path.clone()),
        );
        Value::array(server)
    });
    let _ = lanes;
    globals
}

/// `++`/`--` on a multivalue slot; returns (new slot value, expression
/// result).
fn incdec_mval(cur: &MVal, scalar_op: Op, lanes: usize) -> Result<(MVal, MVal), VmError> {
    match cur {
        MVal::Uni(v) => {
            let mut slot = v.clone();
            let result = ops::incdec(&mut slot, scalar_op)?;
            Ok((MVal::Uni(slot), MVal::Uni(result)))
        }
        MVal::Multi(vs) => {
            let mut new_lanes = Vec::with_capacity(lanes);
            let mut results = Vec::with_capacity(lanes);
            for v in vs.iter() {
                let mut slot = v.clone();
                results.push(ops::incdec(&mut slot, scalar_op)?);
                new_lanes.push(slot);
            }
            Ok((MVal::from_lanes(new_lanes), MVal::from_lanes(results)))
        }
    }
}

/// Converts an audit-side query result into the PHP-visible value,
/// mirroring the scalar backend's conversion exactly.
fn db_query_result_to_value(result: DbQueryResult, last_id: &mut i64, last_aff: &mut i64) -> Value {
    match result {
        DbQueryResult::Failed => Value::Bool(false),
        DbQueryResult::Ok(ExecOutcome::Rows { columns, rows }) => {
            let converted: Vec<Vec<(String, DbScalar)>> = rows
                .into_iter()
                .map(|row| {
                    columns
                        .iter()
                        .cloned()
                        .zip(row.into_iter().map(sql_to_dbscalar))
                        .collect()
                })
                .collect();
            builtins::db_result_to_value(DbResult::Rows(converted), last_id, last_aff)
        }
        DbQueryResult::Ok(ExecOutcome::Write(w)) => builtins::db_result_to_value(
            DbResult::Write {
                affected: w.affected,
                insert_id: w.last_insert_id,
            },
            last_id,
            last_aff,
        ),
    }
}

fn sql_to_dbscalar(v: SqlValue) -> DbScalar {
    match v {
        SqlValue::Null => DbScalar::Null,
        SqlValue::Int(i) => DbScalar::Int(i),
        SqlValue::Float(f) => DbScalar::Float(f),
        SqlValue::Text(s) => DbScalar::Text(s),
    }
}

/// Maps a register opcode to the scalar-op selector used by the shared
/// `ops` helpers.
fn scalar_binop(op: ROp) -> Op {
    match op {
        ROp::Add => Op::Add,
        ROp::Sub => Op::Sub,
        ROp::Mul => Op::Mul,
        ROp::Div => Op::Div,
        ROp::Mod => Op::Mod,
        ROp::Concat => Op::Concat,
        ROp::Lt => Op::Lt,
        ROp::Le => Op::Le,
        ROp::Gt => Op::Gt,
        ROp::Ge => Op::Ge,
        other => unreachable!("not a shared scalar op: {other:?}"),
    }
}

fn incdec_variant(c: usize) -> Op {
    match c {
        0 => Op::PreIncLocal(0),
        1 => Op::PostIncLocal(0),
        2 => Op::PreDecLocal(0),
        _ => Op::PostDecLocal(0),
    }
}

/// A pooled activation record over the multivalue register file.
struct RFrame {
    func: FnRef,
    pc: usize,
    base: usize,
    top: usize,
    ret_abs: usize,
    iters: Vec<GroupIter>,
}

struct GroupVm<'c, 'a> {
    script: &'c CompiledScript,
    ctx: &'c mut AuditContext<'a>,
    rids: Vec<RequestId>,
    lanes: usize,
    globals: Vec<MVal>,
    /// The flat multivalue register file; frame windows are disjoint.
    regs: Vec<MVal>,
    frames: Vec<RFrame>,
    depth: usize,
    // Per-lane request effects.
    outputs: Vec<String>,
    headers: Vec<Vec<(String, String)>>,
    statuses: Vec<u16>,
    session_started: bool,
    session_cookies: Vec<Option<String>>,
    last_insert_id: Vec<i64>,
    last_affected: Vec<i64>,
    txns: Vec<Option<DbTxnHandle>>,
    univalent: u64,
    multivalent: u64,
    steps: u64,
}

/// Runs one control-flow group's superposed execution (register engine).
pub fn run_group(
    script: &CompiledScript,
    rids: &[RequestId],
    inputs: &[RequestInput],
    ctx: &mut AuditContext<'_>,
) -> Result<GroupOutcome, GroupRunError> {
    debug_assert_eq!(rids.len(), inputs.len(), "one input per rid");
    let lanes = rids.len();
    let mut vm = GroupVm {
        script,
        ctx,
        rids: rids.to_vec(),
        lanes,
        globals: init_globals(script, inputs, lanes),
        regs: Vec::new(),
        frames: Vec::new(),
        depth: 0,
        outputs: vec![String::new(); lanes],
        headers: vec![Vec::new(); lanes],
        statuses: vec![200; lanes],
        session_started: false,
        session_cookies: inputs
            .iter()
            .map(|i| i.session_cookie().map(str::to_string))
            .collect(),
        last_insert_id: vec![0; lanes],
        last_affected: vec![0; lanes],
        txns: (0..lanes).map(|_| None).collect(),
        univalent: 0,
        multivalent: 0,
        steps: 0,
    };
    let top = script.main.register_count as usize;
    vm.regs.resize(top, MVal::Uni(Value::Null));
    vm.push_frame(FnRef::Main, 0, top, 0);
    match vm.interp() {
        Ok(()) | Err(Flow::Exit) => {
            if vm.close_leaked_txns()? {
                return vm.uniform_fatal_outcome("script ended with open transaction");
            }
            vm.write_sessions_back()?;
            Ok(vm.into_outcome())
        }
        Err(Flow::GroupFatal(m)) => {
            // Uniform fatal: all lanes produce the identical 500 page
            // (no headers, no session write) — exactly what the scalar
            // runtime does per request.
            vm.uniform_fatal_outcome(&m)
        }
        Err(Flow::Diverged(why)) => Err(GroupRunError::Diverged(why)),
        Err(Flow::Reject(r)) => Err(GroupRunError::Reject(r)),
    }
}

impl GroupVm<'_, '_> {
    fn into_outcome(mut self) -> GroupOutcome {
        GroupOutcome {
            outputs: (0..self.lanes)
                .map(|l| RequestOutput {
                    status: self.statuses[l],
                    headers: std::mem::take(&mut self.headers[l]),
                    body: std::mem::take(&mut self.outputs[l]),
                })
                .collect(),
            univalent: self.univalent,
            multivalent: self.multivalent,
        }
    }

    /// Closes transactions the script leaked (uniform control flow
    /// means all lanes leak together); returns true if any were open.
    fn close_leaked_txns(&mut self) -> Result<bool, GroupRunError> {
        let mut any = false;
        for l in 0..self.lanes {
            if let Some(handle) = self.txns[l].take() {
                any = true;
                self.ctx
                    .db_finish(handle, false)
                    .map_err(GroupRunError::Reject)?;
            }
        }
        Ok(any)
    }

    /// All lanes answer with the same fatal page (no headers/session).
    fn uniform_fatal_outcome(&mut self, message: &str) -> Result<GroupOutcome, GroupRunError> {
        let body = format!("Fatal error: {message}");
        Ok(GroupOutcome {
            outputs: (0..self.lanes)
                .map(|_| RequestOutput {
                    status: 500,
                    headers: Vec::new(),
                    body: body.clone(),
                })
                .collect(),
            univalent: self.univalent,
            multivalent: self.multivalent,
        })
    }

    fn write_sessions_back(&mut self) -> Result<(), GroupRunError> {
        if !self.session_started {
            return Ok(());
        }
        for l in 0..self.lanes {
            if let Some(cookie) = self.session_cookies[l].clone() {
                let bytes = self.globals[3].lane(l).to_wire_bytes();
                let name = ObjectName(format!("reg:sess:{cookie}"));
                self.ctx
                    .register_write(self.rids[l], &name, bytes)
                    .map_err(GroupRunError::Reject)?;
            }
        }
        Ok(())
    }

    /// Counts an instruction as univalent or multivalent.
    fn account(&mut self, multivalent: bool) {
        if multivalent {
            self.multivalent += 1;
        } else {
            self.univalent += 1;
        }
    }

    fn push_frame(&mut self, func: FnRef, base: usize, top: usize, ret_abs: usize) {
        if self.depth == self.frames.len() {
            self.frames.push(RFrame {
                func,
                pc: 0,
                base,
                top,
                ret_abs,
                iters: Vec::new(),
            });
        } else {
            let f = &mut self.frames[self.depth];
            f.func = func;
            f.pc = 0;
            f.base = base;
            f.top = top;
            f.ret_abs = ret_abs;
            f.iters.clear();
        }
        self.depth += 1;
    }

    /// Applies a two-operand scalar op lane-wise; errors lift per the
    /// uni/multi discipline.
    fn map2_op(&mut self, sop: Op, a: usize, b: usize, c: usize) -> Result<(), Flow> {
        let x = self.regs[b].clone();
        let y = self.regs[c].clone();
        let multi = !x.is_uni() || !y.is_uni();
        self.account(multi);
        let r = MVal::map2(&x, &y, self.lanes, |p, q| ops::binary(sop, p, q))
            .map_err(if multi { lane_err } else { uni_err })?;
        self.regs[a] = r;
        Ok(())
    }

    /// Read-modify-write of a register/global slot through an index
    /// path, univalently when every participant is a univalue.
    fn modify_path(
        &mut self,
        cur: &MVal,
        keys: &[MVal],
        value: Option<&MVal>,
        f: impl Fn(&mut Value, &[Value], Value) -> Result<(), VmError>,
    ) -> Result<MVal, Flow> {
        let multi =
            !cur.is_uni() || keys.iter().any(|k| !k.is_uni()) || value.is_some_and(|v| !v.is_uni());
        self.account(multi);
        if !multi {
            let mut v = cur.lane(0).clone();
            let lane_keys: Vec<Value> = keys.iter().map(|k| k.lane(0).clone()).collect();
            let val = value.map(|m| m.lane(0).clone()).unwrap_or(Value::Null);
            f(&mut v, &lane_keys, val).map_err(uni_err)?;
            Ok(MVal::Uni(v))
        } else {
            let mut out = Vec::with_capacity(self.lanes);
            for l in 0..self.lanes {
                let mut v = cur.lane(l).clone();
                let lane_keys: Vec<Value> = keys.iter().map(|k| k.lane(l).clone()).collect();
                let val = value.map(|m| m.lane(l).clone()).unwrap_or(Value::Null);
                f(&mut v, &lane_keys, val).map_err(lane_err)?;
                out.push(v);
            }
            Ok(MVal::from_lanes(out))
        }
    }

    fn interp(&mut self) -> Result<(), Flow> {
        loop {
            self.steps += 1;
            if self.steps > 2_000_000_000 {
                return Err(Flow::GroupFatal("execution step limit exceeded".into()));
            }
            let fi = self.depth - 1;
            let (func, base) = {
                let f = &self.frames[fi];
                (f.func, f.base)
            };
            let code = match func {
                FnRef::Main => &self.script.main.reg_code,
                FnRef::User(i) => &self.script.functions[i as usize].reg_code,
            };
            let pc = self.frames[fi].pc;
            let insn = code[pc];
            self.frames[fi].pc = pc + 1;
            let a = base + rinsn::a(insn);
            match rinsn::op(insn) {
                ROp::Move => {
                    let v = self.regs[base + rinsn::b(insn)].clone();
                    self.account(!v.is_uni());
                    self.regs[a] = v;
                }
                ROp::LoadConst => {
                    self.account(false);
                    self.regs[a] = MVal::Uni(self.script.consts[rinsn::bx(insn)].clone());
                }
                ROp::LoadGlobal => {
                    let v = self.globals[rinsn::b(insn)].clone();
                    self.account(!v.is_uni());
                    self.regs[a] = v;
                }
                ROp::StoreGlobal => {
                    let v = self.regs[base + rinsn::b(insn)].clone();
                    self.account(!v.is_uni());
                    self.globals[rinsn::a(insn)] = v;
                }
                ROp::Add | ROp::Sub | ROp::Mul | ROp::Div | ROp::Mod | ROp::Concat => {
                    let sop = scalar_binop(rinsn::op(insn));
                    self.map2_op(sop, a, base + rinsn::b(insn), base + rinsn::c(insn))?;
                }
                ROp::Eq | ROp::Ne | ROp::Identical | ROp::NotIdentical => {
                    let rop = rinsn::op(insn);
                    let x = self.regs[base + rinsn::b(insn)].clone();
                    let y = self.regs[base + rinsn::c(insn)].clone();
                    self.account(!x.is_uni() || !y.is_uni());
                    let r = MVal::map2::<VmError>(&x, &y, self.lanes, |p, q| {
                        Ok(Value::Bool(match rop {
                            ROp::Eq => p.loose_eq(q),
                            ROp::Ne => !p.loose_eq(q),
                            ROp::Identical => p.identical(q),
                            ROp::NotIdentical => !p.identical(q),
                            _ => unreachable!("equality subset"),
                        }))
                    })
                    .expect("equality is infallible");
                    self.regs[a] = r;
                }
                ROp::Lt | ROp::Le | ROp::Gt | ROp::Ge => {
                    let sop = scalar_binop(rinsn::op(insn));
                    let x = self.regs[base + rinsn::b(insn)].clone();
                    let y = self.regs[base + rinsn::c(insn)].clone();
                    self.account(!x.is_uni() || !y.is_uni());
                    let r = MVal::map2::<VmError>(&x, &y, self.lanes, |p, q| {
                        Ok(Value::Bool(ops::relational(sop, p, q)))
                    })
                    .expect("relational is infallible");
                    self.regs[a] = r;
                }
                ROp::Not => {
                    let v = self.regs[base + rinsn::b(insn)].clone();
                    self.account(!v.is_uni());
                    let r = v
                        .map1::<VmError>(self.lanes, |x| Ok(Value::Bool(!x.is_truthy())))
                        .expect("not is infallible");
                    self.regs[a] = r;
                }
                ROp::Neg => {
                    let v = self.regs[base + rinsn::b(insn)].clone();
                    let multi = !v.is_uni();
                    self.account(multi);
                    let r = v.map1(self.lanes, ops::negate).map_err(if multi {
                        lane_err
                    } else {
                        uni_err
                    })?;
                    self.regs[a] = r;
                }
                ROp::Jump => {
                    self.account(false);
                    self.frames[fi].pc = rinsn::bx(insn);
                }
                ROp::JumpIfFalse | ROp::JumpIfTrue => {
                    let v = self.regs[a].clone();
                    self.account(!v.is_uni());
                    let truth = v
                        .uniform_truthiness(self.lanes)
                        .map_err(|()| Flow::Diverged("non-uniform branch"))?;
                    let take = match rinsn::op(insn) {
                        ROp::JumpIfFalse => !truth,
                        _ => truth,
                    };
                    if take {
                        self.frames[fi].pc = rinsn::bx(insn);
                    }
                }
                ROp::NewArray => {
                    self.account(false);
                    self.regs[a] = MVal::Uni(Value::empty_array());
                }
                ROp::ArrayAppend => {
                    let arr = self.regs[a].clone();
                    let v = self.regs[base + rinsn::b(insn)].clone();
                    let multi = !v.is_uni() || !arr.is_uni();
                    self.account(multi);
                    let r = MVal::map2(&arr, &v, self.lanes, |x, y| {
                        ops::array_append(x.clone(), y.clone())
                    })
                    .map_err(if multi { lane_err } else { uni_err })?;
                    self.regs[a] = r;
                }
                ROp::ArrayInsert => {
                    let arr = self.regs[a].clone();
                    let k = self.regs[base + rinsn::b(insn)].clone();
                    let v = self.regs[base + rinsn::c(insn)].clone();
                    let multi = !v.is_uni() || !k.is_uni() || !arr.is_uni();
                    self.account(multi);
                    if multi {
                        let mut out = Vec::with_capacity(self.lanes);
                        for l in 0..self.lanes {
                            out.push(
                                ops::array_insert(
                                    arr.lane(l).clone(),
                                    k.lane(l),
                                    v.lane(l).clone(),
                                )
                                .map_err(lane_err)?,
                            );
                        }
                        self.regs[a] = MVal::from_lanes(out);
                    } else {
                        let r =
                            ops::array_insert(arr.lane(0).clone(), k.lane(0), v.lane(0).clone())
                                .map_err(uni_err)?;
                        self.regs[a] = MVal::Uni(r);
                    }
                }
                ROp::IndexGet => {
                    let b = self.regs[base + rinsn::b(insn)].clone();
                    let k = self.regs[base + rinsn::c(insn)].clone();
                    self.account(!k.is_uni() || !b.is_uni());
                    let r = MVal::map2::<VmError>(&b, &k, self.lanes, |x, key| {
                        Ok(ops::index_get(x, key))
                    })
                    .expect("index_get is infallible");
                    self.regs[a] = r;
                }
                ROp::SetPathLocal | ROp::SetPathGlobal => {
                    let n = rinsn::c(insn);
                    let is_local = rinsn::op(insn) == ROp::SetPathLocal;
                    let value = self.regs[a].clone();
                    let keys: Vec<MVal> = self.regs[a + 1..a + 1 + n].to_vec();
                    let cur = if is_local {
                        self.regs[base + rinsn::b(insn)].clone()
                    } else {
                        self.globals[rinsn::b(insn)].clone()
                    };
                    let new = self.modify_path(&cur, &keys, Some(&value), ops::set_path)?;
                    if is_local {
                        self.regs[base + rinsn::b(insn)] = new;
                    } else {
                        self.globals[rinsn::b(insn)] = new;
                    }
                }
                ROp::AppendPathLocal | ROp::AppendPathGlobal => {
                    let n = rinsn::c(insn);
                    let is_local = rinsn::op(insn) == ROp::AppendPathLocal;
                    let value = self.regs[a].clone();
                    let keys: Vec<MVal> = self.regs[a + 1..a + n].to_vec();
                    let cur = if is_local {
                        self.regs[base + rinsn::b(insn)].clone()
                    } else {
                        self.globals[rinsn::b(insn)].clone()
                    };
                    let new = self.modify_path(&cur, &keys, Some(&value), ops::append_path)?;
                    if is_local {
                        self.regs[base + rinsn::b(insn)] = new;
                    } else {
                        self.globals[rinsn::b(insn)] = new;
                    }
                }
                ROp::UnsetPathLocal | ROp::UnsetPathGlobal => {
                    let n = rinsn::c(insn);
                    let is_local = rinsn::op(insn) == ROp::UnsetPathLocal;
                    let keys: Vec<MVal> = self.regs[a..a + n].to_vec();
                    let cur = if is_local {
                        self.regs[base + rinsn::b(insn)].clone()
                    } else {
                        self.globals[rinsn::b(insn)].clone()
                    };
                    let new = self.modify_path(&cur, &keys, None, |c, lane_keys, _v| {
                        ops::unset_path(c, lane_keys);
                        Ok(())
                    })?;
                    if is_local {
                        self.regs[base + rinsn::b(insn)] = new;
                    } else {
                        self.globals[rinsn::b(insn)] = new;
                    }
                }
                ROp::IssetPathLocal | ROp::IssetPathGlobal => {
                    let n = rinsn::c(insn);
                    let is_local = rinsn::op(insn) == ROp::IssetPathLocal;
                    let keys: Vec<MVal> = self.regs[a..a + n].to_vec();
                    let cur = if is_local {
                        self.regs[base + rinsn::b(insn)].clone()
                    } else {
                        self.globals[rinsn::b(insn)].clone()
                    };
                    let multi = !cur.is_uni() || keys.iter().any(|k| !k.is_uni());
                    self.account(multi);
                    let lane_count = if multi { self.lanes } else { 1 };
                    let mut out = Vec::with_capacity(lane_count);
                    for l in 0..lane_count {
                        let lane_keys: Vec<Value> =
                            keys.iter().map(|k| k.lane(l).clone()).collect();
                        out.push(Value::Bool(ops::isset_path(cur.lane(l), &lane_keys)));
                    }
                    self.regs[a] = if multi {
                        MVal::from_lanes(out)
                    } else {
                        MVal::Uni(out.into_iter().next().expect("one lane"))
                    };
                }
                ROp::IncDecLocal | ROp::IncDecGlobal => {
                    let is_local = rinsn::op(insn) == ROp::IncDecLocal;
                    let cur = if is_local {
                        self.regs[base + rinsn::b(insn)].clone()
                    } else {
                        self.globals[rinsn::b(insn)].clone()
                    };
                    let multi = !cur.is_uni();
                    self.account(multi);
                    let sop = incdec_variant(rinsn::c(insn));
                    let (new_slot, result) = incdec_mval(&cur, sop, self.lanes)
                        .map_err(if multi { lane_err } else { uni_err })?;
                    if is_local {
                        self.regs[base + rinsn::b(insn)] = new_slot;
                    } else {
                        self.globals[rinsn::b(insn)] = new_slot;
                    }
                    self.regs[a] = result;
                }
                ROp::Call => {
                    self.account(false);
                    let fidx = rinsn::a(insn) as u16;
                    let func = &self.script.functions[fidx as usize];
                    let argc = rinsn::c(insn);
                    let args_abs = base + rinsn::b(insn);
                    let callee_base = self.frames[fi].top;
                    let callee_top = callee_base + func.register_count as usize;
                    if self.regs.len() < callee_top {
                        self.regs.resize(callee_top, MVal::Uni(Value::Null));
                    }
                    let num_params = func.num_params as usize;
                    for i in 0..argc {
                        let v =
                            std::mem::replace(&mut self.regs[args_abs + i], MVal::Uni(Value::Null));
                        if i < num_params {
                            self.regs[callee_base + i] = v;
                        }
                    }
                    for p in argc..num_params {
                        match func.defaults[p] {
                            Some(cidx) => {
                                self.regs[callee_base + p] =
                                    MVal::Uni(self.script.consts[cidx as usize].clone())
                            }
                            None => {
                                return Err(Flow::GroupFatal(format!(
                                    "too few arguments to function {}()",
                                    func.name
                                )))
                            }
                        }
                    }
                    if self.depth >= 200 {
                        return Err(Flow::GroupFatal("call stack depth exceeded".into()));
                    }
                    for r in &mut self.regs[callee_base + num_params..callee_top] {
                        *r = MVal::Uni(Value::Null);
                    }
                    self.push_frame(FnRef::User(fidx), callee_base, callee_top, args_abs);
                }
                ROp::CallBuiltin => {
                    let bidx = rinsn::a(insn) as u16;
                    let argc = rinsn::c(insn);
                    let abs = base + rinsn::b(insn);
                    self.builtin(bidx, abs, argc)?;
                }
                ROp::Return => {
                    self.account(false);
                    let value = std::mem::replace(&mut self.regs[a], MVal::Uni(Value::Null));
                    let ret_abs = self.frames[fi].ret_abs;
                    self.depth -= 1;
                    if self.depth == 0 {
                        return Ok(());
                    }
                    self.regs[ret_abs] = value;
                }
                ROp::ReturnNull => {
                    self.account(false);
                    let ret_abs = self.frames[fi].ret_abs;
                    self.depth -= 1;
                    if self.depth == 0 {
                        return Ok(());
                    }
                    self.regs[ret_abs] = MVal::Uni(Value::Null);
                }
                ROp::Echo => {
                    let v = self.regs[a].clone();
                    self.account(!v.is_uni());
                    match &v {
                        MVal::Uni(val) => {
                            let s = val.to_php_string();
                            for out in &mut self.outputs {
                                out.push_str(&s);
                            }
                        }
                        MVal::Multi(vals) => {
                            for (out, val) in self.outputs.iter_mut().zip(vals.iter()) {
                                out.push_str(&val.to_php_string());
                            }
                        }
                    }
                }
                ROp::IterInit => {
                    let arr = self.regs[a].clone();
                    self.account(!arr.is_uni());
                    let iter = match &arr {
                        MVal::Uni(Value::Array(p)) => GroupIter::Uni {
                            pairs: p.to_pairs(),
                            pos: 0,
                        },
                        MVal::Uni(_) => GroupIter::Uni {
                            pairs: Vec::new(),
                            pos: 0,
                        },
                        MVal::Multi(vals) => GroupIter::PerLane {
                            lanes: vals
                                .iter()
                                .map(|v| match v {
                                    Value::Array(p) => (p.to_pairs(), 0),
                                    _ => (Vec::new(), 0),
                                })
                                .collect(),
                        },
                    };
                    self.frames[fi].iters.push(iter);
                }
                ROp::IterNext | ROp::IterNextKV => {
                    let want_key = rinsn::op(insn) == ROp::IterNextKV;
                    let lanes = self.lanes;
                    let t = rinsn::bx(insn);
                    let frame = &mut self.frames[fi];
                    let iter = frame.iters.last_mut().expect("IterInit precedes IterNext");
                    match iter {
                        GroupIter::Uni { pairs, pos } => {
                            self.univalent += 1;
                            if *pos < pairs.len() {
                                let (k, v) = pairs[*pos].clone();
                                *pos += 1;
                                if want_key {
                                    self.regs[a] = MVal::Uni(k.to_value());
                                    self.regs[a + 1] = MVal::Uni(v);
                                } else {
                                    self.regs[a] = MVal::Uni(v);
                                }
                            } else {
                                frame.pc = t;
                            }
                        }
                        GroupIter::PerLane { lanes: iters } => {
                            self.multivalent += 1;
                            let has: Vec<bool> =
                                iters.iter().map(|(p, pos)| *pos < p.len()).collect();
                            let first = has[0];
                            if !has.iter().all(|h| *h == first) {
                                return Err(Flow::Diverged("non-uniform iteration"));
                            }
                            if first {
                                let mut keys = Vec::with_capacity(lanes);
                                let mut vals = Vec::with_capacity(lanes);
                                for (pairs, pos) in iters.iter_mut() {
                                    let (k, v) = pairs[*pos].clone();
                                    *pos += 1;
                                    keys.push(k.to_value());
                                    vals.push(v);
                                }
                                if want_key {
                                    self.regs[a] = MVal::from_lanes(keys);
                                    self.regs[a + 1] = MVal::from_lanes(vals);
                                } else {
                                    self.regs[a] = MVal::from_lanes(vals);
                                }
                            } else {
                                frame.pc = t;
                            }
                        }
                    }
                }
                ROp::IterPop => {
                    self.account(false);
                    self.frames[fi].iters.pop();
                }
            }
        }
    }

    /// Builtin calls: pure builtins split per lane when any argument is
    /// a multivalue (§4.3); impure builtins route through the audit
    /// context per lane. The result lands in `regs[abs]` (byref
    /// builtins also write the new target, at `abs`, with the return at
    /// `abs + 1`).
    fn builtin(&mut self, bidx: u16, abs: usize, argc: usize) -> Result<(), Flow> {
        let name = builtins::NAMES[bidx as usize];
        let args: Vec<MVal> = self.regs[abs..abs + argc].to_vec();
        if is_impure(name) {
            let r = self.impure_builtin(name, &args)?;
            self.regs[abs] = r;
            return Ok(());
        }
        let all_uni = args.iter().all(MVal::is_uni);
        self.account(!all_uni);
        if builtins::is_byref(bidx) {
            if all_uni {
                let mut lane_args: Vec<Value> = args.iter().map(|v| v.lane(0).clone()).collect();
                let (target, ret) =
                    builtins::dispatch_byref(bidx, &mut lane_args).map_err(uni_err)?;
                self.regs[abs] = MVal::Uni(target);
                self.regs[abs + 1] = MVal::Uni(ret);
            } else {
                let mut targets = Vec::with_capacity(self.lanes);
                let mut rets = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let mut lane_args: Vec<Value> =
                        args.iter().map(|v| v.lane(l).clone()).collect();
                    let (t, r) =
                        builtins::dispatch_byref(bidx, &mut lane_args).map_err(lane_err)?;
                    targets.push(t);
                    rets.push(r);
                }
                self.regs[abs] = MVal::from_lanes(targets);
                self.regs[abs + 1] = MVal::from_lanes(rets);
            }
            return Ok(());
        }
        if all_uni {
            let lane_args: Vec<Value> = args.iter().map(|v| v.lane(0).clone()).collect();
            let r = builtins::dispatch(bidx, &lane_args, &mut NoHost).map_err(uni_err)?;
            self.regs[abs] = MVal::Uni(r);
        } else {
            // Split execution: clone arguments per lane and run the
            // scalar implementation n times (§4.3).
            let mut out = Vec::with_capacity(self.lanes);
            for l in 0..self.lanes {
                let lane_args: Vec<Value> = args.iter().map(|v| v.lane(l).clone()).collect();
                out.push(builtins::dispatch(bidx, &lane_args, &mut NoHost).map_err(lane_err)?);
            }
            self.regs[abs] = MVal::from_lanes(out);
        }
        Ok(())
    }

    fn impure_builtin(&mut self, name: &str, args: &[MVal]) -> Result<MVal, Flow> {
        // Impure builtins count as multivalent when their arguments (or
        // their per-lane results) differ.
        match name {
            "print" => {
                let v = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!v.is_uni());
                for l in 0..self.lanes {
                    let s = v.lane(l).to_php_string();
                    self.outputs[l].push_str(&s);
                }
                Ok(MVal::Uni(Value::Int(1)))
            }
            "exit" | "die" => {
                self.account(false);
                if let Some(v) = args.first() {
                    for l in 0..self.lanes {
                        if matches!(v.lane(l), Value::Str(_)) {
                            let s = v.lane(l).to_php_string();
                            self.outputs[l].push_str(&s);
                        }
                    }
                }
                Err(Flow::Exit)
            }
            "header" => {
                let h = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!h.is_uni());
                for l in 0..self.lanes {
                    let text = h.lane(l).to_php_string();
                    match text.split_once(':') {
                        Some((n, v)) => {
                            self.headers[l].push((n.trim().to_string(), v.trim().to_string()))
                        }
                        None => {
                            return Err(if h.is_uni() {
                                Flow::GroupFatal("header(): malformed header".into())
                            } else {
                                Flow::Diverged("per-lane header error")
                            })
                        }
                    }
                }
                Ok(MVal::Uni(Value::Null))
            }
            "http_response_code" => {
                let c = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!c.is_uni());
                for l in 0..self.lanes {
                    let code = c.lane(l).to_php_int();
                    if !(100..=599).contains(&code) {
                        return Err(if c.is_uni() {
                            Flow::GroupFatal("http_response_code(): bad code".into())
                        } else {
                            Flow::Diverged("per-lane status error")
                        });
                    }
                    self.statuses[l] = code as u16;
                }
                Ok(MVal::Uni(Value::Bool(true)))
            }
            "setcookie" => {
                let n = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                let v = args.get(1).cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(!n.is_uni() || !v.is_uni());
                for l in 0..self.lanes {
                    self.headers[l].push((
                        "Set-Cookie".to_string(),
                        format!(
                            "{}={}",
                            n.lane(l).to_php_string(),
                            v.lane(l).to_php_string()
                        ),
                    ));
                }
                Ok(MVal::Uni(Value::Bool(true)))
            }
            "session_start" => {
                self.account(true);
                if !self.session_started {
                    self.session_started = true;
                    let mut sessions = Vec::with_capacity(self.lanes);
                    for l in 0..self.lanes {
                        match self.session_cookies[l].clone() {
                            None => sessions.push(Value::empty_array()),
                            Some(cookie) => {
                                let obj = ObjectName(format!("reg:sess:{cookie}"));
                                let sim = self
                                    .ctx
                                    .register_read(self.rids[l], &obj)
                                    .map_err(Flow::Reject)?;
                                let bytes = match sim {
                                    orochi_core::exec::SimResult::Register(b) => b,
                                    _ => None,
                                };
                                sessions.push(match bytes {
                                    Some(b) => Value::from_wire_bytes(&b).map_err(|_| {
                                        Flow::GroupFatal("corrupt session data".into())
                                    })?,
                                    None => Value::empty_array(),
                                });
                            }
                        }
                    }
                    self.globals[3] = MVal::from_lanes(sessions);
                }
                Ok(MVal::Uni(Value::Bool(true)))
            }
            "apc_fetch" => {
                let key = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let k = key.lane(l).to_php_string();
                    let sim = self
                        .ctx
                        .kv_get(self.rids[l], &ObjectName("kv:apc".into()), &k)
                        .map_err(Flow::Reject)?;
                    let bytes = match sim {
                        orochi_core::exec::SimResult::Kv(b) => b,
                        _ => None,
                    };
                    out.push(match bytes {
                        Some(b) => Value::from_wire_bytes(&b)
                            .map_err(|_| Flow::GroupFatal("corrupt apc data".into()))?,
                        None => Value::Bool(false),
                    });
                }
                Ok(MVal::from_lanes(out))
            }
            "apc_store" | "apc_delete" => {
                let key = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(true);
                for l in 0..self.lanes {
                    let k = key.lane(l).to_php_string();
                    let bytes = if name == "apc_store" {
                        Some(
                            args.get(1)
                                .map(|v| v.lane(l).clone())
                                .unwrap_or(Value::Null)
                                .to_wire_bytes(),
                        )
                    } else {
                        None
                    };
                    self.ctx
                        .kv_set(self.rids[l], &ObjectName("kv:apc".into()), &k, bytes)
                        .map_err(Flow::Reject)?;
                }
                Ok(MVal::Uni(Value::Bool(true)))
            }
            "db_begin" => {
                self.account(true);
                for l in 0..self.lanes {
                    if self.txns[l].is_some() {
                        return Err(Flow::GroupFatal("nested transaction".into()));
                    }
                    let h = self
                        .ctx
                        .db_begin(self.rids[l], &ObjectName("db:main".into()))
                        .map_err(Flow::Reject)?;
                    self.txns[l] = Some(h);
                }
                Ok(MVal::Uni(Value::Bool(true)))
            }
            "db_query" => {
                let sql = args.first().cloned().unwrap_or(MVal::Uni(Value::Null));
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let text = sql.lane(l).to_php_string();
                    let result = if self.txns[l].is_some() {
                        let handle = self.txns[l].as_mut().expect("checked above");
                        self.ctx.db_query(handle, &text).map_err(Flow::Reject)?
                    } else {
                        // Auto-commit single-statement transaction.
                        let mut handle = self
                            .ctx
                            .db_begin(self.rids[l], &ObjectName("db:main".into()))
                            .map_err(Flow::Reject)?;
                        let r = self
                            .ctx
                            .db_query(&mut handle, &text)
                            .map_err(Flow::Reject)?;
                        self.ctx.db_finish(handle, true).map_err(Flow::Reject)?;
                        r
                    };
                    out.push(db_query_result_to_value(
                        result,
                        &mut self.last_insert_id[l],
                        &mut self.last_affected[l],
                    ));
                }
                Ok(MVal::from_lanes(out))
            }
            "db_commit" | "db_rollback" => {
                self.account(true);
                let committed = name == "db_commit";
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let handle = match self.txns[l].take() {
                        Some(h) => h,
                        None => {
                            return Err(Flow::GroupFatal(format!("{name}() without transaction")))
                        }
                    };
                    let ok = self
                        .ctx
                        .db_finish(handle, committed)
                        .map_err(Flow::Reject)?;
                    out.push(Value::Bool(if committed { ok } else { true }));
                }
                Ok(MVal::from_lanes(out))
            }
            "db_insert_id" => {
                self.account(true);
                let vals = self.last_insert_id.iter().map(|i| Value::Int(*i)).collect();
                Ok(MVal::from_lanes(vals))
            }
            "db_affected_rows" => {
                self.account(true);
                let vals = self.last_affected.iter().map(|i| Value::Int(*i)).collect();
                Ok(MVal::from_lanes(vals))
            }
            "time" | "microtime" | "getpid" | "uniqid" => {
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                let kind = if name == "getpid" { "pid" } else { name };
                for l in 0..self.lanes {
                    let v = self.ctx.nondet(self.rids[l], kind).map_err(Flow::Reject)?;
                    out.push(match v {
                        NondetValue::Time(t) => Value::Int(t),
                        NondetValue::Microtime(t) => Value::Float(t),
                        NondetValue::Pid(p) => Value::Int(p),
                        NondetValue::Uniqid(u) => Value::str(u),
                        NondetValue::Rand(_) => {
                            return Err(Flow::Reject(Rejection::NondetKindMismatch {
                                rid: self.rids[l],
                            }))
                        }
                    });
                }
                Ok(MVal::from_lanes(out))
            }
            "mt_rand" | "rand" => {
                self.account(true);
                let mut out = Vec::with_capacity(self.lanes);
                for l in 0..self.lanes {
                    let v = self
                        .ctx
                        .nondet(self.rids[l], "rand")
                        .map_err(Flow::Reject)?;
                    let raw = match v {
                        NondetValue::Rand(r) => r,
                        _ => {
                            return Err(Flow::Reject(Rejection::NondetKindMismatch {
                                rid: self.rids[l],
                            }))
                        }
                    };
                    let lane_args: Vec<Value> = args.iter().map(|v| v.lane(l).clone()).collect();
                    out.push(builtins::mt_rand_reduce(raw, &lane_args).map_err(lane_err)?);
                }
                Ok(MVal::from_lanes(out))
            }
            other => Err(Flow::GroupFatal(format!(
                "impure builtin {other}() not handled in grouped mode"
            ))),
        }
    }
}
