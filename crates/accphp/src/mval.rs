//! Multivalues: the program state of a superposed execution (§3.1, §4.3).
//!
//! A multivalue holds one value per request ("lane") in the group. When
//! all lanes are identical the multivalue *collapses* to a univalue —
//! "this is crucial to deduplication" (§4.3): collapsed values let
//! subsequent instructions execute once instead of n times.

use orochi_php::Value;
use std::sync::Arc;

/// A value of the superposed execution: either one value shared by every
/// lane, or one value per lane.
#[derive(Debug, Clone)]
pub enum MVal {
    /// All lanes hold this value.
    Uni(Value),
    /// Per-lane values; the vector length always equals the group's lane
    /// count ("a collapse is all or nothing", §4.3).
    Multi(Arc<Vec<Value>>),
}

impl MVal {
    /// A univalue.
    pub fn uni(v: Value) -> Self {
        MVal::Uni(v)
    }

    /// Builds from per-lane values, collapsing when they all agree.
    pub fn from_lanes(lanes: Vec<Value>) -> Self {
        debug_assert!(!lanes.is_empty(), "groups have at least one lane");
        if lanes.len() > 1 && lanes.iter().skip(1).all(|v| v.identical(&lanes[0])) {
            return MVal::Uni(lanes.into_iter().next().expect("non-empty"));
        }
        if lanes.len() == 1 {
            return MVal::Uni(lanes.into_iter().next().expect("non-empty"));
        }
        MVal::Multi(Arc::new(lanes))
    }

    /// True if the value is shared by all lanes.
    pub fn is_uni(&self) -> bool {
        matches!(self, MVal::Uni(_))
    }

    /// The value in lane `l`.
    pub fn lane(&self, l: usize) -> &Value {
        match self {
            MVal::Uni(v) => v,
            MVal::Multi(vs) => &vs[l],
        }
    }

    /// Materializes per-lane values (scalar expansion for univalues).
    pub fn expand(&self, lanes: usize) -> Vec<Value> {
        match self {
            MVal::Uni(v) => vec![v.clone(); lanes],
            MVal::Multi(vs) => {
                debug_assert_eq!(vs.len(), lanes, "multivalue lane count");
                vs.as_ref().clone()
            }
        }
    }

    /// Applies a fallible scalar function lanewise; executes once for
    /// univalues, per lane otherwise (with collapse).
    pub fn map1<E>(
        &self,
        lanes: usize,
        mut f: impl FnMut(&Value) -> Result<Value, E>,
    ) -> Result<MVal, E> {
        match self {
            MVal::Uni(v) => Ok(MVal::Uni(f(v)?)),
            MVal::Multi(vs) => {
                debug_assert_eq!(vs.len(), lanes, "multivalue lane count");
                let mut out = Vec::with_capacity(lanes);
                for v in vs.iter() {
                    out.push(f(v)?);
                }
                Ok(MVal::from_lanes(out))
            }
        }
    }

    /// Applies a fallible scalar binary function componentwise with
    /// scalar expansion (§4.3 "primitive types").
    pub fn map2<E>(
        a: &MVal,
        b: &MVal,
        lanes: usize,
        mut f: impl FnMut(&Value, &Value) -> Result<Value, E>,
    ) -> Result<MVal, E> {
        match (a, b) {
            (MVal::Uni(x), MVal::Uni(y)) => Ok(MVal::Uni(f(x, y)?)),
            _ => {
                let mut out = Vec::with_capacity(lanes);
                for l in 0..lanes {
                    out.push(f(a.lane(l), b.lane(l))?);
                }
                Ok(MVal::from_lanes(out))
            }
        }
    }

    /// Per-lane truthiness; `Ok(b)` when uniform, `Err(())` when the
    /// lanes disagree (branch divergence).
    #[allow(clippy::result_unit_err)]
    pub fn uniform_truthiness(&self, lanes: usize) -> Result<bool, ()> {
        match self {
            MVal::Uni(v) => Ok(v.is_truthy()),
            MVal::Multi(vs) => {
                debug_assert_eq!(vs.len(), lanes, "multivalue lane count");
                let first = vs[0].is_truthy();
                if vs.iter().skip(1).all(|v| v.is_truthy() == first) {
                    Ok(first)
                } else {
                    Err(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lanes_collapses_identical() {
        let m = MVal::from_lanes(vec![Value::Int(4), Value::Int(4), Value::Int(4)]);
        assert!(m.is_uni());
        let m = MVal::from_lanes(vec![Value::Int(4), Value::Int(5), Value::Int(4)]);
        assert!(!m.is_uni());
    }

    #[test]
    fn collapse_uses_identity_not_loose_equality() {
        // 4 == "4" loosely, but the lanes are NOT identical; collapsing
        // them would change later type-sensitive behaviour.
        let m = MVal::from_lanes(vec![Value::Int(4), Value::str("4")]);
        assert!(!m.is_uni());
    }

    #[test]
    fn single_lane_groups_are_always_uni() {
        let m = MVal::from_lanes(vec![Value::str("only")]);
        assert!(m.is_uni());
    }

    #[test]
    fn map2_scalar_expansion() {
        let a = MVal::Uni(Value::Int(10));
        let b = MVal::from_lanes(vec![Value::Int(1), Value::Int(2)]);
        let sum = MVal::map2::<()>(&a, &b, 2, |x, y| {
            Ok(Value::Int(x.to_php_int() + y.to_php_int()))
        })
        .unwrap();
        assert!(sum.lane(0).identical(&Value::Int(11)));
        assert!(sum.lane(1).identical(&Value::Int(12)));
    }

    #[test]
    fn map2_collapses_when_results_agree() {
        // Like the paper's max($sum, $_GET['z']) example: differing
        // inputs, equal outputs -> univalue (Fig. 2 / §4.3).
        let a = MVal::from_lanes(vec![Value::Int(4), Value::Int(6)]);
        let b = MVal::Uni(Value::Int(10));
        let max = MVal::map2::<()>(&a, &b, 2, |x, y| {
            Ok(Value::Int(x.to_php_int().max(y.to_php_int())))
        })
        .unwrap();
        assert!(max.is_uni());
        assert!(max.lane(0).identical(&Value::Int(10)));
    }

    #[test]
    fn uniform_truthiness_detects_divergence() {
        let ok = MVal::from_lanes(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(ok.uniform_truthiness(2), Ok(true));
        let div = MVal::from_lanes(vec![Value::Int(1), Value::Int(0)]);
        assert_eq!(div.uniform_truthiness(2), Err(()));
    }

    #[test]
    fn expand_replicates_uni() {
        let m = MVal::Uni(Value::str("x"));
        let lanes = m.expand(3);
        assert_eq!(lanes.len(), 3);
        assert!(lanes.iter().all(|v| v.identical(&Value::str("x"))));
    }
}
