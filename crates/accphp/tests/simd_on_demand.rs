//! Direct tests of SIMD-on-demand execution, including the paper's own
//! worked example (§4.3 / Fig. 2).

use orochi_accphp::groupvm::{run_group, GroupRunError};
use orochi_common::ids::{CtlFlowTag, RequestId};
use orochi_core::audit::{AuditConfig, AuditContext};
use orochi_core::reports::Reports;
use orochi_php::vm::RequestInput;
use orochi_php::{compile, parse_script};
use orochi_trace::{Event, HttpRequest, HttpResponse, Trace};

/// Builds a (trace, reports) pair for `lanes` op-less requests with the
/// given GET parameters, plus the audit context inputs.
fn fixtures(params: &[Vec<(&str, &str)>]) -> (Vec<RequestId>, Vec<RequestInput>, Trace, Reports) {
    let mut events = Vec::new();
    let mut rids = Vec::new();
    let mut inputs = Vec::new();
    for (l, lane_params) in params.iter().enumerate() {
        let rid = RequestId(l as u64 + 1);
        rids.push(rid);
        events.push(Event::Request(
            rid,
            HttpRequest::get("/prog.php", lane_params),
        ));
        inputs.push(RequestInput {
            method: "GET".into(),
            path: "/prog.php".into(),
            get: lane_params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            ..Default::default()
        });
    }
    for &rid in &rids {
        events.push(Event::Response(rid, HttpResponse::ok(rid, "")));
    }
    let reports = Reports {
        groupings: vec![(CtlFlowTag(1), rids.clone())],
        op_logs: Default::default(),
        op_counts: rids.iter().map(|r| (*r, 0)).collect(),
        nondet: Default::default(),
    };
    (rids, inputs, Trace { events }, reports)
}

/// The paper's §4.3 example:
///
/// ```php
/// $sum = $_GET['x'] + $_GET['y'];
/// $larger = max($sum, $_GET['z']);
/// $odd = ($larger % 2) ? "True" : "False";
/// echo $odd;
/// ```
///
/// r1: x=1&y=3&z=10, r2: x=2&y=4&z=10. `$sum` is the multivalue [4, 6];
/// `max` collapses it against z=10 to the univalue 10, so "lines 3 and 4
/// execute once, rather than once for each request".
#[test]
fn paper_section_43_example_collapses() {
    let src = r#"<?php
        $sum = intval($_GET['x']) + intval($_GET['y']);
        $larger = max($sum, intval($_GET['z']));
        $odd = ($larger % 2) ? 'True' : 'False';
        echo $odd;
    "#;
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) = fixtures(&[
        vec![("x", "1"), ("y", "3"), ("z", "10")],
        vec![("x", "2"), ("y", "4"), ("z", "10")],
    ]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    let outcome = run_group(&script, &rids, &inputs, &mut ctx).unwrap();
    // Both lanes print "False" (10 % 2 == 0).
    assert_eq!(outcome.outputs[0].body, "False");
    assert_eq!(outcome.outputs[1].body, "False");
    // The additions are multivalent, but max() collapsed: the modulo,
    // ternary branch, and echo ran univalently. The multivalent share
    // is a handful of instructions out of dozens.
    assert!(
        outcome.univalent > outcome.multivalent,
        "univalent {} multivalent {}",
        outcome.univalent,
        outcome.multivalent
    );
}

#[test]
fn branch_divergence_detected() {
    let src = r#"<?php
        if (intval($_GET['x']) > 5) { echo 'big'; } else { echo 'small'; }
    "#;
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) = fixtures(&[vec![("x", "10")], vec![("x", "1")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    match run_group(&script, &rids, &inputs, &mut ctx) {
        Err(GroupRunError::Diverged(_)) => {}
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn uniform_branches_do_not_diverge() {
    let src = r#"<?php
        if (intval($_GET['x']) > 5) { echo 'big:' . $_GET['x']; } else { echo 'small'; }
    "#;
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    // Different values, same truthiness: no divergence; outputs differ
    // per lane (multivalent echo).
    let (rids, inputs, trace, reports) = fixtures(&[vec![("x", "10")], vec![("x", "20")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    let outcome = run_group(&script, &rids, &inputs, &mut ctx).unwrap();
    assert_eq!(outcome.outputs[0].body, "big:10");
    assert_eq!(outcome.outputs[1].body, "big:20");
}

#[test]
fn iteration_length_divergence_detected() {
    let src = r#"<?php
        $parts = explode(',', $_GET['csv']);
        foreach ($parts as $p) { echo $p; }
    "#;
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) = fixtures(&[vec![("csv", "a,b")], vec![("csv", "a,b,c")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    match run_group(&script, &rids, &inputs, &mut ctx) {
        Err(GroupRunError::Diverged(_)) => {}
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn same_length_iterations_run_multivalently() {
    let src = r#"<?php
        $parts = explode(',', $_GET['csv']);
        $out = '';
        foreach ($parts as $p) { $out .= strtoupper($p); }
        echo $out;
    "#;
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) =
        fixtures(&[vec![("csv", "a,b,c")], vec![("csv", "x,y,z")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    let outcome = run_group(&script, &rids, &inputs, &mut ctx).unwrap();
    assert_eq!(outcome.outputs[0].body, "ABC");
    assert_eq!(outcome.outputs[1].body, "XYZ");
}

#[test]
fn uniform_fatal_yields_identical_500s() {
    let src = "<?php echo 1 % intval($_GET['zero']);";
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) = fixtures(&[vec![("zero", "0")], vec![("zero", "0")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    let outcome = run_group(&script, &rids, &inputs, &mut ctx).unwrap();
    for out in &outcome.outputs {
        assert_eq!(out.status, 500);
        assert!(out.body.contains("modulo by zero"));
    }
}

#[test]
fn per_lane_builtin_split_matches_scalar() {
    // sprintf over multivalues: split execution must equal running the
    // scalar builtin per request.
    let src = r#"<?php
        echo sprintf('%05d:%s', intval($_GET['n']), $_GET['s']);
    "#;
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) =
        fixtures(&[vec![("n", "42"), ("s", "a")], vec![("n", "7"), ("s", "b")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    let outcome = run_group(&script, &rids, &inputs, &mut ctx).unwrap();
    assert_eq!(outcome.outputs[0].body, "00042:a");
    assert_eq!(outcome.outputs[1].body, "00007:b");
}

#[test]
fn single_lane_group_is_fully_univalent() {
    let src = "<?php echo intval($_GET['x']) * 3;";
    let script = compile("/prog.php", &parse_script(src).unwrap()).unwrap();
    let (rids, inputs, trace, reports) = fixtures(&[vec![("x", "5")]]);
    let config = AuditConfig::new();
    let mut ctx = AuditContext::prepare(&trace, &reports, &config).unwrap();
    let outcome = run_group(&script, &rids, &inputs, &mut ctx).unwrap();
    assert_eq!(outcome.outputs[0].body, "15");
    assert_eq!(outcome.multivalent, 0);
}
