//! The shared "framework prelude" every application script runs.
//!
//! Real LAMP applications spend most of their instructions in
//! request-independent framework code — configuration, localization,
//! permission tables, skin/chrome rendering (MediaWiki invokes 74k lines
//! for a page view, §5.4). That is precisely why the paper observes
//! α > 0.95: the bulk of each request's instructions are identical
//! across the group and execute univalently (§5.2, Fig. 11).
//!
//! Our hand-written applications would otherwise be almost entirely
//! data-dependent, which would understate α and the dedup opportunity.
//! The prelude reproduces the framework share: several hundred
//! input-independent instructions per request (config construction,
//! message catalog, permission checks, navigation/chrome rendering, and
//! a small "template compilation" loop), all of which collapse to
//! univalues during grouped re-execution.

/// Builds a full script: prelude functions + prelude invocation +
/// the page body. `site` names the application in the rendered chrome.
pub fn with_prelude(site: &str, body: &str) -> String {
    format!(
        r#"<?php
function db_quote($s) {{
    return "'" . str_replace("'", "''", strval($s)) . "'";
}}
function site_config() {{
    $cfg = array();
    $cfg['name'] = '{site}';
    $cfg['version'] = '1.26.2';
    $cfg['lang'] = 'en';
    $cfg['charset'] = 'UTF-8';
    $cfg['skin'] = 'vector';
    $cfg['cache_ttl'] = 3600;
    $cfg['debug'] = false;
    $cfg['read_only'] = false;
    $cfg['max_upload'] = 8388608;
    $cfg['timezone'] = 'UTC';
    $cfg['namespaces'] = array('Main', 'Talk', 'User', 'Help', 'Project', 'Template', 'Category', 'Special');
    $cfg['rights'] = array('read' => 1, 'edit' => 1, 'move' => 1, 'delete' => 0, 'protect' => 0, 'admin' => 0);
    $cfg['extensions'] = array('parser', 'cache', 'search', 'diff', 'history', 'watchlist');
    return $cfg;
}}
function i18n_messages() {{
    $m = array();
    $m['home'] = 'Home';
    $m['search'] = 'Search';
    $m['login'] = 'Log in';
    $m['logout'] = 'Log out';
    $m['edit'] = 'Edit';
    $m['history'] = 'History';
    $m['talk'] = 'Discussion';
    $m['contents'] = 'Contents';
    $m['recent'] = 'Recent changes';
    $m['random'] = 'Random page';
    $m['help'] = 'Help';
    $m['tools'] = 'Tools';
    $m['print'] = 'Printable version';
    $m['permalink'] = 'Permanent link';
    $m['info'] = 'Page information';
    $m['footer'] = 'Content is available under the license.';
    $m['privacy'] = 'Privacy policy';
    $m['about'] = 'About';
    $m['disclaimer'] = 'Disclaimers';
    $m['ns_prefix'] = 'ns-';
    return $m;
}}
function check_permission($cfg, $action) {{
    $allowed = 0;
    foreach ($cfg['rights'] as $right => $granted) {{
        if ($right === $action && $granted) {{
            $allowed = 1;
        }}
    }}
    return $allowed;
}}
function compile_templates($cfg) {{
    $templates = array();
    $parts = array('header', 'sidebar', 'content', 'toc', 'footer', 'search', 'notice', 'badge');
    foreach ($parts as $p) {{
        $checksum = 0;
        $name = $p . '.tpl';
        for ($i = 0; $i < strlen($name); $i++) {{
            $checksum = ($checksum * 31 + $i * 7) % 65521;
        }}
        $templates[$p] = $name . ':' . $checksum . ':' . $cfg['version'];
    }}
    return $templates;
}}
function render_chrome($cfg, $m, $templates) {{
    $out = '<!DOCTYPE html><html lang="' . $cfg['lang'] . '"><head>';
    $out .= '<meta charset="' . $cfg['charset'] . '"/>';
    $out .= '<link rel="stylesheet" href="/skins/' . $cfg['skin'] . '.css"/>';
    $out .= '</head><body class="skin-' . $cfg['skin'] . '">';
    $out .= '<div id="banner">' . htmlspecialchars($cfg['name']) . '</div>';
    $out .= '<ul id="nav">';
    $navs = array('home', 'contents', 'recent', 'random', 'help');
    foreach ($navs as $n) {{
        $out .= '<li class="nav-' . $n . '">' . $m[$n] . '</li>';
    }}
    $out .= '</ul><ul id="ns">';
    foreach ($cfg['namespaces'] as $ns) {{
        $out .= '<li>' . $m['ns_prefix'] . strtolower($ns) . '</li>';
    }}
    $out .= '</ul><ul id="tools">';
    $tools = array('print', 'permalink', 'info');
    foreach ($tools as $t) {{
        $out .= '<li>' . $m[$t] . '</li>';
    }}
    $out .= '</ul>';
    $badge = 0;
    foreach ($templates as $p => $sig) {{
        $badge = ($badge + strlen($sig)) % 997;
    }}
    $out .= '<div id="gen" data-badge="' . $badge . '"></div>';
    return $out;
}}
function render_footer($cfg, $m) {{
    $out = '<div id="footer"><p>' . $m['footer'] . '</p><ul>';
    $links = array('privacy', 'about', 'disclaimer');
    foreach ($links as $l) {{
        $out .= '<li>' . $m[$l] . '</li>';
    }}
    $out .= '</ul><span class="v">v' . $cfg['version'] . '</span></div></body></html>';
    return $out;
}}
$CFG = site_config();
$MSG = i18n_messages();
$TPL = compile_templates($CFG);
if (!check_permission($CFG, 'read')) {{
    http_response_code(403);
    die('forbidden');
}}
$CHROME = render_chrome($CFG, $MSG, $TPL);
$FOOTER = render_footer($CFG, $MSG);
{body}
"#
    )
}

#[cfg(test)]
mod tests {
    use orochi_php::{compile, parse_script};

    #[test]
    fn prelude_compiles_and_runs() {
        let src = super::with_prelude("test-site", "echo $CHROME; echo 'x'; echo $FOOTER;");
        let script = compile("/p.php", &parse_script(&src).unwrap()).unwrap();
        let mut backend = orochi_php::backend::NullBackend;
        let input = orochi_php::vm::RequestInput {
            method: "GET".into(),
            path: "/p.php".into(),
            ..Default::default()
        };
        let result = orochi_php::vm::run_request(&script, &mut backend, &input).unwrap();
        assert_eq!(result.output.status, 200);
        assert!(result.output.body.contains("test-site"));
        assert!(result.output.body.contains("footer"));
        // The prelude is a few hundred instructions of framework work.
        assert!(
            result.stats.instructions > 400,
            "prelude too small: {}",
            result.stats.instructions
        );
    }
}
