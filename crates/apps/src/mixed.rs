//! The mixed multi-tenant application: all four apps behind one
//! front-end.
//!
//! The adversarial campaign (and any multi-tenant experiment) wants a
//! single server instance running wiki, forum, hotcrp, and shop at
//! once. Each tenant's scripts are re-rooted under `/<tenant>/…` (the
//! apps share colliding paths like `/login.php`), their schemas are
//! concatenated (table names are disjoint by construction, which a
//! unit test pins), and their KV keyspaces are disjoint prefixes
//! (`page:`, `inv:`, `frag:`). Session state separates per tenant
//! because the mixed *workload* generator prefixes every session cookie
//! value with the tenant name, and cookie values become register object
//! names (`reg:sess:<value>`) without ever being compared to request
//! fields by any script.

use crate::AppDefinition;

/// The tenants, in route order. Kept in one place so the mixed
/// workload generator and the app agree on the prefixes.
pub const TENANTS: [&str; 4] = ["wiki", "forum", "hotcrp", "shop"];

/// Builds the combined application: every tenant's scripts re-rooted
/// under `/<tenant>`, every schema applied to the one shared `db:main`.
pub fn app() -> AppDefinition {
    let mut scripts = Vec::new();
    let mut schema = Vec::new();
    for tenant in crate::all_apps() {
        for (path, src) in tenant.scripts {
            scripts.push((format!("/{}{}", tenant.name, path), src));
        }
        schema.extend(tenant.schema);
    }
    AppDefinition {
        name: "mixed",
        scripts,
        schema,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tenant_names_match_all_apps() {
        let names: Vec<&str> = crate::all_apps().iter().map(|a| a.name).collect();
        assert_eq!(names, TENANTS);
    }

    #[test]
    fn mixed_compiles_with_rerooted_paths() {
        let mixed = app();
        let scripts = mixed.compile().unwrap_or_else(|e| panic!("mixed: {e}"));
        assert!(scripts.contains_key("/wiki/wiki.php"));
        assert!(scripts.contains_key("/forum/topic.php"));
        assert!(scripts.contains_key("/hotcrp/paper.php"));
        assert!(scripts.contains_key("/shop/checkout.php"));
        // The colliding login endpoints stay distinct per tenant.
        for t in TENANTS {
            assert!(scripts.contains_key(&format!("/{t}/login.php")), "{t}");
        }
    }

    #[test]
    fn schemas_concatenate_without_collisions() {
        let db = app().initial_db();
        let tables = db.table_names();
        let unique: HashSet<&String> = tables.iter().collect();
        assert_eq!(unique.len(), tables.len(), "table names must be disjoint");
        // One table per tenant as a spot check.
        for t in ["pages", "topics", "papers", "products"] {
            assert!(tables.iter().any(|n| n == t), "missing {t}");
        }
    }
}
