//! The shop application (session-heavy storefront).
//!
//! The three paper apps are SQL-dominated; this storefront deliberately
//! routes most of its operations through the two sub-log types they
//! underuse. The product *catalog* lives in SQL, but the hot paths run on
//! the other two object types:
//!
//! * **Session registers** hold the per-customer login state and the
//!   cart (`$_SESSION['cart']`, a `id:qty|id:qty` string), so every
//!   browse/add/checkout/abandon request opens with a register read and
//!   closes with the session write-back.
//! * **The APC key-value store** holds the per-product inventory
//!   counters (`inv:<id>`) and the rendered product fragments
//!   (`frag:prod:<id>`). Inventory is maintained *check-then-act*: a
//!   request fetches the counter, decides, and stores a new value in a
//!   separate operation — two linearization points, so concurrent
//!   checkouts race on the counter and the audit must feed each read the
//!   value the log's order actually implies (§4.5, `kv.get(k, s)`).
//!
//! Checkout is the only transaction-heavy path (order + order-items
//! insert), and restocking is the cache-invalidation path (price changes
//! delete the cached fragment, like the wiki's edit-invalidates-page).

use crate::helpers::with_prelude;
use crate::AppDefinition;

/// `/login.php` — establish the customer session (POST user).
fn login() -> String {
    with_prelude(
        "orochi-shop",
        r#"
session_start();
$user = $_POST['user'];
$_SESSION['user'] = $user;
$_SESSION['cart'] = '';
$_SESSION['since'] = time();
echo $CHROME;
echo '<p>welcome ' . htmlspecialchars($user) . '</p>';
echo $FOOTER;
"#,
    )
}

/// `/product.php?id=N` — product page: cached rendered fragment plus a
/// live inventory read (both KV), DB only on cache misses.
fn product() -> String {
    with_prelude(
        "orochi-shop",
        r#"
$id = intval($_GET['id']);
$user = '';
$cart = '';
if (isset($_COOKIE['sess'])) {
    session_start();
    if (isset($_SESSION['user'])) {
        $user = $_SESSION['user'];
    }
    if (isset($_SESSION['cart'])) {
        $cart = $_SESSION['cart'];
    }
}
echo $CHROME;
$frag = apc_fetch('frag:prod:' . $id);
if ($frag === false) {
    $rows = db_query('SELECT id, name, price FROM products WHERE id = ' . $id);
    if (count($rows) == 0) {
        http_response_code(404);
        echo '<p>no such product</p>';
        echo $FOOTER;
        exit();
    }
    $frag = '<div class="prod"><h1>' . htmlspecialchars($rows[0]['name'])
        . '</h1><p class="price">$' . $rows[0]['price'] . '</p></div>';
    apc_store('frag:prod:' . $id, $frag);
}
echo $frag;
$inv = apc_fetch('inv:' . $id);
if ($inv === false) {
    $stock_rows = db_query('SELECT stock FROM inventory WHERE product_id = ' . $id);
    $inv = count($stock_rows) == 0 ? 0 : $stock_rows[0]['stock'];
    apc_store('inv:' . $id, strval($inv));
}
$inv = intval($inv);
if ($inv > 0) {
    echo '<p class="stock">' . $inv . ' in stock</p>';
} else {
    echo '<p class="stock">out of stock</p>';
}
if ($user != '') {
    $items = $cart == '' ? 0 : count(explode('|', $cart));
    echo '<p class="badge">' . htmlspecialchars($user) . ': '
        . $items . ' item(s) in cart</p>';
}
echo $FOOTER;
"#,
    )
}

/// `/cart.php` — add to cart (POST id, qty); registered customers only.
/// The inventory check is the *check* half of check-then-act: the read
/// can go stale by the time checkout performs the *act*.
fn cart_add() -> String {
    with_prelude(
        "orochi-shop",
        r#"
session_start();
$user = isset($_SESSION['user']) ? $_SESSION['user'] : '';
if ($user == '') {
    http_response_code(403);
    echo 'login required';
    exit();
}
$id = intval($_POST['id']);
$qty = intval($_POST['qty']);
if ($qty < 1) {
    $qty = 1;
}
echo $CHROME;
$inv = intval(apc_fetch('inv:' . $id));
if ($inv < $qty) {
    echo '<p class="cart">only ' . $inv . ' of #' . $id . ' left</p>';
} else {
    $cart = isset($_SESSION['cart']) ? $_SESSION['cart'] : '';
    $line = $id . ':' . $qty;
    $_SESSION['cart'] = $cart == '' ? $line : $cart . '|' . $line;
    echo '<p class="cart">added ' . $qty . ' x #' . $id . '</p>';
}
$cart = isset($_SESSION['cart']) ? $_SESSION['cart'] : '';
$items = $cart == '' ? 0 : count(explode('|', $cart));
echo '<p class="badge">' . $items . ' item(s) in cart</p>';
echo $FOOTER;
"#,
    )
}

/// `/checkout.php` — place the order: price lookup + order insert in one
/// transaction, then the check-then-act inventory decrement (KV) and the
/// cart reset (register).
fn checkout() -> String {
    with_prelude(
        "orochi-shop",
        r#"
session_start();
$user = isset($_SESSION['user']) ? $_SESSION['user'] : '';
if ($user == '') {
    http_response_code(403);
    echo 'login required';
    exit();
}
$cart = isset($_SESSION['cart']) ? $_SESSION['cart'] : '';
echo $CHROME;
if ($cart == '') {
    echo '<p class="order">cart is empty</p>';
    echo $FOOTER;
    exit();
}
$items = explode('|', $cart);
$now = time();
$total = 0;
db_begin();
foreach ($items as $it) {
    $parts = explode(':', $it);
    $pid = intval($parts[0]);
    $qty = intval($parts[1]);
    $rows = db_query('SELECT price FROM products WHERE id = ' . $pid);
    $price = count($rows) == 0 ? 0 : intval($rows[0]['price']);
    $total = $total + $price * $qty;
}
db_query('INSERT INTO orders (customer, total, ts) VALUES ('
    . db_quote($user) . ', ' . $total . ', ' . $now . ')');
$oid = db_insert_id();
foreach ($items as $it) {
    $parts = explode(':', $it);
    db_query('INSERT INTO order_items (order_id, product_id, qty) VALUES ('
        . $oid . ', ' . intval($parts[0]) . ', ' . intval($parts[1]) . ')');
}
$ok = db_commit();
if ($ok) {
    foreach ($items as $it) {
        $parts = explode(':', $it);
        $pid = intval($parts[0]);
        $qty = intval($parts[1]);
        $inv = intval(apc_fetch('inv:' . $pid));
        apc_store('inv:' . $pid, strval($inv - $qty));
    }
    $_SESSION['cart'] = '';
    echo '<p class="order">order ' . $oid . ' placed by '
        . htmlspecialchars($user) . ' total=' . $total . '</p>';
} else {
    echo '<p class="order">checkout failed</p>';
}
echo $FOOTER;
"#,
    )
}

/// `/logout.php` — abandon the session: drop the cart, end the login.
fn logout() -> String {
    with_prelude(
        "orochi-shop",
        r#"
session_start();
$user = isset($_SESSION['user']) ? $_SESSION['user'] : '';
$cart = isset($_SESSION['cart']) ? $_SESSION['cart'] : '';
$left = $cart == '' ? 0 : count(explode('|', $cart));
$_SESSION['cart'] = '';
$_SESSION['user'] = '';
echo $CHROME;
echo '<p class="bye">bye ' . htmlspecialchars($user) . ', '
    . $left . ' item(s) abandoned</p>';
echo $FOOTER;
"#,
    )
}

/// `/restock.php` — admin restock + repricing (POST id, stock, price):
/// updates the catalog, resets the KV counter, and invalidates the
/// cached fragment (the price it rendered is stale).
fn restock() -> String {
    with_prelude(
        "orochi-shop",
        r#"
session_start();
$user = isset($_SESSION['user']) ? $_SESSION['user'] : '';
if ($user != 'admin') {
    http_response_code(403);
    echo 'admin required';
    exit();
}
$id = intval($_POST['id']);
$stock = intval($_POST['stock']);
$price = intval($_POST['price']);
db_begin();
db_query('UPDATE products SET price = ' . $price . ' WHERE id = ' . $id);
db_query('UPDATE inventory SET stock = ' . $stock . ' WHERE product_id = ' . $id);
$ok = db_commit();
echo $CHROME;
if ($ok) {
    apc_store('inv:' . $id, strval($stock));
    apc_delete('frag:prod:' . $id);
    echo '<p class="restock">#' . $id . ' restocked to ' . $stock
        . ' at $' . $price . '</p>';
} else {
    echo '<p class="restock">restock failed</p>';
}
echo $FOOTER;
"#,
    )
}

/// The shop application definition.
pub fn app() -> AppDefinition {
    AppDefinition {
        name: "shop",
        scripts: vec![
            ("/login.php".to_string(), login()),
            ("/product.php".to_string(), product()),
            ("/cart.php".to_string(), cart_add()),
            ("/checkout.php".to_string(), checkout()),
            ("/logout.php".to_string(), logout()),
            ("/restock.php".to_string(), restock()),
        ],
        schema: vec![
            "CREATE TABLE products (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, \
             price INT)",
            "CREATE TABLE inventory (product_id INT PRIMARY KEY, stock INT)",
            "CREATE TABLE orders (id INT PRIMARY KEY AUTO_INCREMENT, customer TEXT, \
             total INT, ts INT)",
            "CREATE TABLE order_items (id INT PRIMARY KEY AUTO_INCREMENT, order_id INT, \
             product_id INT, qty INT, INDEX(order_id))",
        ],
    }
}
