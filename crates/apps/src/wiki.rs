//! The wiki application (MediaWiki stand-in).
//!
//! Read-dominated: page views check the APC cache first and fall back to
//! the database, caching the rendered body (the commonality that makes
//! the MediaWiki workload dedup so well, §5.2). Edits run a transaction
//! that updates the page and appends a revision, then invalidate the
//! cache entry. Every script starts with the framework prelude
//! ([`crate::helpers`]), whose instructions are request-independent and
//! re-execute univalently.

use crate::helpers::with_prelude;
use crate::AppDefinition;

/// `/wiki.php?title=X` — view a page.
fn view() -> String {
    with_prelude(
        "orochi-wiki",
        r#"
$title = isset($_GET['title']) ? $_GET['title'] : 'Main_Page';
$user = '';
if (isset($_COOKIE['sess'])) {
    session_start();
    if (isset($_SESSION['user'])) {
        $user = $_SESSION['user'];
    }
}
echo $CHROME;
echo '<h1>' . htmlspecialchars($title) . '</h1>';
if ($user != '') {
    echo '<p class="login">Logged in as ' . htmlspecialchars($user) . '</p>';
}
$cached = apc_fetch('page:' . $title);
if ($cached === false) {
    $rows = db_query('SELECT id, body, views FROM pages WHERE title = '
        . db_quote($title));
    if (count($rows) == 0) {
        http_response_code(404);
        echo '<p>This page does not exist yet.</p>';
        echo $FOOTER;
        exit();
    }
    $body = $rows[0]['body'];
    $html = '<div class="body">' . nl2br(htmlspecialchars($body)) . '</div>';
    apc_store('page:' . $title, $html);
    $cached = $html;
}
echo $cached;
$revs = db_query('SELECT id, ts FROM revisions WHERE title = ' . db_quote($title)
    . ' ORDER BY id DESC LIMIT 5');
echo '<ul class="history">';
foreach ($revs as $r) {
    echo '<li>rev ' . $r['id'] . ' at ' . $r['ts'] . '</li>';
}
echo '</ul>';
echo $FOOTER;
"#,
    )
}

/// `/edit.php` — create or update a page (POST title, body).
fn edit() -> String {
    with_prelude(
        "orochi-wiki",
        r#"
session_start();
$user = isset($_SESSION['user']) ? $_SESSION['user'] : '';
if ($user == '') {
    http_response_code(403);
    echo 'login required';
    exit();
}
$title = $_POST['title'];
$body = $_POST['body'];
$now = time();
db_begin();
$rows = db_query('SELECT id FROM pages WHERE title = ' . db_quote($title));
if (count($rows) == 0) {
    db_query('INSERT INTO pages (title, body, views) VALUES ('
        . db_quote($title) . ', ' . db_quote($body) . ', 0)');
} else {
    db_query('UPDATE pages SET body = ' . db_quote($body)
        . ' WHERE id = ' . $rows[0]['id']);
}
db_query('INSERT INTO revisions (title, author, body, ts) VALUES ('
    . db_quote($title) . ', ' . db_quote($user) . ', '
    . db_quote($body) . ', ' . $now . ')');
$ok = db_commit();
apc_delete('page:' . $title);
echo $CHROME;
echo '<h1>Saved: ' . htmlspecialchars($title) . '</h1>';
if ($ok) {
    echo '<p>Revision ' . db_insert_id() . ' saved by '
        . htmlspecialchars($user) . '.</p>';
} else {
    echo '<p>Save failed.</p>';
}
echo $FOOTER;
"#,
    )
}

/// `/login.php` — establish the session (POST user).
fn login() -> String {
    with_prelude(
        "orochi-wiki",
        r#"
session_start();
$user = $_POST['user'];
$_SESSION['user'] = $user;
$_SESSION['since'] = time();
echo $CHROME;
echo 'welcome ' . htmlspecialchars($user);
echo $FOOTER;
"#,
    )
}

/// The wiki application definition.
pub fn app() -> AppDefinition {
    AppDefinition {
        name: "wiki",
        scripts: vec![
            ("/wiki.php".to_string(), view()),
            ("/edit.php".to_string(), edit()),
            ("/login.php".to_string(), login()),
        ],
        schema: vec![
            "CREATE TABLE pages (id INT PRIMARY KEY AUTO_INCREMENT, title TEXT, \
             body TEXT, views INT, INDEX(title))",
            "CREATE TABLE revisions (id INT PRIMARY KEY AUTO_INCREMENT, title TEXT, \
             author TEXT, body TEXT, ts INT, INDEX(title))",
        ],
    }
}
