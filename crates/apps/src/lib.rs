//! The three evaluation applications, written in the mini-PHP subset.
//!
//! The paper evaluates MediaWiki, phpBB, and HotCRP (§5). Those code
//! bases obviously cannot run on a from-scratch PHP subset, so this
//! crate provides three applications with the same *shapes*:
//!
//! * [`wiki`] — a wiki in the MediaWiki mold: read-dominated page views
//!   with an APC-backed page cache, page edits with revision history in
//!   a transaction.
//! * [`forum`] — a phpBB-style bulletin board: topic lists, topic views
//!   (with view counters updated only for logged-in users, mirroring the
//!   paper's frequency-reducing modification, §5.4), replies in
//!   transactions, sessions for registered users vs. guests.
//! * [`hotcrp`] — a conference-review tool: paper pages with reviews,
//!   paper submissions/updates, and versioned review submission, all in
//!   transactions keyed by the reviewer's session.
//! * [`shop`] — a session-heavy storefront beyond the paper's three:
//!   per-session carts and login state in registers, inventory counters
//!   and a rendered-fragment cache in the KV store (with check-then-act
//!   races), SQL only for the catalog and orders — built to stress the
//!   register and versioned-KV audit paths the other apps underuse.
//!
//! Every application exercises all three shared-object types (session
//! registers, the APC key-value store, the SQL database), the
//! nondeterministic builtins, and enough data-dependent control flow to
//! produce realistic control-flow groupings.

pub mod forum;
pub mod helpers;
pub mod hotcrp;
pub mod mixed;
pub mod shop;
pub mod wiki;

use orochi_php::bytecode::CompiledScript;
use orochi_php::compiler::CompileError;
use orochi_php::{compile, parse_script};
use std::collections::HashMap;

/// An application: its scripts and its database schema.
pub struct AppDefinition {
    /// Application name (used in reports and experiment output).
    pub name: &'static str,
    /// `(path, php source)` pairs.
    pub scripts: Vec<(String, String)>,
    /// `CREATE TABLE` statements.
    pub schema: Vec<&'static str>,
}

impl AppDefinition {
    /// Compiles every script into the routing table the server and the
    /// verifier share.
    ///
    /// # Examples
    ///
    /// ```
    /// let app = orochi_apps::wiki::app();
    /// let scripts = app.compile().unwrap();
    /// assert!(scripts.contains_key("/wiki.php"));
    /// ```
    pub fn compile(&self) -> Result<HashMap<String, CompiledScript>, CompileError> {
        let mut out = HashMap::new();
        for (path, src) in &self.scripts {
            let parsed = parse_script(src).map_err(|e| CompileError {
                message: format!("{path}: {e}"),
            })?;
            out.insert(path.clone(), compile(path, &parsed)?);
        }
        Ok(out)
    }

    /// Builds the initial (empty-schema) database.
    pub fn initial_db(&self) -> orochi_sqldb::Database {
        let mut db = orochi_sqldb::Database::new();
        for stmt in &self.schema {
            db.execute_autocommit(stmt)
                .0
                .unwrap_or_else(|e| panic!("schema statement failed: {e}"));
        }
        db
    }
}

/// All four applications.
pub fn all_apps() -> Vec<AppDefinition> {
    vec![wiki::app(), forum::app(), hotcrp::app(), shop::app()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_compile() {
        for app in all_apps() {
            let scripts = app.compile().unwrap_or_else(|e| {
                panic!("{} failed to compile: {e}", app.name);
            });
            assert!(!scripts.is_empty());
        }
    }

    #[test]
    fn all_schemas_apply() {
        for app in all_apps() {
            let db = app.initial_db();
            assert!(!db.table_names().is_empty(), "{} has tables", app.name);
        }
    }
}
