//! The forum application (phpBB stand-in).
//!
//! Mirrors the paper's phpBB workload shape (§5): a popular topic page
//! viewed by a mix of guests and logged-in users (1:40 registered:guest
//! ratio in the workload), replies from registered users, and a topic
//! index. View counters are bumped only for logged-in viewers — the
//! analogue of the paper's modification that "reduces the frequency of
//! updates to page view counters" (§5.4).

use crate::helpers::with_prelude;
use crate::AppDefinition;

/// `/forum.php` — topic index.
fn index() -> String {
    with_prelude(
        "orochi-forum",
        r#"
$user = '';
if (isset($_COOKIE['sess'])) {
    session_start();
    if (isset($_SESSION['user'])) {
        $user = $_SESSION['user'];
    }
}
echo $CHROME;
echo '<h1>Forum</h1>';
if ($user != '') {
    echo '<p>hello ' . htmlspecialchars($user) . '</p>';
}
$topics = db_query('SELECT id, title, views, replies FROM topics ORDER BY id LIMIT 50');
echo '<table>';
foreach ($topics as $t) {
    echo '<tr><td><a href="/topic.php?id=' . $t['id'] . '">'
        . htmlspecialchars($t['title']) . '</a></td><td>'
        . $t['views'] . ' views</td><td>' . $t['replies'] . ' replies</td></tr>';
}
echo '</table>';
echo $FOOTER;
"#,
    )
}

/// `/topic.php?id=N` — view a topic and its posts.
fn topic() -> String {
    with_prelude(
        "orochi-forum",
        r#"
$id = intval($_GET['id']);
$user = '';
if (isset($_COOKIE['sess'])) {
    session_start();
    if (isset($_SESSION['user'])) {
        $user = $_SESSION['user'];
    }
}
$topics = db_query('SELECT id, title, views FROM topics WHERE id = ' . $id);
if (count($topics) == 0) {
    http_response_code(404);
    echo 'no such topic';
    exit();
}
$topic = $topics[0];
if ($user != '') {
    if (mt_rand(1, 10) == 1) {
        db_query('UPDATE topics SET views = views + 10 WHERE id = ' . $id);
    }
}
echo $CHROME;
echo '<h1>' . htmlspecialchars($topic['title']) . '</h1>';
$posts = db_query('SELECT id, author, body, ts FROM posts WHERE topic_id = '
    . $id . ' ORDER BY id');
foreach ($posts as $p) {
    echo '<div class="post"><b>' . htmlspecialchars($p['author']) . '</b> at '
        . $p['ts'] . '<br/>' . nl2br(htmlspecialchars($p['body'])) . '</div>';
}
echo '<p>' . count($posts) . ' posts</p>';
if ($user != '') {
    echo '<form action="/reply.php">reply as ' . htmlspecialchars($user) . '</form>';
}
echo $FOOTER;
"#,
    )
}

/// `/reply.php` — post a reply (POST id, body); registered users only.
fn reply() -> String {
    with_prelude(
        "orochi-forum",
        r#"
session_start();
$user = isset($_SESSION['user']) ? $_SESSION['user'] : '';
if ($user == '') {
    http_response_code(403);
    echo 'login required';
    exit();
}
$id = intval($_POST['id']);
$body = $_POST['body'];
$now = time();
db_begin();
$topics = db_query('SELECT id FROM topics WHERE id = ' . $id);
if (count($topics) == 0) {
    db_rollback();
    http_response_code(404);
    echo 'no such topic';
    exit();
}
db_query('INSERT INTO posts (topic_id, author, body, ts) VALUES ('
    . $id . ', ' . db_quote($user) . ', ' . db_quote($body) . ', ' . $now . ')');
db_query('UPDATE topics SET replies = replies + 1 WHERE id = ' . $id);
$ok = db_commit();
echo $CHROME;
if ($ok) {
    $_SESSION['posts'] = intval($_SESSION['posts']) + 1;
    echo 'post ' . db_insert_id() . ' saved';
} else {
    echo 'save failed';
}
echo $FOOTER;
"#,
    )
}

/// `/login.php` — look up (or create) the user and bind the session.
fn login() -> String {
    with_prelude(
        "orochi-forum",
        r#"
session_start();
$name = $_POST['user'];
$rows = db_query('SELECT id FROM users WHERE name = ' . db_quote($name));
if (count($rows) == 0) {
    db_query('INSERT INTO users (name, joined) VALUES ('
        . db_quote($name) . ', ' . time() . ')');
    $uid = db_insert_id();
} else {
    $uid = $rows[0]['id'];
}
$_SESSION['user'] = $name;
$_SESSION['uid'] = $uid;
$_SESSION['posts'] = isset($_SESSION['posts']) ? $_SESSION['posts'] : 0;
echo $CHROME;
echo 'welcome ' . htmlspecialchars($name) . ' (#' . $uid . ')';
echo $FOOTER;
"#,
    )
}

/// The forum application definition.
pub fn app() -> AppDefinition {
    AppDefinition {
        name: "forum",
        scripts: vec![
            ("/forum.php".to_string(), index()),
            ("/topic.php".to_string(), topic()),
            ("/reply.php".to_string(), reply()),
            ("/login.php".to_string(), login()),
        ],
        schema: vec![
            "CREATE TABLE topics (id INT PRIMARY KEY AUTO_INCREMENT, title TEXT, \
             views INT, replies INT)",
            "CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, topic_id INT, \
             author TEXT, body TEXT, ts INT, INDEX(topic_id))",
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, \
             joined INT, INDEX(name))",
        ],
    }
}
