//! The conference-review application (HotCRP stand-in).
//!
//! Matches the paper's HotCRP workload shape (§5): authors submit and
//! repeatedly update papers, reviewers submit versioned reviews, and
//! everyone views paper pages. Submissions and reviews run
//! multi-statement transactions; the paper list page is the read-heavy
//! component. Scripts share the framework prelude ([`crate::helpers`]).

use crate::helpers::with_prelude;
use crate::AppDefinition;

/// `/paper.php?id=N` — a paper page with its reviews.
fn paper() -> String {
    with_prelude(
        "orochi-crp",
        r#"
$id = intval($_GET['id']);
$me = '';
if (isset($_COOKIE['sess'])) {
    session_start();
    if (isset($_SESSION['who'])) {
        $me = $_SESSION['who'];
    }
}
$papers = db_query('SELECT id, title, abstract, author, updated FROM papers WHERE id = ' . $id);
if (count($papers) == 0) {
    http_response_code(404);
    echo 'no such paper';
    exit();
}
$p = $papers[0];
echo $CHROME;
echo '<h1>#' . $p['id'] . ': ' . htmlspecialchars($p['title']) . '</h1>';
echo '<p class="abstract">' . htmlspecialchars($p['abstract']) . '</p>';
$reviews = db_query('SELECT reviewer, score, body, version FROM reviews WHERE paper_id = '
    . $id . ' ORDER BY id');
$total = 0;
foreach ($reviews as $r) {
    $total = $total + $r['score'];
    $who = $me == $r['reviewer'] ? 'you' : 'reviewer';
    $excerpt = substr($r['body'], 0, 160);
    echo '<div class="review"><b>' . $who . '</b> score ' . $r['score']
        . ' (v' . $r['version'] . ')<br/>'
        . nl2br(htmlspecialchars($excerpt)) . '</div>';
}
if (count($reviews) > 0) {
    echo '<p>average ' . number_format($total / count($reviews), 2) . '</p>';
}
echo $FOOTER;
"#,
    )
}

/// `/list.php` — the paper list.
fn list_page() -> String {
    with_prelude(
        "orochi-crp",
        r#"
$papers = db_query('SELECT id, title FROM papers ORDER BY id LIMIT 300');
echo $CHROME;
echo '<h1>Submissions</h1><ol>';
foreach ($papers as $p) {
    echo '<li><a href="/paper.php?id=' . $p['id'] . '">'
        . htmlspecialchars($p['title']) . '</a></li>';
}
echo '</ol><p>' . count($papers) . ' papers</p>';
echo $FOOTER;
"#,
    )
}

/// `/submit.php` — submit or update a paper (POST title, abstract).
fn submit() -> String {
    with_prelude(
        "orochi-crp",
        r#"
session_start();
$me = isset($_SESSION['who']) ? $_SESSION['who'] : '';
if ($me == '') {
    http_response_code(403);
    echo 'login required';
    exit();
}
$title = $_POST['title'];
$abstract = $_POST['abstract'];
$now = time();
db_begin();
$rows = db_query('SELECT id FROM papers WHERE author = ' . db_quote($me)
    . ' AND title = ' . db_quote($title));
if (count($rows) == 0) {
    db_query('INSERT INTO papers (title, abstract, author, updated) VALUES ('
        . db_quote($title) . ', ' . db_quote($abstract) . ', '
        . db_quote($me) . ', ' . $now . ')');
    $pid = db_insert_id();
    $verb = 'submitted';
} else {
    $pid = $rows[0]['id'];
    db_query('UPDATE papers SET abstract = ' . db_quote($abstract)
        . ', updated = ' . $now . ' WHERE id = ' . $pid);
    $verb = 'updated';
}
$ok = db_commit();
echo $CHROME;
if ($ok) {
    echo 'paper #' . $pid . ' ' . $verb;
} else {
    echo 'submission failed';
}
echo $FOOTER;
"#,
    )
}

/// `/review.php` — submit a (versioned) review (POST id, score, body).
fn review() -> String {
    with_prelude(
        "orochi-crp",
        r#"
session_start();
$me = isset($_SESSION['who']) ? $_SESSION['who'] : '';
if ($me == '') {
    http_response_code(403);
    echo 'login required';
    exit();
}
$pid = intval($_POST['id']);
$score = intval($_POST['score']);
if ($score < 1 || $score > 5) {
    http_response_code(400);
    echo 'score out of range';
    exit();
}
$body = $_POST['body'];
db_begin();
$papers = db_query('SELECT id FROM papers WHERE id = ' . $pid);
if (count($papers) == 0) {
    db_rollback();
    http_response_code(404);
    echo 'no such paper';
    exit();
}
$mine = db_query('SELECT id, version FROM reviews WHERE paper_id = ' . $pid
    . ' AND reviewer = ' . db_quote($me));
if (count($mine) == 0) {
    db_query('INSERT INTO reviews (paper_id, reviewer, score, body, version) VALUES ('
        . $pid . ', ' . db_quote($me) . ', ' . $score . ', '
        . db_quote($body) . ', 1)');
    $version = 1;
} else {
    $version = $mine[0]['version'] + 1;
    db_query('UPDATE reviews SET score = ' . $score . ', body = ' . db_quote($body)
        . ', version = ' . $version . ' WHERE id = ' . $mine[0]['id']);
}
$ok = db_commit();
echo $CHROME;
if ($ok) {
    $_SESSION['reviews'] = intval($_SESSION['reviews']) + 1;
    echo 'review v' . $version . ' for #' . $pid . ' recorded';
} else {
    echo 'review failed';
}
echo $FOOTER;
"#,
    )
}

/// `/login.php` — bind the session to an identity (POST who).
fn login() -> String {
    with_prelude(
        "orochi-crp",
        r#"
session_start();
$_SESSION['who'] = $_POST['who'];
$_SESSION['reviews'] = isset($_SESSION['reviews']) ? $_SESSION['reviews'] : 0;
echo $CHROME;
echo 'hello ' . htmlspecialchars($_POST['who']);
echo $FOOTER;
"#,
    )
}

/// The conference-review application definition.
pub fn app() -> AppDefinition {
    AppDefinition {
        name: "hotcrp",
        scripts: vec![
            ("/paper.php".to_string(), paper()),
            ("/list.php".to_string(), list_page()),
            ("/submit.php".to_string(), submit()),
            ("/review.php".to_string(), review()),
            ("/login.php".to_string(), login()),
        ],
        schema: vec![
            "CREATE TABLE papers (id INT PRIMARY KEY AUTO_INCREMENT, title TEXT, \
             abstract TEXT, author TEXT, updated INT, INDEX(author))",
            "CREATE TABLE reviews (id INT PRIMARY KEY AUTO_INCREMENT, paper_id INT, \
             reviewer TEXT, score INT, body TEXT, version INT, INDEX(paper_id))",
        ],
    }
}
