//! Identifier newtypes used throughout the audit pipeline.
//!
//! The paper identifies every request/response pair with a unique
//! `requestID` (§3), every state operation with a `(requestID, opnum)`
//! pair (§3.3), and every shared object with an index `i`. These newtypes
//! make it impossible to confuse the three in function signatures.

use crate::codec::{Decoder, Encoder, Wire, WireError};
use std::fmt;

/// Unique identifier of a request/response pair in a trace.
///
/// A well-behaved executor labels every response with the requestID of the
/// request that produced it (§3); the verifier checks uniqueness while
/// ensuring the trace is balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Per-request operation number.
///
/// A correct executor tracks and increments the opnum as the request
/// executes (§3.3); operation `(rid, opnum)` is globally unique. Opnum 0
/// and [`OpNum::INFINITY`] are reserved by the audit graph for the arrival
/// of the request and the departure of the response respectively (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpNum(pub u32);

impl OpNum {
    /// Sentinel representing the departure-of-response node `(rid, ∞)`.
    pub const INFINITY: OpNum = OpNum(u32::MAX);

    /// Returns true if this is the `∞` sentinel.
    pub fn is_infinity(self) -> bool {
        self == Self::INFINITY
    }
}

impl fmt::Display for OpNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinity() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Index of a shared object (register, key-value store, or database).
///
/// Each shared object `i` has its own operation log `OL_i` (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Sequence number of an entry within a single operation log.
///
/// The paper indexes logs from 1 (`OL_i : N+ → …`, §3.3); we keep that
/// convention, so a `SeqNum` of 0 never appears in a well-formed log index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNum(pub u64);

/// Opaque control-flow tag recorded by the server for each request (§3.1).
///
/// Requests that induce the same control flow are supposed to receive the
/// same tag; the verifier re-executes each tag's request set as one group.
/// The tag is untrusted: a wrong grouping is caught by divergence or by
/// output mismatch during re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtlFlowTag(pub u64);

impl fmt::Display for CtlFlowTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cf{:016x}", self.0)
    }
}

impl Wire for RequestId {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(RequestId(dec.u64()?))
    }
}

impl Wire for OpNum {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.0 as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let v = dec.u64()?;
        if v > u32::MAX as u64 {
            return Err(WireError::Malformed("opnum out of range"));
        }
        Ok(OpNum(v as u32))
    }
}

impl Wire for ObjectId {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.0 as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let v = dec.u64()?;
        if v > u32::MAX as u64 {
            return Err(WireError::Malformed("object id out of range"));
        }
        Ok(ObjectId(v as u32))
    }
}

impl Wire for SeqNum {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SeqNum(dec.u64()?))
    }
}

impl Wire for CtlFlowTag {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.0);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(CtlFlowTag(dec.u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opnum_infinity_is_distinguished() {
        assert!(OpNum::INFINITY.is_infinity());
        assert!(!OpNum(0).is_infinity());
        assert!(!OpNum(u32::MAX - 1).is_infinity());
    }

    #[test]
    fn display_formats() {
        assert_eq!(RequestId(7).to_string(), "r7");
        assert_eq!(OpNum(3).to_string(), "3");
        assert_eq!(OpNum::INFINITY.to_string(), "∞");
        assert_eq!(ObjectId(2).to_string(), "obj2");
    }

    #[test]
    fn ordering_matches_inner() {
        assert!(RequestId(1) < RequestId(2));
        assert!(OpNum(1) < OpNum::INFINITY);
        assert!(SeqNum(9) < SeqNum(10));
    }
}
