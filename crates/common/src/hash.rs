//! A deterministic byte hash shared across the workspace.
//!
//! Rust's `DefaultHasher` is randomized per process; several places
//! need a hash that is stable across runs and machines — the PHP VM's
//! control-flow digests, `md5`'s stand-in, and the stitch daemon's
//! object-shard assignment. FNV-1a is small, fast on the short inputs
//! involved (script paths, object names), and has one canonical
//! definition here.

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// The FNV-1a 64-bit prime; public for mixers that fold extra state
/// into an FNV-seeded value (the PHP VM's control-flow digests).
pub const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over bytes.
///
/// # Examples
///
/// ```
/// use orochi_common::hash::fnv1a;
///
/// assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
/// assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::fnv1a;

    #[test]
    fn matches_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
