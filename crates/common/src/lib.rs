//! Shared foundations for the orochi-rs workspace.
//!
//! This crate holds the small pieces every other crate needs: identifier
//! newtypes for requests, operations and shared objects; the hand-rolled
//! wire codec used to serialize traces and reports; phase timers used by
//! the evaluation harness; and a tiny deterministic RNG used where the
//! `rand` crate would be too heavy a dependency.
//!
//! Nothing in this crate is specific to the audit algorithm; see
//! `orochi-core` for SSCO itself.

pub mod codec;
pub mod hash;
pub mod ids;
pub mod metrics;
pub mod rng;

pub use codec::{Decoder, Encoder, Wire, WireError};
pub use hash::fnv1a;
pub use ids::{CtlFlowTag, ObjectId, OpNum, RequestId, SeqNum};
pub use metrics::{percentile, PhaseTimer, Stopwatch};
pub use rng::SplitMix64;
