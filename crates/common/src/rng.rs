//! A tiny deterministic RNG for reproducible server-side nondeterminism.
//!
//! The online server needs a source for PHP's `mt_rand`/`uniqid` builtins
//! (§4.6); the recorded values are what matter to the audit, not their
//! statistical quality, so a seeded SplitMix64 keeps experiments
//! reproducible without pulling `rand` into every crate.

/// SplitMix64 pseudo-random generator (public-domain algorithm by
/// Sebastiano Vigna).
///
/// # Examples
///
/// ```
/// use orochi_common::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); the slight bias is
        // irrelevant for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
