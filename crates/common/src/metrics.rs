//! Timing and measurement helpers for the evaluation harness.
//!
//! The paper decomposes audit-time CPU cost into phases (Fig. 9: "PHP",
//! "DB query", "ProcOpRep", "DB redo", "Other") and reports latency
//! percentiles (Fig. 8 right). [`PhaseTimer`] accumulates named phase
//! durations; [`percentile`] computes the order statistics.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A simple start/stop stopwatch accumulating busy time.
///
/// # Examples
///
/// ```
/// use orochi_common::metrics::Stopwatch;
///
/// let mut sw = Stopwatch::new();
/// sw.start();
/// let _work: u64 = (0..1000).sum();
/// sw.stop();
/// assert!(sw.elapsed().as_nanos() > 0);
/// ```
#[derive(Debug, Default)]
pub struct Stopwatch {
    total: Duration,
    started: Option<Instant>,
}

impl Stopwatch {
    /// Creates a stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins timing. A second `start` while already running is a
    /// no-op: the original start point is kept, so the interval from
    /// the *first* `start` to the next [`stop`](Self::stop) is what
    /// gets charged. This makes nested `start`/`stop` pairs safe —
    /// the outer pair wins — at the cost of never restarting an
    /// in-flight interval.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Whether an interval is currently being timed.
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }

    /// Stops timing and adds the elapsed interval to the total.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.total += t0.elapsed();
        }
    }

    /// Total accumulated busy time (not counting a currently running
    /// interval).
    pub fn elapsed(&self) -> Duration {
        self.total
    }
}

/// Accumulates named phase durations, in the style of Fig. 9.
///
/// # Examples
///
/// ```
/// use orochi_common::metrics::PhaseTimer;
///
/// let mut timer = PhaseTimer::new();
/// timer.time("redo", || { let _ = 1 + 1; });
/// assert!(timer.get("redo").as_nanos() > 0);
/// assert_eq!(timer.get("absent").as_nanos(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: BTreeMap<&'static str, Duration>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, charging its wall time to `phase`. Panic-safe: if `f`
    /// unwinds, the time spent before the panic is still recorded
    /// (the accounting happens in an RAII guard's drop).
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let _guard = self.phase(phase);
        f()
    }

    /// Opens an RAII guard charging `phase` from now until the guard
    /// drops — including on unwind, so a panicking phase cannot
    /// silently drop its accumulated time the way a forgotten manual
    /// `stop()` would.
    pub fn phase(&mut self, phase: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            timer: self,
            phase,
            t0: Instant::now(),
        }
    }

    /// Adds an externally measured duration to `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        *self.phases.entry(phase).or_default() += d;
    }

    /// Accumulated time for `phase` (zero if never recorded).
    pub fn get(&self, phase: &str) -> Duration {
        self.phases.get(phase).copied().unwrap_or_default()
    }

    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.phases.values().sum()
    }

    /// Iterates phases in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.phases.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another timer's phases into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (phase, d) in other.iter() {
            self.add(phase, d);
        }
    }
}

/// Charges elapsed time to one phase of a [`PhaseTimer`] when
/// dropped. Created by [`PhaseTimer::phase`].
#[must_use = "a PhaseGuard records on drop; binding it to `_` drops it immediately"]
pub struct PhaseGuard<'a> {
    timer: &'a mut PhaseTimer,
    phase: &'static str,
    t0: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.timer.add(self.phase, self.t0.elapsed());
    }
}

/// Returns the `p`-th percentile (0.0–100.0) of `samples` using
/// nearest-rank on a sorted copy.
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use orochi_common::metrics::percentile;
///
/// let xs = vec![10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile(&xs, 50.0), Some(20.0));
/// assert_eq!(percentile(&xs, 100.0), Some(40.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1) - 1;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// A counting global allocator: wraps the system allocator and tracks
/// the current and peak number of live heap bytes.
///
/// The streaming-epoch audit's headline claim is a *peak-memory* bound
/// (O(epoch + carry) instead of O(trace)), and OS-level RSS is too
/// coarse to compare two audits inside one process — the allocator
/// caches pages from the first run. Counting live bytes at the
/// allocator seam gives an exact, portable measurement. A bench binary
/// opts in with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: orochi_common::metrics::TrackingAllocator =
///     orochi_common::metrics::TrackingAllocator::new();
/// ```
///
/// and then brackets each measured region with
/// [`alloc_tracking::reset_peak`] / [`alloc_tracking::peak_bytes`].
/// Binaries that don't declare it pay nothing; the counters read zero.
pub struct TrackingAllocator {
    _priv: (),
}

impl TrackingAllocator {
    /// Creates the allocator (a zero-sized shim over
    /// [`std::alloc::System`]).
    pub const fn new() -> Self {
        Self { _priv: () }
    }
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

static ALLOC_CURRENT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static ALLOC_PEAK: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

#[inline]
fn alloc_record(bytes: usize) {
    use std::sync::atomic::Ordering::Relaxed;
    let now = ALLOC_CURRENT.fetch_add(bytes, Relaxed) + bytes;
    // Racy max: a concurrent reset_peak may clip a momentary high-water
    // mark, but the measured regions are single-threaded brackets and
    // the error is at most one in-flight allocation.
    ALLOC_PEAK.fetch_max(now, Relaxed);
}

unsafe impl std::alloc::GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            alloc_record(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        ALLOC_CURRENT.fetch_sub(layout.size(), std::sync::atomic::Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc_zeroed(layout);
        if !p.is_null() {
            alloc_record(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                alloc_record(new_size - layout.size());
            } else {
                ALLOC_CURRENT.fetch_sub(
                    layout.size() - new_size,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        }
        p
    }
}

/// Readers for the [`TrackingAllocator`] counters. Meaningful only in
/// binaries that installed the allocator with `#[global_allocator]`;
/// elsewhere every function returns zero.
pub mod alloc_tracking {
    use std::sync::atomic::Ordering::Relaxed;

    /// Live heap bytes right now.
    pub fn current_bytes() -> usize {
        super::ALLOC_CURRENT.load(Relaxed)
    }

    /// High-water mark of live heap bytes since the last
    /// [`reset_peak`].
    pub fn peak_bytes() -> usize {
        super::ALLOC_PEAK.load(Relaxed)
    }

    /// Restarts peak tracking from the current live-byte count, so a
    /// measured region's peak excludes whatever earlier regions
    /// allocated and freed.
    pub fn reset_peak() {
        super::ALLOC_PEAK.store(current_bytes(), Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_accumulates_across_intervals() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.stop();
        let first = sw.elapsed();
        sw.start();
        sw.stop();
        assert!(sw.elapsed() >= first);
    }

    #[test]
    fn stopwatch_double_start_is_idempotent() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        sw.stop();
        sw.stop(); // Second stop is a no-op.
        let t = sw.elapsed();
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn phase_timer_merges() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_millis(5));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_millis(3));
        b.add("y", Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(8));
        assert_eq!(a.get("y"), Duration::from_millis(2));
        assert_eq!(a.total(), Duration::from_millis(10));
    }

    #[test]
    fn phase_guard_records_on_panic() {
        let mut timer = PhaseTimer::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            timer.time("doomed", || panic!("phase body panicked"));
        }));
        assert!(result.is_err());
        assert!(timer.get("doomed").as_nanos() > 0);
    }

    #[test]
    fn phase_guard_manual_scope() {
        let mut timer = PhaseTimer::new();
        {
            let _g = timer.phase("scoped");
            let _work: u64 = (0..100).sum();
        }
        assert!(timer.get("scoped").as_nanos() > 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 90.0), Some(90.0));
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    // The tracking allocator is not installed in the test binary, so
    // the counters stay at whatever alloc_record was fed directly.
    #[test]
    fn alloc_tracking_counts_and_resets() {
        let base = alloc_tracking::current_bytes();
        alloc_record(1024);
        assert_eq!(alloc_tracking::current_bytes(), base + 1024);
        assert!(alloc_tracking::peak_bytes() >= base + 1024);
        ALLOC_CURRENT.fetch_sub(1024, std::sync::atomic::Ordering::Relaxed);
        alloc_tracking::reset_peak();
        assert_eq!(
            alloc_tracking::peak_bytes(),
            alloc_tracking::current_bytes()
        );
    }
}
