//! Compact binary wire format for traces and reports.
//!
//! The paper measures report sizes per request (Fig. 8); to make those
//! measurements meaningful we serialize traces and reports with a small
//! hand-rolled codec rather than a textual format. Integers use LEB128
//! varints, signed integers are zigzag-encoded, and byte strings are
//! length-prefixed. The format is self-contained: no external
//! serialization crates are involved.

use std::fmt;

/// Error produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A varint ran longer than the maximum encodable width.
    VarintOverflow,
    /// The bytes decoded successfully but violate an invariant of the type.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of wire buffer"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::Malformed(what) => write!(f, "malformed wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes an unsigned integer as a LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed integer with zigzag encoding.
    pub fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes an `f64` as its raw little-endian bits.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a single byte.
    pub fn byte(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns true once every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads a LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof)?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a zigzag-encoded signed integer.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let v = self.u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a raw little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Reads a single byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a one-byte bool, rejecting values other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte not 0/1")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u64()? as usize;
        if self.remaining() < len {
            return Err(WireError::UnexpectedEof);
        }
        let out = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::Malformed("invalid utf-8"))
    }
}

/// Types that know how to serialize themselves on the wire.
///
/// # Examples
///
/// ```
/// use orochi_common::codec::{Decoder, Encoder, Wire};
/// use orochi_common::ids::RequestId;
///
/// let mut enc = Encoder::new();
/// RequestId(42).encode(&mut enc);
/// let bytes = enc.into_bytes();
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(RequestId::decode(&mut dec).unwrap(), RequestId(42));
/// ```
pub trait Wire: Sized {
    /// Appends this value to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Reads a value of this type from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Convenience: decodes from a byte slice, requiring full consumption.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        if !dec.is_done() {
            return Err(WireError::Malformed("trailing bytes"));
        }
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.u64()
    }
}

impl Wire for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.i64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.i64()
    }
}

impl Wire for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.str()
    }
}

impl Wire for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.bool()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = dec.u64()? as usize;
        // Guard against hostile length prefixes: each element consumes at
        // least one byte, so `len` can never exceed the remaining buffer.
        if len > dec.remaining() {
            return Err(WireError::Malformed("vector length exceeds buffer"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.bool(false),
            Some(v) => {
                enc.bool(true);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        if dec.bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.u64(v);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.u64().unwrap(), v);
            assert!(dec.is_done());
        }
    }

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            let mut enc = Encoder::new();
            enc.i64(v);
            let bytes = enc.into_bytes();
            assert_eq!(Decoder::new(&bytes).i64().unwrap(), v);
        }
    }

    #[test]
    fn float_roundtrip_preserves_bits() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let mut enc = Encoder::new();
            enc.f64(v);
            let bytes = enc.into_bytes();
            assert_eq!(Decoder::new(&bytes).f64().unwrap().to_bits(), v.to_bits());
        }
        // NaN keeps its payload.
        let mut enc = Encoder::new();
        enc.f64(f64::NAN);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).f64().unwrap().is_nan());
    }

    #[test]
    fn string_roundtrip() {
        let mut enc = Encoder::new();
        enc.str("héllo wörld");
        let bytes = enc.into_bytes();
        assert_eq!(Decoder::new(&bytes).str().unwrap(), "héllo wörld");
    }

    #[test]
    fn truncated_buffer_is_eof() {
        let mut enc = Encoder::new();
        enc.str("abcdef");
        let mut bytes = enc.into_bytes();
        bytes.truncate(3);
        assert_eq!(
            Decoder::new(&bytes).str().unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn varint_overflow_detected() {
        let bytes = [0xffu8; 11];
        assert_eq!(
            Decoder::new(&bytes).u64().unwrap_err(),
            WireError::VarintOverflow
        );
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Length prefix claims 2^40 elements in a 3-byte buffer.
        let mut enc = Encoder::new();
        enc.u64(1 << 40);
        let bytes = enc.into_bytes();
        assert!(matches!(
            <Vec<u64> as Wire>::from_wire_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let v: Option<(u64, String)> = Some((9, "x".to_string()));
        let bytes = v.to_wire_bytes();
        assert_eq!(
            <Option<(u64, String)> as Wire>::from_wire_bytes(&bytes).unwrap(),
            v
        );
        let n: Option<(u64, String)> = None;
        let bytes = n.to_wire_bytes();
        assert_eq!(
            <Option<(u64, String)> as Wire>::from_wire_bytes(&bytes).unwrap(),
            n
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u64.to_wire_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_wire_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
