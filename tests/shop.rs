//! The shop workload suite: the storefront app end-to-end.
//!
//! The shop exists to stress the register and versioned-KV audit paths
//! (per-session carts, check-then-act inventory counters, fragment
//! cache), so this suite pins three things:
//!
//! 1. honest serves are accepted at thread counts 1 and 8 with
//!    identical determinism-relevant counters,
//! 2. each tampering variant (forged cart total, stale inventory read,
//!    replayed KV write) is rejected with identical verdicts and
//!    diagnostics at thread counts 1 and 8, and
//! 3. the workload really is register/KV-heavy: at least half of all
//!    logged operations hit the register or KV sub-logs.

use orochi::harness::{run_audit_with, serve, AppWorkload, AuditOptions, ServeOptions};
use orochi::server::server::AuditBundle;
use orochi::trace::HttpRequest;
use orochi::workload::shop;

fn shop_work(scale: f64, seed: u64) -> AppWorkload {
    let params = shop::Params::scaled(scale);
    AppWorkload {
        app: orochi::apps::shop::app(),
        workload: shop::generate(&params, seed),
        seed_sql: shop::seed_sql(&params),
    }
}

/// Audits `bundle` at thread counts 1 and 8 and asserts both runs agree
/// exactly (verdict, diagnostics, determinism-relevant counters).
fn assert_audits_agree(
    label: &str,
    bundle: &AuditBundle,
    work: &AppWorkload,
) -> Result<(), String> {
    let at = |threads: usize| {
        run_audit_with(
            bundle,
            work,
            &AuditOptions {
                threads,
                ..Default::default()
            },
        )
    };
    let seq = at(1);
    let par = at(8);
    match (&seq, &par) {
        (Ok(s), Ok(p)) => {
            let (s, p) = (&s.outcome.stats, &p.outcome.stats);
            assert_eq!(
                (
                    s.requests_reexecuted,
                    s.register_ops,
                    s.kv_ops,
                    s.db_txns,
                    s.db_queries
                ),
                (
                    p.requests_reexecuted,
                    p.register_ops,
                    p.kv_ops,
                    p.db_txns,
                    p.db_queries
                ),
                "{label}: counters diverged between 1 and 8 threads"
            );
            Ok(())
        }
        (Err(s), Err(p)) => {
            assert_eq!(
                s.to_string(),
                p.to_string(),
                "{label}: rejection diagnostics diverged between 1 and 8 threads"
            );
            Err(s.to_string())
        }
        _ => panic!(
            "{label}: verdict diverged: 1 thread {:?} vs 8 threads {:?}",
            seq.as_ref().err().map(|e| e.to_string()),
            par.as_ref().err().map(|e| e.to_string()),
        ),
    }
}

/// A small scripted flow covering every endpoint deterministically
/// (generator-independent, so failures localize to the app).
fn scripted_requests() -> Vec<HttpRequest> {
    let mut reqs = vec![
        HttpRequest::post("/login.php", &[], &[("user", "admin")]).with_cookie("sess", "admin"),
        HttpRequest::post("/login.php", &[], &[("user", "ada")]).with_cookie("sess", "c1"),
        HttpRequest::post("/login.php", &[], &[("user", "bob")]).with_cookie("sess", "c2"),
    ];
    // Browse (cold: seeds both KV entries; then warm hits).
    reqs.push(HttpRequest::get("/product.php", &[("id", "1")]).with_cookie("sess", "c1"));
    reqs.push(HttpRequest::get("/product.php", &[("id", "1")]).with_cookie("sess", "c2"));
    reqs.push(HttpRequest::get("/product.php", &[("id", "2")]));
    // Ada fills a cart and checks out.
    reqs.push(
        HttpRequest::post("/cart.php", &[], &[("id", "1"), ("qty", "2")]).with_cookie("sess", "c1"),
    );
    reqs.push(
        HttpRequest::post("/cart.php", &[], &[("id", "2"), ("qty", "1")]).with_cookie("sess", "c1"),
    );
    reqs.push(HttpRequest::post("/checkout.php", &[], &[]).with_cookie("sess", "c1"));
    // Bob abandons.
    reqs.push(
        HttpRequest::post("/cart.php", &[], &[("id", "1"), ("qty", "1")]).with_cookie("sess", "c2"),
    );
    reqs.push(HttpRequest::post("/logout.php", &[], &[]).with_cookie("sess", "c2"));
    // Admin restocks product 1 (invalidates its fragment), then a view
    // re-renders and re-caches it.
    reqs.push(
        HttpRequest::post(
            "/restock.php",
            &[],
            &[("id", "1"), ("stock", "50"), ("price", "17")],
        )
        .with_cookie("sess", "admin"),
    );
    reqs.push(HttpRequest::get("/product.php", &[("id", "1")]).with_cookie("sess", "c1"));
    // Missing product 404s.
    reqs.push(HttpRequest::get("/product.php", &[("id", "999")]));
    reqs
}

fn scripted_work() -> AppWorkload {
    let params = shop::Params::scaled(0.01);
    AppWorkload {
        app: orochi::apps::shop::app(),
        workload: orochi::workload::Workload {
            setup: Vec::new(),
            requests: scripted_requests(),
        },
        seed_sql: shop::seed_sql(&params),
    }
}

#[test]
fn scripted_flow_serves_and_audits() {
    let work = scripted_work();
    let served = serve(
        &work,
        &ServeOptions {
            threads: 1,
            ..Default::default()
        },
    );
    // The deterministic single-threaded serve lets us pin body shapes.
    let balanced = served.bundle.trace.ensure_balanced().unwrap();
    let bodies: Vec<String> = balanced
        .request_ids()
        .map(|rid| balanced.response(rid).body.clone())
        .collect();
    assert!(
        bodies.iter().any(|b| b.contains("total=32")),
        "checkout total: 2 x $10 + 1 x $12 = $32 (seed prices are 8 + 2*id)"
    );
    assert!(bodies.iter().any(|b| b.contains("1 item(s) abandoned")));
    assert!(bodies.iter().any(|b| b.contains("restocked to 50")));
    assert!(
        bodies.iter().any(|b| b.contains("$17")),
        "re-rendered fragment shows the new price"
    );
    assert_audits_agree("scripted", &served.bundle, &work).expect("honest scripted flow accepted");
}

#[test]
fn honest_generated_workload_accepts_at_1_and_8_threads() {
    let work = shop_work(0.02, 7);
    let served = serve(&work, &ServeOptions::default());
    assert_eq!(served.requests as usize, work.workload.len());
    assert_audits_agree("generated", &served.bundle, &work)
        .expect("honest generated workload accepted");
}

#[test]
fn majority_of_shop_ops_hit_register_or_kv_sublogs() {
    let work = shop_work(0.02, 11);
    let served = serve(&work, &ServeOptions::default());
    let mut reg_kv = 0usize;
    let mut total = 0usize;
    for (_, name, log) in served.bundle.reports.op_logs.iter() {
        total += log.len();
        if name.as_str().starts_with("reg:") || name.as_str().starts_with("kv:") {
            reg_kv += log.len();
        }
    }
    assert!(total > 0);
    let share = reg_kv as f64 / total as f64;
    assert!(
        share >= 0.5,
        "register/KV share {share:.3} below the 50% the shop exists to provide \
         ({reg_kv}/{total} ops)"
    );
}

#[test]
fn forged_cart_total_rejected_identically() {
    let work = shop_work(0.02, 13);
    let mut served = serve(&work, &ServeOptions::default());
    assert!(
        orochi::harness::tamper::forge_cart_total(&mut served.bundle.trace),
        "workload produces a checkout to forge"
    );
    let diag = assert_audits_agree("forged-total", &served.bundle, &work)
        .expect_err("forged cart total must be rejected");
    assert!(!diag.is_empty());
}

#[test]
fn stale_inventory_read_rejected_identically() {
    let work = shop_work(0.02, 17);
    let mut served = serve(&work, &ServeOptions::default());
    assert!(
        orochi::harness::tamper::reorder_kv_read(&mut served.bundle.reports, "inv:"),
        "workload produces an inventory read to make stale"
    );
    assert_audits_agree("stale-inventory", &served.bundle, &work)
        .expect_err("stale inventory read must be rejected");
}

#[test]
fn replayed_kv_write_rejected_identically() {
    let work = shop_work(0.02, 19);
    let mut served = serve(&work, &ServeOptions::default());
    assert!(
        orochi::harness::tamper::replay_kv_write(&mut served.bundle.reports, "inv:"),
        "workload produces a KV write to replay"
    );
    assert_audits_agree("replayed-write", &served.bundle, &work)
        .expect_err("replayed KV write must be rejected");
}

#[test]
fn shop_experiment_end_to_end() {
    // The harness experiment bundles all of the above for the bench bin:
    // honest accept at 1 and `threads`, every tamper rejected with
    // matching diagnostics, and the register/KV share measured.
    let report = orochi::harness::experiments::shop_experiment(0.02, 23, 8);
    assert!(report.requests > 0);
    assert!(
        report.reg_kv_share >= 0.5,
        "share {} below 0.5",
        report.reg_kv_share
    );
    assert_eq!(report.tampers.len(), 3);
    for t in &report.tampers {
        assert!(t.rejected, "{} must be rejected", t.variant);
    }
}
