//! End-to-end pipeline tests: serve a workload on the online executor,
//! collect the trace and reports, and audit with the SSCO verifier.
//!
//! These are the moral equivalent of the paper's Completeness property
//! (§2) exercised through the whole built system: an honest server must
//! always pass the audit, sequentially and under concurrency, across all
//! three applications and all object types.

use orochi::accphp::AccPhpExecutor;
use orochi::apps::{forum, hotcrp, shop, wiki, AppDefinition};
use orochi::core::audit::{audit, AuditConfig};
use orochi::core::ooo::ooo_audit;
use orochi::server::{Server, ServerConfig};
use orochi::trace::HttpRequest;
use std::collections::HashMap;
use std::sync::Arc;

fn audit_config(app: &AppDefinition) -> AuditConfig {
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), app.initial_db());
    config
}

fn serve_and_audit(app: &AppDefinition, requests: Vec<HttpRequest>) {
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 7,
        ..Default::default()
    });
    for req in requests {
        server.handle(req);
    }
    let bundle = server.into_bundle();
    let mut executor = AccPhpExecutor::new(scripts);
    let outcome = audit(
        &bundle.trace,
        &bundle.reports,
        &mut executor,
        &audit_config(app),
    );
    match outcome {
        Ok(out) => {
            assert!(out.stats.requests_reexecuted > 0);
        }
        Err(rejection) => panic!("honest {} run rejected: {rejection}", app.name),
    }
}

#[test]
fn wiki_sequential_roundtrip() {
    let app = wiki::app();
    let mut requests = Vec::new();
    // Alice logs in and writes two pages; everyone reads them.
    requests.push(
        HttpRequest::post("/login.php", &[], &[("user", "alice")]).with_cookie("sess", "alice"),
    );
    for (title, body) in [
        ("Rust", "Systems language."),
        ("Audit", "Check the server!"),
    ] {
        requests.push(
            HttpRequest::post("/edit.php", &[], &[("title", title), ("body", body)])
                .with_cookie("sess", "alice"),
        );
    }
    for _ in 0..5 {
        requests.push(HttpRequest::get("/wiki.php", &[("title", "Rust")]));
        requests.push(HttpRequest::get("/wiki.php", &[("title", "Audit")]));
        requests.push(HttpRequest::get("/wiki.php", &[("title", "Missing")]));
    }
    serve_and_audit(&app, requests);
}

#[test]
fn forum_sequential_roundtrip() {
    let app = forum::app();
    let mut requests =
        vec![HttpRequest::post("/login.php", &[], &[("user", "bob")]).with_cookie("sess", "bob")];
    // Seed a topic via reply failure (no topic) then through the DB
    // schema: create a topic by direct insert is not exposed, so drive
    // the app: replies to a missing topic 404, then a topic is created
    // by an admin script — here we just exercise the index and topic
    // pages plus failed replies.
    requests.push(HttpRequest::get("/forum.php", &[]));
    requests.push(
        HttpRequest::post("/reply.php", &[], &[("id", "1"), ("body", "first!")])
            .with_cookie("sess", "bob"),
    );
    requests.push(HttpRequest::get("/topic.php", &[("id", "1")]));
    serve_and_audit(&app, requests);
}

#[test]
fn hotcrp_sequential_roundtrip() {
    let app = hotcrp::app();
    let mut requests = vec![
        HttpRequest::post("/login.php", &[], &[("who", "carol")]).with_cookie("sess", "carol")
    ];
    requests.push(
        HttpRequest::post(
            "/submit.php",
            &[],
            &[("title", "SSCO"), ("abstract", "Auditing servers.")],
        )
        .with_cookie("sess", "carol"),
    );
    requests.push(
        HttpRequest::post(
            "/review.php",
            &[],
            &[("id", "1"), ("score", "4"), ("body", "Nice paper.")],
        )
        .with_cookie("sess", "carol"),
    );
    // Updated review (version bump).
    requests.push(
        HttpRequest::post(
            "/review.php",
            &[],
            &[("id", "1"), ("score", "5"), ("body", "Great paper.")],
        )
        .with_cookie("sess", "carol"),
    );
    requests.push(HttpRequest::get("/list.php", &[]));
    requests.push(HttpRequest::get("/paper.php", &[("id", "1")]));
    requests.push(HttpRequest::get("/paper.php", &[("id", "99")]));
    serve_and_audit(&app, requests);
}

#[test]
fn concurrent_wiki_roundtrip() {
    let app = wiki::app();
    let scripts = app.compile().unwrap();
    let server = Arc::new(Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 11,
        ..Default::default()
    }));
    // Writers create pages while readers hammer them concurrently.
    let mut handles = Vec::new();
    for w in 0..2 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let user = format!("writer{w}");
            server.handle(
                HttpRequest::post("/login.php", &[], &[("user", &user)]).with_cookie("sess", &user),
            );
            for i in 0..10 {
                let title = format!("Page{}", i % 4);
                let body = format!("content {w} {i}");
                server.handle(
                    HttpRequest::post("/edit.php", &[], &[("title", &title), ("body", &body)])
                        .with_cookie("sess", &user),
                );
            }
        }));
    }
    for _ in 0..4 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                let title = format!("Page{}", i % 5);
                server.handle(HttpRequest::get("/wiki.php", &[("title", &title)]));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let server = Arc::try_unwrap(server).ok().expect("threads joined");
    let bundle = server.into_bundle();
    let mut executor = AccPhpExecutor::new(scripts);
    let outcome = audit(
        &bundle.trace,
        &bundle.reports,
        &mut executor,
        &audit_config(&app),
    )
    .unwrap_or_else(|r| panic!("honest concurrent run rejected: {r}"));
    assert_eq!(outcome.stats.requests_reexecuted, 122);
    // The read-heavy workload must have deduplicated queries.
    assert!(outcome.stats.db_queries_deduped > 0);
}

#[test]
fn grouped_and_scalar_verifiers_agree() {
    let app = wiki::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 3,
        ..Default::default()
    });
    server.handle(HttpRequest::post("/login.php", &[], &[("user", "a")]).with_cookie("sess", "a"));
    server.handle(
        HttpRequest::post("/edit.php", &[], &[("title", "T"), ("body", "B")])
            .with_cookie("sess", "a"),
    );
    for _ in 0..6 {
        server.handle(HttpRequest::get("/wiki.php", &[("title", "T")]));
    }
    let bundle = server.into_bundle();

    // Grouped (SIMD-on-demand).
    let mut grouped = AccPhpExecutor::new(scripts.clone());
    audit(
        &bundle.trace,
        &bundle.reports,
        &mut grouped,
        &audit_config(&app),
    )
    .unwrap_or_else(|r| panic!("grouped audit rejected: {r}"));
    assert!(grouped.stats.grouped > 0, "grouped mode must engage");

    // Scalar-forced (the ablation arm).
    let mut scalar = AccPhpExecutor::new(scripts.clone());
    scalar.force_scalar = true;
    audit(
        &bundle.trace,
        &bundle.reports,
        &mut scalar,
        &audit_config(&app),
    )
    .unwrap_or_else(|r| panic!("scalar audit rejected: {r}"));
    assert_eq!(scalar.stats.grouped, 0);

    // Out-of-order oracle (appendix Fig. 13).
    let mut ooo_exec = AccPhpExecutor::new(scripts);
    ooo_audit(
        &bundle.trace,
        &bundle.reports,
        &mut ooo_exec,
        &audit_config(&app),
    )
    .unwrap_or_else(|r| panic!("OOO audit rejected: {r}"));
}

#[test]
fn tampered_response_is_rejected() {
    let app = wiki::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 5,
        ..Default::default()
    });
    server.handle(HttpRequest::post("/login.php", &[], &[("user", "a")]).with_cookie("sess", "a"));
    server.handle(
        HttpRequest::post("/edit.php", &[], &[("title", "T"), ("body", "B")])
            .with_cookie("sess", "a"),
    );
    server.handle(HttpRequest::get("/wiki.php", &[("title", "T")]));
    let mut bundle = server.into_bundle();
    // The executor lies about one response body.
    for event in bundle.trace.events.iter_mut() {
        if let orochi::trace::Event::Response(_, resp) = event {
            if resp.body.contains("content") || resp.body.contains("wiki") {
                resp.body = resp.body.replace("wiki", "hacked");
                break;
            }
        }
    }
    let mut executor = AccPhpExecutor::new(scripts);
    let outcome = audit(
        &bundle.trace,
        &bundle.reports,
        &mut executor,
        &audit_config(&app),
    );
    assert!(outcome.is_err(), "tampered response must be rejected");
}

#[test]
fn dropped_log_entry_is_rejected() {
    let app = hotcrp::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 5,
        ..Default::default()
    });
    server.handle(HttpRequest::post("/login.php", &[], &[("who", "x")]).with_cookie("sess", "x"));
    server.handle(HttpRequest::get("/list.php", &[]));
    let mut bundle = server.into_bundle();
    // Drop the last entry of the first non-empty log.
    let mut dropped = false;
    for i in 0.. {
        match bundle.reports.op_logs.log_mut(i) {
            None => break,
            Some(log) if log.is_empty() => continue,
            Some(log) => {
                let mut entries = log.entries().to_vec();
                entries.pop();
                *log = orochi::state::OpLog::from_entries(entries);
                dropped = true;
                break;
            }
        }
    }
    assert!(dropped, "test needs a log entry to drop");
    let mut executor = AccPhpExecutor::new(scripts);
    let outcome = audit(
        &bundle.trace,
        &bundle.reports,
        &mut executor,
        &audit_config(&app),
    );
    assert!(outcome.is_err(), "dropped log entry must be rejected");
}

#[test]
fn all_apps_accept_with_empty_workload() {
    for app in [wiki::app(), forum::app(), hotcrp::app(), shop::app()] {
        let scripts = app.compile().unwrap();
        let server = Server::new(ServerConfig {
            scripts: scripts.clone(),
            initial_db: app.initial_db(),
            recording: true,
            seed: 1,
            ..Default::default()
        });
        let bundle = server.into_bundle();
        let mut executor = AccPhpExecutor::new(scripts);
        audit(
            &bundle.trace,
            &bundle.reports,
            &mut executor,
            &audit_config(&app),
        )
        .unwrap_or_else(|r| panic!("{}: empty workload rejected: {r}", app.name));
    }
}

#[test]
fn unknown_paths_roundtrip() {
    let app = wiki::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 2,
        ..Default::default()
    });
    server.handle(HttpRequest::get("/nope.php", &[]));
    server.handle(HttpRequest::get("/nope.php", &[]));
    let bundle = server.into_bundle();
    let mut executor = AccPhpExecutor::new(scripts);
    audit(
        &bundle.trace,
        &bundle.reports,
        &mut executor,
        &audit_config(&app),
    )
    .unwrap_or_else(|r| panic!("404 workload rejected: {r}"));
}

/// The Poirot-style session counter: state flows through registers and
/// must replay exactly.
#[test]
fn session_counter_roundtrip() {
    use std::collections::HashMap as Map;
    let mut scripts_src: Map<&str, &str> = Map::new();
    scripts_src.insert(
        "/c.php",
        "<?php session_start();
         $_SESSION['n'] = intval($_SESSION['n']) + 1;
         echo 'count=' . $_SESSION['n'];",
    );
    let mut scripts = HashMap::new();
    for (path, src) in scripts_src {
        scripts.insert(
            path.to_string(),
            orochi::php::compile(path, &orochi::php::parse_script(src).unwrap()).unwrap(),
        );
    }
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: orochi::sqldb::Database::new(),
        recording: true,
        seed: 1,
        ..Default::default()
    });
    for user in ["u1", "u2", "u1", "u1", "u2"] {
        server.handle(HttpRequest::get("/c.php", &[]).with_cookie("sess", user));
    }
    let bundle = server.into_bundle();
    // Sanity: u1 reached 3, u2 reached 2.
    let balanced = bundle.trace.ensure_balanced().unwrap();
    let bodies: Vec<String> = balanced
        .request_ids()
        .map(|rid| balanced.response(rid).body.clone())
        .collect();
    assert!(bodies.contains(&"count=3".to_string()));
    let mut executor = AccPhpExecutor::new(scripts);
    audit(
        &bundle.trace,
        &bundle.reports,
        &mut executor,
        &AuditConfig::new(),
    )
    .unwrap_or_else(|r| panic!("session counter rejected: {r}"));
}
