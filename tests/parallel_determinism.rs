//! The parallel-audit determinism suite: at every thread count the
//! pooled audit must produce the *same verdict and the same failure
//! diagnostic* as the sequential audit — for honest runs and for every
//! tampering dimension of the soundness battery.
//!
//! The parallel audit's contract (see `orochi_core::audit`) is that only
//! scheduling-dependent performance counters (the dedup hit/miss split)
//! may vary with the thread count; everything the verifier *decides* is
//! byte-identical. These tests pin that contract.

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, audit_parallel, AuditConfig, AuditOutcome, Rejection};
use orochi::core::precedence::create_time_precedence_graph;
use orochi::core::reports::Reports;
use orochi::php::CompiledScript;
use orochi::server::server::AuditBundle;
use orochi::server::{Server, ServerConfig};
use orochi::state::{ObjectName, OpContents, OpLog};
use orochi::trace::{Event, HttpRequest, Trace};
use orochi_common::ids::RequestId;
use std::collections::HashMap;

const THREADS: &[usize] = &[1, 2, 8];

/// An honest HotCRP run: multi-statement transactions, sessions, and
/// nondeterminism (the same shape the soundness battery uses).
fn honest_hotcrp() -> (AuditBundle, HashMap<String, CompiledScript>, AuditConfig) {
    let app = orochi::apps::hotcrp::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 31,
        ..Default::default()
    });
    server.handle(
        HttpRequest::post("/login.php", &[], &[("who", "alice")]).with_cookie("sess", "alice"),
    );
    server.handle(
        HttpRequest::post("/submit.php", &[], &[("title", "T"), ("abstract", "A")])
            .with_cookie("sess", "alice"),
    );
    server.handle(
        HttpRequest::post(
            "/review.php",
            &[],
            &[("id", "1"), ("score", "4"), ("body", "ok")],
        )
        .with_cookie("sess", "alice"),
    );
    server.handle(HttpRequest::get("/paper.php", &[("id", "1")]));
    server.handle(HttpRequest::get("/list.php", &[]));
    let bundle = server.into_bundle();
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), app.initial_db());
    (bundle, scripts, config)
}

/// An honest wiki run with enough Zipf traffic to form real groups, so
/// the pool actually has independent groups to schedule.
fn honest_wiki() -> (AuditBundle, HashMap<String, CompiledScript>, AuditConfig) {
    use orochi::workload::wiki;
    let app = orochi::apps::wiki::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 7,
        ..Default::default()
    });
    let workload = wiki::generate(&wiki::Params::scaled(0.02), 11);
    for req in workload.setup.iter().chain(workload.requests.iter()) {
        server.handle(req.clone());
    }
    let bundle = server.into_bundle();
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), app.initial_db());
    (bundle, scripts, config)
}

/// Runs the pooled audit with `threads` fresh executors.
fn audit_at(
    trace: &Trace,
    reports: &Reports,
    scripts: &HashMap<String, CompiledScript>,
    config: &AuditConfig,
    threads: usize,
) -> Result<AuditOutcome, Rejection> {
    let mut executors: Vec<AccPhpExecutor> = (0..threads)
        .map(|_| AccPhpExecutor::new(scripts.clone()))
        .collect();
    audit_parallel(trace, reports, &mut executors, config)
}

/// Asserts that the sequential audit and the pooled audit at every
/// thread count agree exactly: same verdict, same diagnostic (by value
/// and rendered message), same determinism-relevant counters.
fn assert_determinism(
    label: &str,
    bundle: &AuditBundle,
    scripts: &HashMap<String, CompiledScript>,
    config: &AuditConfig,
) {
    let mut seq_exec = AccPhpExecutor::new(scripts.clone());
    let sequential = audit(&bundle.trace, &bundle.reports, &mut seq_exec, config);
    for &threads in THREADS {
        let pooled = audit_at(&bundle.trace, &bundle.reports, scripts, config, threads);
        match (&sequential, &pooled) {
            (Ok(s), Ok(p)) => {
                let (s, p) = (&s.stats, &p.stats);
                assert_eq!(
                    (s.groups_executed, s.requests_reexecuted),
                    (p.groups_executed, p.requests_reexecuted),
                    "{label}@{threads}: group/request counters diverged"
                );
                assert_eq!(
                    (s.register_ops, s.kv_ops, s.db_txns, s.db_queries),
                    (p.register_ops, p.kv_ops, p.db_txns, p.db_queries),
                    "{label}@{threads}: op counters diverged"
                );
                // The dedup *split* may shift with scheduling, but every
                // SELECT is either deduped or issued.
                assert_eq!(
                    s.db_queries_deduped + s.db_queries_issued,
                    p.db_queries_deduped + p.db_queries_issued,
                    "{label}@{threads}: SELECT accounting diverged"
                );
            }
            (Err(s), Err(p)) => {
                assert_eq!(s, p, "{label}@{threads}: rejection diverged");
                assert_eq!(
                    s.to_string(),
                    p.to_string(),
                    "{label}@{threads}: diagnostic text diverged"
                );
            }
            (s, p) => panic!(
                "{label}@{threads}: verdict diverged: sequential {:?} vs parallel {:?}",
                s.as_ref().err().map(|e| e.to_string()),
                p.as_ref().err().map(|e| e.to_string()),
            ),
        }
    }
}

/// The Fig. 6 frontier is an index-ordered set, so the time-precedence
/// edge list must be identical across constructions — the old hash-set
/// frontier emitted edges in per-run-random order, which this test
/// exists to keep dead. Also pins the ordering contract itself: edges
/// arrive grouped by the arriving request in trace order, with each
/// group's sources ascending by arrival index.
#[test]
fn time_precedence_edge_order_is_deterministic() {
    use orochi::trace::{HttpRequest as Req, HttpResponse as Resp};
    // A synthetic trace with real concurrency: staggered epochs of
    // varying width, plus one long-running request spanning them all.
    let mut events = Vec::new();
    let straggler = RequestId(10_000);
    events.push(Event::Request(straggler, Req::get("/slow", &[])));
    let mut next = 1u64;
    for epoch in 0..40u64 {
        let width = epoch % 7 + 1;
        let base = next;
        for i in 0..width {
            events.push(Event::Request(RequestId(base + i), Req::get("/x", &[])));
        }
        // Close the epoch's requests in reverse arrival order so the
        // frontier insert order differs from index order.
        for i in (0..width).rev() {
            let rid = RequestId(base + i);
            events.push(Event::Response(rid, Resp::ok(rid, "ok")));
        }
        next += width;
    }
    events.push(Event::Response(straggler, Resp::ok(straggler, "ok")));
    let balanced = orochi::trace::Trace { events }.ensure_balanced().unwrap();

    let first = create_time_precedence_graph(&balanced);
    assert!(
        !first.edges.is_empty(),
        "the trace must exercise the frontier"
    );
    let pos: HashMap<RequestId, usize> = balanced
        .request_ids()
        .enumerate()
        .map(|(i, r)| (r, i))
        .collect();
    let mut prev: Option<(usize, usize)> = None;
    for (from, to) in &first.edges {
        let (f, t) = (pos[from], pos[to]);
        if let Some((pf, pt)) = prev {
            assert!(
                pt < t || (pt == t && pf < f),
                "edges must be grouped by arrival with ascending sources: \
                 ({pf},{pt}) then ({f},{t})"
            );
        }
        prev = Some((f, t));
    }
    for _ in 0..4 {
        assert_eq!(
            create_time_precedence_graph(&balanced).edges,
            first.edges,
            "edge order drifted between runs"
        );
    }
}

#[test]
fn honest_hotcrp_accepts_at_every_thread_count() {
    let (bundle, scripts, config) = honest_hotcrp();
    assert_determinism("hotcrp-honest", &bundle, &scripts, &config);
}

#[test]
fn honest_wiki_accepts_at_every_thread_count() {
    let (bundle, scripts, config) = honest_wiki();
    assert_determinism("wiki-honest", &bundle, &scripts, &config);
}

fn db_log_index(reports: &Reports) -> usize {
    reports
        .op_logs
        .index_of(&ObjectName("db:main".into()))
        .expect("db log present")
}

#[test]
fn tampered_status_rejects_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    for e in bundle.trace.events.iter_mut() {
        if let Event::Response(_, resp) = e {
            resp.status = 503;
            break;
        }
    }
    assert_determinism("status-flip", &bundle, &scripts, &config);
}

#[test]
fn tampered_sql_rejects_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    let i = db_log_index(&bundle.reports);
    let log = bundle.reports.op_logs.log_mut(i).unwrap();
    let mut entries = log.entries().to_vec();
    for e in entries.iter_mut() {
        if let OpContents::DbOp { queries, .. } = &mut e.contents {
            if let Some(q) = queries.iter_mut().find(|q| q.starts_with("INSERT")) {
                *q = q.replace("INSERT", "INSERT ");
                break;
            }
        }
    }
    *log = OpLog::from_entries(entries);
    assert_determinism("sql-rewrite", &bundle, &scripts, &config);
}

#[test]
fn tampered_commit_flag_rejects_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    let i = db_log_index(&bundle.reports);
    let log = bundle.reports.op_logs.log_mut(i).unwrap();
    let mut entries = log.entries().to_vec();
    for e in entries.iter_mut() {
        if let OpContents::DbOp { succeeded, .. } = &mut e.contents {
            *succeeded = !*succeeded;
            break;
        }
    }
    *log = OpLog::from_entries(entries);
    assert_determinism("commit-flip", &bundle, &scripts, &config);
}

#[test]
fn truncated_nondet_rejects_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    let rids: Vec<RequestId> = bundle
        .trace
        .ensure_balanced()
        .unwrap()
        .request_ids()
        .collect();
    let mut rebuilt = orochi::core::nondet::NondetLog::new();
    let mut dropped = false;
    for rid in rids {
        let values = bundle.reports.nondet.for_request(rid);
        let keep = if !dropped && !values.is_empty() {
            dropped = true;
            &values[..values.len() - 1]
        } else {
            values
        };
        for v in keep {
            rebuilt.push(rid, v.clone());
        }
    }
    assert!(dropped, "workload records nondeterminism");
    bundle.reports.nondet = rebuilt;
    assert_determinism("nondet-truncate", &bundle, &scripts, &config);
}

#[test]
fn renumbered_opnums_reject_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    let i = db_log_index(&bundle.reports);
    let log = bundle.reports.op_logs.log_mut(i).unwrap();
    let mut entries = log.entries().to_vec();
    if let Some(e) = entries.first_mut() {
        e.opnum = orochi_common::ids::OpNum(e.opnum.0 + 1);
    }
    *log = OpLog::from_entries(entries);
    assert_determinism("opnum-shift", &bundle, &scripts, &config);
}

#[test]
fn op_moved_to_wrong_object_rejects_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    let i = db_log_index(&bundle.reports);
    let entry = {
        let log = bundle.reports.op_logs.log_mut(i).unwrap();
        let mut entries = log.entries().to_vec();
        let moved = entries.remove(0);
        *log = OpLog::from_entries(entries);
        moved
    };
    let reg_index = bundle
        .reports
        .op_logs
        .index_of(&ObjectName("reg:sess:alice".into()))
        .expect("session log present");
    let log = bundle.reports.op_logs.log_mut(reg_index).unwrap();
    let mut entries = log.entries().to_vec();
    entries.insert(0, entry);
    *log = OpLog::from_entries(entries);
    assert_determinism("wrong-object", &bundle, &scripts, &config);
}

#[test]
fn unknown_request_in_grouping_rejects_identically() {
    let (mut bundle, scripts, config) = honest_hotcrp();
    // A grouping that names a request the trace does not contain; the
    // pre-pass surfaces it only after every earlier group re-executes
    // cleanly, matching the sequential walk.
    bundle
        .reports
        .groupings
        .push((orochi_common::ids::CtlFlowTag(0xdead), vec![RequestId(999)]));
    assert_determinism("ghost-grouping", &bundle, &scripts, &config);
}

#[test]
fn tampered_wiki_body_rejects_identically() {
    let (mut bundle, scripts, config) = honest_wiki();
    for e in bundle.trace.events.iter_mut() {
        if let Event::Response(_, resp) = e {
            resp.body.push('!');
            break;
        }
    }
    assert_determinism("wiki-body", &bundle, &scripts, &config);
}
