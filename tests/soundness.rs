//! The soundness battery: every kind of executor misbehaviour must be
//! rejected (§2 Soundness, exercised through the built system).
//!
//! Each test serves an honest run of the HotCRP app (chosen because it
//! exercises multi-statement transactions, sessions, and nondeterminism)
//! and then tampers with exactly one part of the trace or reports.
//! Wherever the generative operator library covers a tamper class, the
//! test applies the [`orochi::harness::mutation`] operator (so the
//! battery exercises the same code paths the adversarial campaign
//! fuzzes); tampers with no operator equivalent — value edits in
//! place, wrong initial-state claims — stay hand-written.

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, AuditConfig};
use orochi::core::nondet::NondetValue;
use orochi::core::reports::Reports;
use orochi::harness::mutation::{MutationOp, MutationSite};
use orochi::php::CompiledScript;
use orochi::server::server::AuditBundle;
use orochi::server::{Server, ServerConfig};
use orochi::state::{ObjectName, OpContents, OpLog};
use orochi::trace::{Event, HttpRequest, Trace};
use orochi_common::ids::RequestId;
use orochi_common::rng::SplitMix64;
use std::collections::HashMap;

/// Applies one operator at a seeded site; panics if the fixture lost
/// the structure the operator targets, so a workload change that
/// silently empties a tamper class fails loudly.
fn apply_op(
    label: &str,
    op: MutationOp,
    trace: &mut Trace,
    reports: &mut Reports,
    seed: u64,
) -> MutationSite {
    let mut rng = SplitMix64::new(seed);
    let mut touched = std::collections::HashSet::new();
    op.apply(trace, reports, &mut rng, &mut touched)
        .unwrap_or_else(|| panic!("{label}: fixture offers no site for {}", op.name()))
}

fn honest() -> (AuditBundle, HashMap<String, CompiledScript>, AuditConfig) {
    let app = orochi::apps::hotcrp::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 31,
        ..Default::default()
    });
    server.handle(
        HttpRequest::post("/login.php", &[], &[("who", "alice")]).with_cookie("sess", "alice"),
    );
    server.handle(
        HttpRequest::post("/submit.php", &[], &[("title", "T"), ("abstract", "A")])
            .with_cookie("sess", "alice"),
    );
    server.handle(
        HttpRequest::post(
            "/review.php",
            &[],
            &[("id", "1"), ("score", "4"), ("body", "ok")],
        )
        .with_cookie("sess", "alice"),
    );
    server.handle(HttpRequest::get("/paper.php", &[("id", "1")]));
    server.handle(HttpRequest::get("/list.php", &[]));
    let bundle = server.into_bundle();
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), app.initial_db());
    (bundle, scripts, config)
}

fn assert_rejected(
    label: &str,
    trace: &Trace,
    reports: &Reports,
    scripts: &HashMap<String, CompiledScript>,
    config: &AuditConfig,
) {
    let mut verifier = AccPhpExecutor::new(scripts.clone());
    let verdict = audit(trace, reports, &mut verifier, config);
    assert!(verdict.is_err(), "{label}: tampering must be rejected");
}

#[test]
fn honest_run_is_accepted() {
    let (bundle, scripts, config) = honest();
    let mut verifier = AccPhpExecutor::new(scripts);
    audit(&bundle.trace, &bundle.reports, &mut verifier, &config)
        .unwrap_or_else(|r| panic!("honest run rejected: {r}"));
}

#[test]
fn rejects_flipped_status_code() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "status",
        MutationOp::ForgeResponseStatus,
        &mut bundle.trace,
        &mut bundle.reports,
        1,
    );
    assert_rejected("status", &bundle.trace, &bundle.reports, &scripts, &config);
}

#[test]
fn rejects_added_response_header() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "header",
        MutationOp::InjectResponseHeader,
        &mut bundle.trace,
        &mut bundle.reports,
        2,
    );
    assert_rejected("header", &bundle.trace, &bundle.reports, &scripts, &config);
}

#[test]
fn rejects_unbalanced_trace_missing_response() {
    let (mut bundle, scripts, config) = honest();
    let before = bundle.trace.events.len();
    apply_op(
        "missing-response",
        MutationOp::DropResponse,
        &mut bundle.trace,
        &mut bundle.reports,
        3,
    );
    assert_eq!(bundle.trace.events.len(), before - 1);
    assert_rejected(
        "missing-response",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_mislabeled_response() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "mislabel",
        MutationOp::SwapRidLabels,
        &mut bundle.trace,
        &mut bundle.reports,
        4,
    );
    assert_rejected(
        "mislabel",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

/// Finds the db log index.
fn db_log_index(reports: &Reports) -> usize {
    reports
        .op_logs
        .index_of(&ObjectName("db:main".into()))
        .expect("db log present")
}

#[test]
fn rejects_rewritten_sql_in_log() {
    let (mut bundle, scripts, config) = honest();
    let site = apply_op(
        "sql-rewrite",
        MutationOp::RewriteDbQuery,
        &mut bundle.trace,
        &mut bundle.reports,
        5,
    );
    assert_eq!(site.object, "db:main");
    assert_rejected(
        "sql-rewrite",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_forged_write_result() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "write-result",
        MutationOp::ForgeDbWriteResult,
        &mut bundle.trace,
        &mut bundle.reports,
        6,
    );
    assert_rejected(
        "write-result",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_forged_insert_id() {
    // No operator forges last_insert_id specifically (the operator
    // library bumps affected-row counts); keep the hand-written tamper
    // so the insert-id redo check stays covered.
    let (mut bundle, scripts, config) = honest();
    let i = db_log_index(&bundle.reports);
    let log = bundle.reports.op_logs.log_mut(i).unwrap();
    let mut entries = log.entries().to_vec();
    'outer: for e in entries.iter_mut() {
        if let OpContents::DbOp { write_results, .. } = &mut e.contents {
            for w in write_results.iter_mut().flatten() {
                if let Some(id) = w.last_insert_id.as_mut() {
                    *id += 41;
                    break 'outer;
                }
            }
        }
    }
    *log = OpLog::from_entries(entries);
    assert_rejected(
        "insert-id",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_commit_flag_flip() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "commit-flip",
        MutationOp::FlipDbCommit,
        &mut bundle.trace,
        &mut bundle.reports,
        7,
    );
    assert_rejected(
        "commit-flip",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_op_moved_to_wrong_object() {
    let (mut bundle, scripts, config) = honest();
    let site = apply_op(
        "wrong-object",
        MutationOp::MoveOpAcrossLogs,
        &mut bundle.trace,
        &mut bundle.reports,
        8,
    );
    assert!(
        site.detail.contains(" from ") && site.detail.contains(" to "),
        "site names both logs: {site}"
    );
    assert_rejected(
        "wrong-object",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_swapped_db_transactions() {
    let (mut bundle, scripts, config) = honest();
    let i = db_log_index(&bundle.reports);
    let log = bundle.reports.op_logs.log_mut(i).unwrap();
    let mut entries = log.entries().to_vec();
    // Swap two adjacent transactions from different requests.
    let swap_at = entries
        .windows(2)
        .position(|w| w[0].rid != w[1].rid)
        .expect("adjacent entries from different requests");
    entries.swap(swap_at, swap_at + 1);
    *log = OpLog::from_entries(entries);
    assert_rejected(
        "txn-swap",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_tampered_time_value() {
    let (mut bundle, scripts, config) = honest();
    // Rebuild the nondet log with one time value altered: the program
    // embedded the original in a DB write, so re-execution diverges.
    let rids: Vec<RequestId> = bundle
        .trace
        .ensure_balanced()
        .unwrap()
        .request_ids()
        .collect();
    let mut rebuilt = orochi::core::nondet::NondetLog::new();
    let mut tampered = false;
    for rid in rids {
        for v in bundle.reports.nondet.for_request(rid) {
            let v = match v {
                NondetValue::Time(t) if !tampered => {
                    tampered = true;
                    NondetValue::Time(t + 1)
                }
                other => other.clone(),
            };
            rebuilt.push(rid, v);
        }
    }
    assert!(tampered, "workload records at least one time value");
    bundle.reports.nondet = rebuilt;
    assert_rejected(
        "time-tamper",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_truncated_nondet() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "nondet-truncate",
        MutationOp::TruncateNondet,
        &mut bundle.trace,
        &mut bundle.reports,
        9,
    );
    assert_rejected(
        "nondet-truncate",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_non_monotonic_time_report() {
    // `MutationOp::RegressNondetTime` needs a request recording two
    // time values; no HotCRP request does, so this tamper stays
    // hand-written: reverse every time value so the §4.6 validity
    // check alone must fire.
    let (mut bundle, scripts, config) = honest();
    let rids: Vec<RequestId> = bundle
        .trace
        .ensure_balanced()
        .unwrap()
        .request_ids()
        .collect();
    let mut rebuilt = orochi::core::nondet::NondetLog::new();
    for rid in rids {
        let values = bundle.reports.nondet.for_request(rid).to_vec();
        for v in values {
            let v = match v {
                NondetValue::Time(t) => NondetValue::Time(1_000_000_000 - t),
                other => other,
            };
            rebuilt.push(rid, v);
        }
    }
    bundle.reports.nondet = rebuilt;
    assert_rejected(
        "time-order",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_renumbered_opnums() {
    let (mut bundle, scripts, config) = honest();
    apply_op(
        "opnum-shift",
        MutationOp::ShiftOpnum,
        &mut bundle.trace,
        &mut bundle.reports,
        11,
    );
    assert_rejected(
        "opnum-shift",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_wrong_initial_state_claim() {
    // The verifier holds its own copy of the initial DB (§4.1); if the
    // server actually started from different state, re-execution
    // diverges from the trace.
    let (bundle, scripts, _config) = honest();
    let mut wrong = AuditConfig::new();
    let mut db = orochi::apps::hotcrp::app().initial_db();
    db.execute_autocommit(
        "INSERT INTO papers (title, abstract, author, updated) VALUES ('ghost', 'g', 'x', 1)",
    )
    .0
    .unwrap();
    wrong.initial_dbs.insert("db:main".to_string(), db);
    assert_rejected(
        "initial-state",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &wrong,
    );
}

/// An honest wiki run engineered to exercise the versioned-KV path:
/// the page cache is stored, hit, deleted (edit), re-stored with a new
/// body, and hit again — two differing writes plus reads of both, the
/// structure the KV tampering helpers target.
fn honest_wiki_kv() -> (AuditBundle, HashMap<String, CompiledScript>, AuditConfig) {
    let app = orochi::apps::wiki::app();
    let scripts = app.compile().unwrap();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 47,
        ..Default::default()
    });
    server.handle(
        HttpRequest::post("/login.php", &[], &[("user", "alice")]).with_cookie("sess", "alice"),
    );
    server.handle(
        HttpRequest::post("/edit.php", &[], &[("title", "T"), ("body", "v1")])
            .with_cookie("sess", "alice"),
    );
    server.handle(HttpRequest::get("/wiki.php", &[("title", "T")])); // miss + store v1
    server.handle(HttpRequest::get("/wiki.php", &[("title", "T")])); // hit v1
    server.handle(
        HttpRequest::post("/edit.php", &[], &[("title", "T"), ("body", "v2")])
            .with_cookie("sess", "alice"),
    ); // apc_delete
    server.handle(HttpRequest::get("/wiki.php", &[("title", "T")])); // miss + store v2
    server.handle(HttpRequest::get("/wiki.php", &[("title", "T")])); // hit v2
    let bundle = server.into_bundle();
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), app.initial_db());
    (bundle, scripts, config)
}

/// An honest shop run with the same engineered KV structure on the
/// inventory counters (seed, decrement, decrement, read).
fn honest_shop_kv() -> (AuditBundle, HashMap<String, CompiledScript>, AuditConfig) {
    let app = orochi::apps::shop::app();
    let scripts = app.compile().unwrap();
    let params = orochi::workload::shop::Params::scaled(0.01);
    let mut db = app.initial_db();
    for sql in orochi::workload::shop::seed_sql(&params) {
        db.execute_autocommit(&sql).0.unwrap();
    }
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: db.deep_clone(),
        recording: true,
        seed: 53,
        ..Default::default()
    });
    server
        .handle(HttpRequest::post("/login.php", &[], &[("user", "ada")]).with_cookie("sess", "c1"));
    server.handle(HttpRequest::get("/product.php", &[("id", "1")]).with_cookie("sess", "c1"));
    for _ in 0..2 {
        server.handle(
            HttpRequest::post("/cart.php", &[], &[("id", "1"), ("qty", "1")])
                .with_cookie("sess", "c1"),
        );
        server.handle(HttpRequest::post("/checkout.php", &[], &[]).with_cookie("sess", "c1"));
    }
    server.handle(HttpRequest::get("/product.php", &[("id", "1")]).with_cookie("sess", "c1"));
    let bundle = server.into_bundle();
    let mut config = AuditConfig::new();
    config.initial_dbs.insert("db:main".to_string(), db);
    (bundle, scripts, config)
}

#[test]
fn honest_kv_heavy_runs_are_accepted() {
    for (label, (bundle, scripts, config)) in
        [("wiki", honest_wiki_kv()), ("shop", honest_shop_kv())]
    {
        let mut verifier = AccPhpExecutor::new(scripts);
        audit(&bundle.trace, &bundle.reports, &mut verifier, &config)
            .unwrap_or_else(|r| panic!("honest {label} KV run rejected: {r}"));
    }
}

#[test]
fn rejects_dropped_kv_write_on_wiki() {
    let (mut bundle, scripts, config) = honest_wiki_kv();
    assert!(
        orochi::harness::tamper::drop_kv_write(&mut bundle.reports, "page:"),
        "wiki run stores page fragments"
    );
    assert_rejected(
        "wiki-kv-drop",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_reordered_kv_read_on_wiki() {
    let (mut bundle, scripts, config) = honest_wiki_kv();
    assert!(
        orochi::harness::tamper::reorder_kv_read(&mut bundle.reports, "page:"),
        "wiki run reads a page fragment that changed"
    );
    assert_rejected(
        "wiki-kv-reorder",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_dropped_kv_write_on_shop() {
    let (mut bundle, scripts, config) = honest_shop_kv();
    assert!(
        orochi::harness::tamper::drop_kv_write(&mut bundle.reports, "inv:"),
        "shop run writes inventory counters"
    );
    assert_rejected(
        "shop-kv-drop",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn rejects_reordered_kv_read_on_shop() {
    let (mut bundle, scripts, config) = honest_shop_kv();
    assert!(
        orochi::harness::tamper::reorder_kv_read(&mut bundle.reports, "inv:"),
        "shop run reads an inventory counter that changed"
    );
    assert_rejected(
        "shop-kv-reorder",
        &bundle.trace,
        &bundle.reports,
        &scripts,
        &config,
    );
}

#[test]
fn ooo_oracle_agrees_on_honest_and_tampered() {
    use orochi::core::ooo::ooo_audit;
    let (bundle, scripts, config) = honest();
    // Honest: both accept.
    let mut a = AccPhpExecutor::new(scripts.clone());
    let mut b = AccPhpExecutor::new(scripts.clone());
    let grouped = audit(&bundle.trace, &bundle.reports, &mut a, &config);
    let ooo = ooo_audit(&bundle.trace, &bundle.reports, &mut b, &config);
    assert!(
        grouped.is_ok() && ooo.is_ok(),
        "oracles disagree on honest run"
    );
    // Tampered: both reject.
    let mut tampered = bundle;
    for e in tampered.trace.events.iter_mut() {
        if let Event::Response(_, resp) = e {
            resp.body.push('!');
            break;
        }
    }
    let mut a = AccPhpExecutor::new(scripts.clone());
    let mut b = AccPhpExecutor::new(scripts);
    let grouped = audit(&tampered.trace, &tampered.reports, &mut a, &config);
    let ooo = ooo_audit(&tampered.trace, &tampered.reports, &mut b, &config);
    assert!(
        grouped.is_err() && ooo.is_err(),
        "oracles disagree on tampered run"
    );
}
