//! Property tests for the streaming epoch audit (proptest).
//!
//! * Epoch boundaries are unobservable: for fuzzed epoch budgets — one
//!   event per epoch, odd mid-sized budgets, a budget at least the
//!   trace, and the batch fallback (0) — the streaming audit returns
//!   the identical verdict and diagnostic as the batch audit over the
//!   same sealed store, sequentially and pooled, for an honest run and
//!   for every tampered variant.
//! * Sealed-epoch state leaves the carry: feeding a whole trace through
//!   small epochs never accumulates the executed payloads — the
//!   high-water carry stays below the trace's own payload volume.

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::AuditConfig;
use orochi::core::streaming::StreamingAudit;
use orochi::core::Rejection;
use orochi::harness::driver::{
    run_audit_cold, run_audit_streaming, serve, spill_bundle, AppWorkload, AuditOptions, AuditRun,
    ServeOptions,
};
use orochi::harness::experiments::shop_workload;
use orochi::harness::tamper;
use orochi::trace::{Event, TraceStoreReader};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// One verdict string per audit: acceptance carries the re-execution
/// count, rejection the full diagnostic — so equality means the same
/// verdict *and* the same diagnostic.
fn verdict(run: &Result<AuditRun, Rejection>) -> String {
    match run {
        Ok(run) => format!("accept:{}", run.outcome.stats.requests_reexecuted),
        Err(r) => format!("reject:{r}"),
    }
}

/// The audited variants: an honest run plus one tampering per rejection
/// family (trace output forgery, stale KV read, replayed KV write).
const VARIANTS: [&str; 4] = [
    "honest",
    "forged_cart_total",
    "stale_inventory_read",
    "replayed_kv_write",
];

/// Serving the shop workload per proptest case would dominate the
/// suite, so each variant is served, tampered, and spilled to a sealed
/// segment store once; every case re-audits the stores under a
/// different epoch budget.
fn fixture() -> &'static (AppWorkload, Vec<PathBuf>) {
    static CELL: OnceLock<(AppWorkload, Vec<PathBuf>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let work = shop_workload(0.01, 42);
        let dirs = VARIANTS
            .iter()
            .map(|variant| {
                let mut served = serve(&work, &ServeOptions::default());
                let tampered = match *variant {
                    "honest" => true,
                    "forged_cart_total" => tamper::forge_cart_total(&mut served.bundle.trace),
                    "stale_inventory_read" => {
                        tamper::reorder_kv_read(&mut served.bundle.reports, "inv:")
                    }
                    "replayed_kv_write" => {
                        tamper::replay_kv_write(&mut served.bundle.reports, "inv:")
                    }
                    _ => unreachable!(),
                };
                assert!(tampered, "{variant}: no tamper site in the workload");
                let dir = std::env::temp_dir().join(format!(
                    "orochi-test-streaming-{}-{variant}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                // Small segments so epoch boundaries and segment
                // boundaries interleave rather than coincide.
                spill_bundle(&served.bundle, &dir, 16 * 1024).expect("spill");
                dir
            })
            .collect();
        (work, dirs)
    })
}

/// The batch oracle, cached per (variant, threads): the budget axis is
/// what the property fuzzes, so the budget-free arm is computed once.
fn batch_verdict(variant: usize, threads: usize) -> String {
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    if let Some(v) = cache.lock().unwrap().get(&(variant, threads)) {
        return v.clone();
    }
    let (work, dirs) = fixture();
    let reader = TraceStoreReader::open(&dirs[variant]).expect("open store");
    let opts = AuditOptions {
        threads,
        ..Default::default()
    };
    let v = verdict(&run_audit_cold(&reader, work, &opts));
    cache.lock().unwrap().insert((variant, threads), v.clone());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the epoch budget — one event per epoch, a fuzzed
    /// mid-sized budget, a budget at least the whole trace, or the
    /// batch fallback (0) — the streaming audit's verdict and
    /// diagnostic are byte-identical to the batch audit's, at one
    /// worker and pooled, for the honest run and every tampered one.
    #[test]
    fn epoch_boundaries_never_change_the_verdict(
        budget in prop_oneof![
            Just(0usize),
            Just(1usize),
            2usize..48,
            Just(1usize << 20),
        ],
        variant in 0usize..4,
    ) {
        let (work, dirs) = fixture();
        let reader = TraceStoreReader::open(&dirs[variant]).expect("open store");
        for threads in [1usize, 4] {
            let opts = AuditOptions {
                threads,
                ..Default::default()
            };
            let batch = batch_verdict(variant, threads);
            let streaming = verdict(&run_audit_streaming(&reader, work, &opts, budget));
            prop_assert_eq!(
                &streaming, &batch,
                "variant {} budget {} threads {}",
                VARIANTS[variant], budget, threads
            );
        }
    }
}

/// Sealed epochs leave the carry: the high-water mark of
/// [`StreamingAudit::carry_bytes`] over a whole honest trace fed in
/// small epochs stays below the trace's own payload volume — executed
/// requests' payloads and compared responses are dropped at the epoch
/// boundary instead of accumulating the way the batch audit's resident
/// trace does.
#[test]
fn sealed_epoch_state_leaves_the_carry() {
    use orochi::workload::wiki;

    let work = AppWorkload {
        app: orochi::apps::wiki::app(),
        workload: wiki::generate(&wiki::Params::scaled(0.02), 7),
        seed_sql: Vec::new(),
    };
    let served = serve(&work, &ServeOptions::default());
    let bundle = served.bundle;
    let payload_total: usize = bundle
        .trace
        .events
        .iter()
        .map(|e| match e {
            Event::Request(..) => 0,
            Event::Response(_, resp) => resp.body.len(),
        })
        .sum();

    let scripts = work.app.compile().expect("application compiles");
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), work.initial_db());
    let mut executors = vec![AccPhpExecutor::new(scripts)];
    let mut audit = StreamingAudit::new(&bundle.reports, &config, 1);
    let mut max_carry = 0usize;
    for epoch in bundle.trace.events.chunks(8) {
        assert!(
            audit.feed_epoch(epoch, &mut executors),
            "audit gave up early"
        );
        max_carry = max_carry.max(audit.carry_bytes());
    }
    assert!(audit.epochs() > 1, "trace too small to cross an epoch");
    assert!(
        max_carry < payload_total,
        "carry high-water {max_carry} B should stay below the trace payload {payload_total} B"
    );
    let outcome = audit.finish(&bundle.trace, &mut executors);
    assert!(
        outcome.is_ok(),
        "honest wiki run rejected: {}",
        outcome.unwrap_err()
    );
}
