//! Transaction semantics through the whole pipeline: commit, voluntary
//! rollback, and statement-failure abort — each served online, recorded,
//! and audited. Aborted transactions exercise the scratch-replay path
//! (§A.7 discussion in `orochi-sqldb::versioned`): their reads are
//! captured during redo because interval queries cannot express
//! "visible to later queries of this transaction only".

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, AuditConfig};
use orochi::php::{compile, parse_script, CompiledScript};
use orochi::server::{Server, ServerConfig};
use orochi::sqldb::Database;
use orochi::trace::HttpRequest;
use std::collections::HashMap;

fn scripts() -> HashMap<String, CompiledScript> {
    let mut out = HashMap::new();
    // Attempts to claim a unique id; the second claim of the same id
    // fails mid-transaction and the commit reports the abort. The
    // SELECT in between is an intra-transaction read that sees the
    // transaction's own (eventually discarded) insert.
    out.insert(
        "/claim.php".to_string(),
        compile(
            "/claim.php",
            &parse_script(
                r#"<?php
                $id = intval($_GET['id']);
                db_begin();
                db_query('INSERT INTO claims (id, who) VALUES (' . $id . ", 'first')");
                $r = db_query('SELECT COUNT(*) FROM claims');
                $seen = $r[0]['COUNT(*)'];
                $dup = db_query('INSERT INTO claims (id, who) VALUES (' . $id . ", 'second')");
                $ok = db_commit();
                echo $ok ? 'claimed' : 'aborted';
                echo ':' . $seen . ':' . ($dup ? 'dup-ok' : 'dup-failed');
                "#,
            )
            .unwrap(),
        )
        .unwrap(),
    );
    // A voluntary rollback: insert then change your mind.
    out.insert(
        "/undo.php".to_string(),
        compile(
            "/undo.php",
            &parse_script(
                r#"<?php
                db_begin();
                db_query("INSERT INTO claims (id, who) VALUES (999, 'temp')");
                db_rollback();
                $r = db_query('SELECT COUNT(*) FROM claims WHERE id = 999');
                echo 'count=' . $r[0]['COUNT(*)'];
                "#,
            )
            .unwrap(),
        )
        .unwrap(),
    );
    // A clean committed transaction.
    out.insert(
        "/commit.php".to_string(),
        compile(
            "/commit.php",
            &parse_script(
                r#"<?php
                $id = intval($_GET['id']);
                db_begin();
                db_query('INSERT INTO claims (id, who) VALUES (' . $id . ", 'c')");
                db_query('UPDATE claims SET who = ' . "'final'" . ' WHERE id = ' . $id);
                $ok = db_commit();
                echo $ok ? 'ok' : 'failed';
                "#,
            )
            .unwrap(),
        )
        .unwrap(),
    );
    out
}

fn initial_db() -> Database {
    let mut db = Database::new();
    db.execute_autocommit("CREATE TABLE claims (id INT PRIMARY KEY, who TEXT)")
        .0
        .unwrap();
    db
}

fn serve_and_audit(requests: Vec<HttpRequest>) -> Vec<String> {
    let scripts = scripts();
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: initial_db(),
        recording: true,
        seed: 17,
        ..Default::default()
    });
    let mut bodies = Vec::new();
    for req in requests {
        bodies.push(server.handle(req).body);
    }
    let bundle = server.into_bundle();
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), initial_db());
    let mut verifier = AccPhpExecutor::new(scripts);
    audit(&bundle.trace, &bundle.reports, &mut verifier, &config)
        .unwrap_or_else(|r| panic!("honest transactional run rejected: {r}"));
    bodies
}

#[test]
fn statement_failure_aborts_and_audits() {
    // The claim aborts because the duplicate insert fails; the
    // intra-transaction SELECT saw the (discarded) first insert.
    let bodies = serve_and_audit(vec![HttpRequest::get("/claim.php", &[("id", "7")])]);
    assert_eq!(bodies[0], "aborted:1:dup-failed");
}

#[test]
fn abort_leaves_no_trace_in_later_requests() {
    let bodies = serve_and_audit(vec![
        HttpRequest::get("/claim.php", &[("id", "7")]),
        HttpRequest::get("/undo.php", &[]),
        HttpRequest::get("/commit.php", &[("id", "7")]),
        HttpRequest::get("/claim.php", &[("id", "7")]),
    ]);
    // First claim aborted, so the commit succeeds with the same id...
    assert_eq!(bodies[0], "aborted:1:dup-failed");
    assert_eq!(bodies[1], "count=0");
    assert_eq!(bodies[2], "ok");
    // ...and the final claim aborts at the FIRST insert now (id taken):
    // its first statement fails, so the SELECT runs in a poisoned
    // transaction and the count read never happens — the dup insert also
    // observes failure.
    assert!(bodies[3].starts_with("aborted:"), "got {}", bodies[3]);
}

#[test]
fn voluntary_rollback_audits() {
    let bodies = serve_and_audit(vec![
        HttpRequest::get("/undo.php", &[]),
        HttpRequest::get("/undo.php", &[]),
    ]);
    assert_eq!(bodies, vec!["count=0", "count=0"]);
}

#[test]
fn grouped_aborted_transactions_audit() {
    // Several requests with the SAME control flow (all aborting at the
    // duplicate insert) form a real control-flow group whose lanes all
    // carry aborted transactions.
    let mut requests = vec![HttpRequest::get("/commit.php", &[("id", "1")])];
    for _ in 0..4 {
        requests.push(HttpRequest::get("/claim.php", &[("id", "1")]));
    }
    let bodies = serve_and_audit(requests);
    for body in &bodies[1..] {
        assert!(body.starts_with("aborted:"), "got {body}");
    }
}
