//! Workspace smoke test: a fast canary that the facade wiring stays
//! intact. One request is constructed via `orochi::workload`, served
//! through `orochi::server`, and audited with `orochi::core::audit` —
//! touching every re-export layer the other tests rely on.

use orochi::accphp::AccPhpExecutor;
use orochi::apps::wiki;
use orochi::core::audit::{audit, AuditConfig};
use orochi::server::{Server, ServerConfig};
use orochi::workload::wiki as wiki_workload;

#[test]
fn one_workload_request_roundtrips_through_the_facade() {
    // Construct requests via the workload generator (tiny scale: a few
    // setup edits plus at least one measured view).
    let workload = wiki_workload::generate(&wiki_workload::Params::scaled(0.001), 42);
    assert!(
        !workload.is_empty(),
        "scaled workload generated no requests"
    );

    // Serve through orochi::server.
    let app = wiki::app();
    let scripts = app.compile().expect("wiki app compiles");
    let server = Server::new(ServerConfig {
        scripts: scripts.clone(),
        initial_db: app.initial_db(),
        recording: true,
        seed: 1,
        ..Default::default()
    });
    let served = workload.all();
    assert!(!served.is_empty());
    for req in served {
        server.handle(req);
    }
    let bundle = server.into_bundle();

    // Audit with orochi::core::audit.
    let mut config = AuditConfig::new();
    config
        .initial_dbs
        .insert("db:main".to_string(), app.initial_db());
    let mut verifier = AccPhpExecutor::new(scripts);
    let outcome = audit(&bundle.trace, &bundle.reports, &mut verifier, &config)
        .expect("honest serve must pass the audit");
    assert!(outcome.stats.requests_reexecuted > 0);
}
