//! The adversarial campaign, property-tested: seeded mutation plans
//! over a served mixed four-app bundle must be rejected with
//! byte-identical diagnostics at 1 and 4 audit threads and across the
//! batch and streaming audit paths, while the honest bundle accepts
//! everywhere. A pinned-plan regression guards the seed-replay
//! contract: a `(seed, k)` pair must keep producing the same
//! `MutationSite` debug rendering across runs, or escape reports stop
//! being replayable.

use orochi::accphp::AccPhpExecutor;
use orochi::core::audit::{audit, audit_parallel, AuditConfig, Rejection};
use orochi::core::nondet::{NondetLog, NondetValue};
use orochi::core::reports::Reports;
use orochi::core::streaming::audit_streaming_source;
use orochi::harness::driver::{serve, AppWorkload, ServeOptions};
use orochi::harness::experiments::mixed_workload;
use orochi::harness::mutation::{MutationPlan, MutationSite};
use orochi::php::CompiledScript;
use orochi::state::{ObjectName, OpContents, OpLog, OpLogEntry, OpLogs};
use orochi::trace::{Event, HttpRequest, HttpResponse, Trace};
use orochi_common::ids::{CtlFlowTag, OpNum, RequestId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Epoch budget for the streaming arm: small enough that the CI-scale
/// trace spans several epochs.
const EPOCH_EVENTS: usize = 32;

type Fixture = (
    AppWorkload,
    Trace,
    Reports,
    HashMap<String, CompiledScript>,
    AuditConfig,
);

/// One honest serve of the mixed four-app workload, shared by every
/// proptest case — serving per case would dominate the suite.
fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let work = mixed_workload(0.004, 21);
        let scripts = work.app.compile().expect("mixed app compiles");
        let served = serve(&work, &ServeOptions::default());
        let mut config = work.audit_config();
        config.query_dedup = true;
        (
            work,
            served.bundle.trace.clone(),
            served.bundle.reports.clone(),
            scripts,
            config,
        )
    })
}

/// The campaign's verdict string: the rejection renders into it, so
/// byte-equality of verdicts is byte-equality of diagnostics.
fn verdict<T>(run: &Result<T, Rejection>) -> String {
    match run {
        Ok(_) => "accept".to_string(),
        Err(r) => format!("reject:{r}"),
    }
}

fn executors(scripts: &HashMap<String, CompiledScript>, n: usize) -> Vec<AccPhpExecutor> {
    (0..n)
        .map(|_| AccPhpExecutor::new(scripts.clone()))
        .collect()
}

/// Audits one (possibly mutated) bundle on all three paths and returns
/// the three verdict strings: batch sequential, batch pooled,
/// streaming pooled.
fn all_paths(trace: &Trace, reports: &Reports, threads: usize) -> [String; 3] {
    let (_, _, _, scripts, config) = fixture();
    let batch_seq = verdict(&audit(
        trace,
        reports,
        &mut executors(scripts, 1)[0],
        config,
    ));
    let batch_par = verdict(&audit_parallel(
        trace,
        reports,
        &mut executors(scripts, threads),
        config,
    ));
    let streaming = verdict(&audit_streaming_source(
        trace,
        reports,
        &mut executors(scripts, threads),
        config,
        EPOCH_EVENTS,
    ));
    [batch_seq, batch_par, streaming]
}

#[test]
fn honest_mixed_workload_accepts_on_every_path() {
    let (_, trace, reports, _, _) = fixture();
    for threads in [1usize, 4] {
        let verdicts = all_paths(trace, reports, threads);
        for (path, v) in ["batch-seq", "batch-par", "streaming"]
            .iter()
            .zip(&verdicts)
        {
            assert_eq!(
                v, "accept",
                "honest mixed bundle rejected on {path} at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every seeded plan of k mutations is rejected, and the rejection
    /// diagnostic is byte-identical sequentially, pooled, and streamed.
    #[test]
    fn mutated_bundles_reject_identically_on_every_path(
        seed in any::<u64>(),
        k in 1usize..4,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let (_, trace, reports, _, _) = fixture();
        let mut trace = trace.clone();
        let mut reports = reports.clone();
        let sites = MutationPlan { seed, k }.apply(&mut trace, &mut reports);
        prop_assert!(!sites.is_empty(), "no mutable site in the served bundle");
        let [batch_seq, batch_par, streaming] = all_paths(&trace, &reports, threads);
        prop_assert!(
            batch_seq.starts_with("reject:"),
            "mutant accepted (sites {:?})", sites
        );
        prop_assert_eq!(
            &batch_seq, &batch_par,
            "pooled diagnostic diverged at {} threads (sites {:?})", threads, sites
        );
        prop_assert_eq!(
            &batch_seq, &streaming,
            "streaming diagnostic diverged (sites {:?})", sites
        );
    }

    /// Seed-replay: the same plan applied to fresh clones of the same
    /// bundle reproduces the same sites, byte for byte — the contract
    /// that makes a reported escape (operator, site, seed) replayable.
    #[test]
    fn plans_replay_byte_identically(seed in any::<u64>(), k in 1usize..4) {
        let (_, trace, reports, _, _) = fixture();
        let render = |_: ()| {
            let mut t = trace.clone();
            let mut r = reports.clone();
            format!("{:?}", MutationPlan { seed, k }.apply(&mut t, &mut r))
        };
        prop_assert_eq!(render(()), render(()));
    }
}

/// A tiny hand-built bundle for the pinned-site regression: synthetic
/// so the pin survives workload-generator changes.
fn synthetic() -> (Trace, Reports) {
    let entry = |rid: u64, opnum: u32, contents: OpContents| OpLogEntry {
        rid: RequestId(rid),
        opnum: OpNum(opnum),
        contents,
    };
    let mut events = Vec::new();
    for n in 1..=3u64 {
        events.push(Event::Request(RequestId(n), HttpRequest::get("/x", &[])));
        events.push(Event::Response(
            RequestId(n),
            HttpResponse::ok(RequestId(n), "ok"),
        ));
    }
    let mut op_logs = OpLogs::new();
    op_logs.push(
        ObjectName("kv:apc".into()),
        OpLog::from_entries(vec![
            entry(
                1,
                1,
                OpContents::KvSet {
                    key: "inv:1".into(),
                    value: Some(vec![10]),
                },
            ),
            entry(
                2,
                1,
                OpContents::KvSet {
                    key: "inv:1".into(),
                    value: Some(vec![9]),
                },
            ),
            entry(
                3,
                1,
                OpContents::KvGet {
                    key: "inv:1".into(),
                },
            ),
        ]),
    );
    op_logs.push(
        ObjectName("reg:sess:alice".into()),
        OpLog::from_entries(vec![
            entry(1, 2, OpContents::RegisterRead),
            entry(2, 2, OpContents::RegisterWrite { value: vec![7, 8] }),
        ]),
    );
    let mut op_counts = HashMap::new();
    op_counts.insert(RequestId(1), 2);
    op_counts.insert(RequestId(2), 2);
    op_counts.insert(RequestId(3), 1);
    let mut nondet = NondetLog::new();
    nondet.push(RequestId(1), NondetValue::Time(100));
    nondet.push(RequestId(1), NondetValue::Time(101));
    nondet.push(RequestId(2), NondetValue::Rand(5));
    let reports = Reports {
        groupings: vec![(
            CtlFlowTag(1),
            vec![RequestId(1), RequestId(2), RequestId(3)],
        )],
        op_logs,
        op_counts,
        nondet,
    };
    (Trace { events }, reports)
}

/// The pinned (seed, operator, site) regression: this exact debug
/// rendering is the replay contract for escape reports. If this test
/// breaks, seed replayability broke — fix the operator, don't repin,
/// unless the operator's site selection changed deliberately.
#[test]
fn pinned_plan_reproduces_its_sites_byte_for_byte() {
    let (mut trace, mut reports) = synthetic();
    let sites = MutationPlan {
        seed: 0xC0FFEE,
        k: 2,
    }
    .apply(&mut trace, &mut reports);
    assert_eq!(
        format!("{sites:?}"),
        "[MutationSite { operator: \"inject_response_header\", object: \"trace\", index: 5, \
         detail: \"injected header x-mutated: 1\" }, \
         MutationSite { operator: \"forge_op_count\", object: \"op_counts\", index: 2, \
         detail: \"forged M(RequestId(2)) 2 -> 3\" }]",
    );
    // And the individual fields stay addressable for escape reports.
    let MutationSite {
        operator,
        object,
        index,
        detail,
    } = sites[0].clone();
    assert!(!operator.is_empty() && !object.is_empty() && !detail.is_empty());
    let _ = index;
}
