//! The serving front-end, end to end: a single-worker unbounded
//! front-end reproduces the sequential serve exactly (same bundle, same
//! honest accept, same tamper diagnostics), pooled front-ends stay
//! audit-clean, and shedding is accounted without ever unbalancing the
//! trace.

use orochi::harness::experiments::shop_workload;
use orochi::harness::{
    run_audit_with, serve, serve_open_loop_with, tamper, AppWorkload, AuditOptions,
    OpenLoopOptions, ServeOptions,
};
use orochi::server::server::AuditBundle;
use orochi::server::{Server, ServerConfig};

fn shop() -> AppWorkload {
    shop_workload(0.02, 11)
}

/// The reference: every request handled sequentially on this thread.
fn direct_sequential_bundle(work: &AppWorkload) -> AuditBundle {
    let server = Server::new(ServerConfig {
        scripts: work.app.compile().unwrap(),
        initial_db: work.initial_db(),
        recording: true,
        seed: 42,
        ..Default::default()
    });
    for req in work
        .workload
        .setup
        .iter()
        .chain(work.workload.requests.iter())
    {
        server.handle(req.clone());
    }
    server.into_bundle()
}

fn audit(bundle: &AuditBundle, work: &AppWorkload, threads: usize) -> Result<(), String> {
    run_audit_with(
        bundle,
        work,
        &AuditOptions {
            threads,
            ..Default::default()
        },
    )
    .map(|_| ())
    .map_err(|r| r.to_string())
}

#[test]
fn single_worker_frontend_reproduces_sequential_serve() {
    let work = shop();
    let reference = direct_sequential_bundle(&work);
    let served = serve(
        &work,
        &ServeOptions {
            threads: 1,
            queue_depth: 0,
            recording: true,
            seed: 42,
        },
    );
    // One worker, FIFO admission: the very same request interleaving,
    // so the untrusted reports come out byte-identical.
    assert_eq!(served.bundle.reports, reference.reports);
    assert_eq!(
        served.bundle.trace.events.len(),
        reference.trace.events.len()
    );
    assert_eq!(served.shed, 0);
    audit(&served.bundle, &work, 1).expect("honest single-worker front-end accepted");
}

#[test]
fn single_worker_frontend_tampers_rejected_with_unchanged_diagnostics() {
    let work = shop();
    let reference = direct_sequential_bundle(&work);
    type Tamper = (&'static str, fn(&mut AuditBundle) -> bool);
    let variants: [Tamper; 3] = [
        ("forged_cart_total", |b| {
            tamper::forge_cart_total(&mut b.trace)
        }),
        ("stale_inventory_read", |b| {
            tamper::reorder_kv_read(&mut b.reports, "inv:")
        }),
        ("replayed_kv_write", |b| {
            tamper::replay_kv_write(&mut b.reports, "inv:")
        }),
    ];
    for (label, apply) in variants {
        let mut via_frontend = serve(
            &work,
            &ServeOptions {
                threads: 1,
                queue_depth: 0,
                recording: true,
                seed: 42,
            },
        )
        .bundle;
        let mut via_direct = AuditBundle {
            trace: reference.trace.clone(),
            reports: reference.reports.clone(),
            final_db: reference.final_db.deep_clone(),
            final_registers: reference.final_registers.clone(),
            final_kv: reference.final_kv.clone(),
            busy: reference.busy,
            requests: reference.requests,
        };
        assert!(apply(&mut via_frontend), "{label}: no tamper site");
        assert!(apply(&mut via_direct), "{label}: no tamper site");
        let fe_err = audit(&via_frontend, &work, 1).expect_err(label);
        let direct_err = audit(&via_direct, &work, 1).expect_err(label);
        assert_eq!(
            fe_err, direct_err,
            "{label}: diagnostics drifted between the front-end and the direct serve"
        );
    }
}

#[test]
fn pooled_bounded_frontend_stays_audit_clean() {
    let work = shop();
    for (workers, queue_depth) in [(2, 1), (4, 8), (8, 0)] {
        let served = serve(
            &work,
            &ServeOptions {
                threads: workers,
                queue_depth,
                recording: true,
                seed: 42,
            },
        );
        assert_eq!(served.shed, 0, "backpressure serving never sheds");
        served.bundle.trace.ensure_balanced().unwrap_or_else(|e| {
            panic!("workers {workers} depth {queue_depth}: unbalanced trace: {e}")
        });
        audit(&served.bundle, &work, 2).unwrap_or_else(|e| {
            panic!("workers {workers} depth {queue_depth}: honest run rejected: {e}")
        });
    }
}

#[test]
fn shedding_open_loop_accounts_and_stays_balanced() {
    let work = shop();
    let n = work.workload.requests.len() as u64;
    // A tiny queue and an absurd offered rate force real shedding.
    let (latencies, served) = serve_open_loop_with(
        &work,
        1e9,
        &OpenLoopOptions {
            pool: 2,
            queue_depth: 2,
            shed: true,
            recording: true,
            seed: 7,
        },
    );
    assert!(served.shed > 0, "overload with a depth-2 queue must shed");
    assert_eq!(latencies.len() as u64 + served.shed, n);
    // Shed requests never reached the collector: the trace stays
    // balanced and the audit of the served subset accepts.
    served.bundle.trace.ensure_balanced().unwrap();
    audit(&served.bundle, &work, 1).expect("honest shed run accepted");
}

#[test]
fn open_loop_latency_buffers_cover_every_admitted_request() {
    let mut work = shop();
    work.workload.requests.truncate(80);
    let (latencies, served) = serve_open_loop_with(
        &work,
        500.0,
        &OpenLoopOptions {
            pool: 3,
            queue_depth: 0,
            shed: false,
            recording: true,
            seed: 3,
        },
    );
    assert_eq!(latencies.len(), 80);
    assert_eq!(served.shed, 0);
    assert!(latencies.iter().all(|&l| l >= 0.0));
    audit(&served.bundle, &work, 1).expect("honest open-loop run accepted");
}
