//! The segmented trace store end to end: round-trips, corruption
//! rejection, and the cold-storage audit path.
//!
//! * Property: any balanced trace — with adversarially varied payloads —
//!   written into sealed segments streams back event-identical through
//!   the [`TraceSource`] API, across segment-size budgets that force
//!   multi-segment stores.
//! * Corruption: a flipped payload byte, a truncated tail, and a
//!   damaged header are all rejected with their stable diagnostics.
//! * Equivalence: serve → spill → drop the in-RAM trace → audit from
//!   disk produces byte-identical verdicts and diagnostics to the
//!   in-RAM audit, at 1 and 4 threads, for accepting *and* rejecting
//!   runs.

use orochi::harness::{
    run_audit_cold, run_audit_with, serve, spill_bundle, AppWorkload, AuditOptions, ServeOptions,
};
use orochi::trace::{
    Event, HttpRequest, HttpResponse, Trace, TraceSource, TraceStoreError, TraceStoreReader,
    TraceStoreWriter,
};
use orochi_common::ids::RequestId;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp directory per call (tests run concurrently).
fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "orochi-tracestore-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// Generates a balanced trace whose payloads exercise every segment
/// lane: methods, paths, query/post/cookie pairs, statuses, headers,
/// bodies, and mislabeled responses.
fn varied_trace_strategy(max_requests: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(any::<(bool, u8, u8)>(), 0..max_requests * 2).prop_map(|actions| {
        let mut events = Vec::new();
        let mut open: Vec<RequestId> = Vec::new();
        let mut next = 1u64;
        for (do_open, pick, flavor) in actions {
            if do_open || open.is_empty() {
                let rid = RequestId(next);
                next += 1;
                let mut req = match flavor % 3 {
                    0 => HttpRequest::get("/wiki.php", &[("page", "Home")]),
                    1 => HttpRequest::post(
                        "/edit.php",
                        &[("id", &flavor.to_string())],
                        &[("body", "lorem ipsum")],
                    ),
                    _ => HttpRequest::get(&format!("/p{}.php", flavor % 5), &[]),
                };
                if flavor % 4 == 0 {
                    req.cookies.push(("session".into(), format!("s{}", rid.0)));
                }
                events.push(Event::Request(rid, req));
                open.push(rid);
            } else {
                let idx = pick as usize % open.len();
                let rid = open.swap_remove(idx);
                let mut resp = HttpResponse::ok(rid, format!("body-{}", flavor));
                resp.status = if flavor % 5 == 0 { 404 } else { 200 };
                if flavor % 3 == 0 {
                    resp.headers.push(("x-cache".into(), "hit".into()));
                }
                if flavor % 7 == 0 {
                    // Mislabeled response: the label lane's raw branch.
                    resp.rid_label = RequestId(rid.0.wrapping_add(1000));
                }
                events.push(Event::Response(rid, resp));
            }
        }
        for rid in open {
            events.push(Event::Response(rid, HttpResponse::ok(rid, "ok")));
        }
        Trace { events }
    })
}

/// Spills `trace` at `segment_budget` and streams it back.
fn roundtrip(trace: &Trace, segment_budget: usize, tag: &str) -> (Vec<Event>, usize) {
    let dir = temp_store_dir(tag);
    let mut writer = TraceStoreWriter::create(&dir, segment_budget).unwrap();
    writer.append_trace(trace).unwrap();
    let summary = writer.finish().unwrap();
    let reader = TraceStoreReader::open(&dir).unwrap();
    assert_eq!(reader.event_count(), trace.len());
    let mut replayed = Vec::new();
    reader
        .stream_events(&mut |e| {
            replayed.push(e);
            true
        })
        .unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    (replayed, summary.segments)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Segmented storage is lossless: the replay is event-identical to
    /// the original trace at every segment budget, including budgets
    /// small enough to seal one event per segment.
    #[test]
    fn segment_roundtrip_is_event_identical(
        trace in varied_trace_strategy(10),
        budget in prop_oneof![Just(0usize), Just(64), Just(512), Just(1 << 20)],
    ) {
        let (replayed, segments) = roundtrip(&trace, budget, "prop");
        prop_assert_eq!(&replayed, &trace.events);
        if budget == 64 && trace.len() >= 6 {
            // A tiny budget must actually split the store.
            prop_assert!(segments > 1, "expected multiple segments, got {segments}");
        }
    }
}

fn two_request_trace() -> Trace {
    let mut events = Vec::new();
    for i in 1..=2u64 {
        let rid = RequestId(i);
        events.push(Event::Request(
            rid,
            HttpRequest::get("/wiki.php", &[("page", "Home")]),
        ));
        events.push(Event::Response(rid, HttpResponse::ok(rid, "hello world")));
    }
    Trace { events }
}

/// Writes the fixture trace as a single-segment store and returns the
/// segment file path.
fn sealed_segment(tag: &str) -> (PathBuf, PathBuf) {
    let dir = temp_store_dir(tag);
    let mut writer = TraceStoreWriter::create(&dir, 0).unwrap();
    writer.append_trace(&two_request_trace()).unwrap();
    writer.finish().unwrap();
    let seg = dir.join("seg-00000.ots");
    assert!(seg.exists());
    (dir, seg)
}

fn open_error(dir: &PathBuf) -> TraceStoreError {
    match TraceStoreReader::open(dir) {
        Ok(reader) => {
            // Damage past the header is only noticed when streamed.
            reader
                .stream_events(&mut |_| true)
                .expect_err("corrupt store must not stream")
        }
        Err(err) => err,
    }
}

fn corruption_detail(err: &TraceStoreError) -> &str {
    match err {
        TraceStoreError::Corrupt { detail, .. } => detail,
        TraceStoreError::Io { detail, .. } => panic!("expected Corrupt, got Io: {detail}"),
    }
}

#[test]
fn flipped_payload_byte_is_rejected() {
    let (dir, seg) = sealed_segment("flip");
    let mut bytes = std::fs::read(&seg).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&seg, &bytes).unwrap();
    let err = open_error(&dir);
    assert_eq!(corruption_detail(&err), "segment checksum mismatch");
    assert!(err.to_string().contains("corrupt trace store file"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_tail_is_rejected() {
    let (dir, seg) = sealed_segment("trunc");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
    let err = open_error(&dir);
    assert_eq!(corruption_detail(&err), "segment truncated");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_header_is_rejected() {
    let (dir, seg) = sealed_segment("header");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[0] = b'X'; // break the magic
    std::fs::write(&seg, &bytes).unwrap();
    let err = open_error(&dir);
    assert_eq!(corruption_detail(&err), "bad segment magic");
    std::fs::remove_dir_all(&dir).unwrap();
}

fn shop_fixture() -> AppWorkload {
    use orochi::workload::shop;
    let params = shop::Params::scaled(0.02);
    AppWorkload {
        app: orochi::apps::shop::app(),
        workload: shop::generate(&params, 11),
        seed_sql: shop::seed_sql(&params),
    }
}

/// Renders a verdict as the byte string the equivalence checks compare:
/// accepted runs by their re-execution count, rejections by their full
/// diagnostic.
fn verdict_string(run: Result<orochi::harness::AuditRun, orochi::core::Rejection>) -> String {
    match run {
        Ok(run) => format!("accept:{}", run.outcome.stats.requests_reexecuted),
        Err(rejection) => format!("reject:{rejection}"),
    }
}

#[test]
fn cold_audit_verdict_matches_in_ram_at_one_and_four_threads() {
    let work = shop_fixture();
    let served = serve(&work, &ServeOptions::default());
    let dir = temp_store_dir("verdict");
    spill_bundle(&served.bundle, &dir, 32 * 1024).unwrap();
    let bundle = served.bundle;
    let reader = TraceStoreReader::open(&dir).unwrap();
    for threads in [1usize, 4] {
        let opts = AuditOptions {
            threads,
            ..Default::default()
        };
        let ram = verdict_string(run_audit_with(&bundle, &work, &opts));
        let cold = verdict_string(run_audit_cold(&reader, &work, &opts));
        assert_eq!(ram, cold, "threads {threads}");
        assert!(ram.starts_with("accept:"), "honest run must accept: {ram}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_audit_rejects_identically_to_in_ram() {
    let work = shop_fixture();
    let served = serve(&work, &ServeOptions::default());
    let mut bundle = served.bundle;
    // Tamper with one response body after serving: both paths must
    // reject with the same diagnostic.
    let tampered = bundle
        .trace
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::Response(_, resp) => Some(resp),
            _ => None,
        })
        .expect("trace has responses");
    tampered.body = "forged output".into();
    let dir = temp_store_dir("reject");
    spill_bundle(&bundle, &dir, 32 * 1024).unwrap();
    let reader = TraceStoreReader::open(&dir).unwrap();
    for threads in [1usize, 4] {
        let opts = AuditOptions {
            threads,
            ..Default::default()
        };
        let ram = verdict_string(run_audit_with(&bundle, &work, &opts));
        let cold = verdict_string(run_audit_cold(&reader, &work, &opts));
        assert_eq!(ram, cold, "threads {threads}");
        assert!(
            ram.starts_with("reject:"),
            "tampered run must reject: {ram}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
