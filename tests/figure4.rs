//! The three examples of Fig. 4 (§3.4), run through the full audit.
//!
//! Two requests execute different subroutines against registers A and B
//! (initialized to 0):
//!
//! ```text
//! f (r1): write(A, 1); x = read(B); output(x)
//! g (r2): write(B, 1); y = read(A); output(y)
//! ```
//!
//! A correct verifier must **reject a** (r1 finished before r2 arrived,
//! yet the responses (1, 0) are consistent with no schedule — the logs
//! and responses are arranged to cover for each other), **reject b**
//! (concurrent requests with responses (0, 0), impossible under any
//! schedule), and **accept c** (concurrent with (1, 1): both writes
//! before both reads). §3.4 shows that simulate-and-check alone would
//! wrongly accept a and b; consistent-ordering verification (§3.5)
//! catches them.

use orochi::core::audit::{audit, AuditConfig, Rejection};
use orochi::core::exec::{FnExecutor, SimResult};
use orochi::core::graph::GraphRejection;
use orochi::core::reports::Reports;
use orochi::state::{ObjectName, OpContents, OpLog, OpLogEntry, OpLogs};
use orochi::trace::{Event, HttpRequest, HttpResponse, Trace};
use orochi_common::ids::{CtlFlowTag, OpNum, RequestId};

const R1: RequestId = RequestId(1);
const R2: RequestId = RequestId(2);

fn req(rid: RequestId, path: &str) -> Event {
    Event::Request(rid, HttpRequest::get(path, &[]))
}

fn resp(rid: RequestId, body: &str) -> Event {
    Event::Response(rid, HttpResponse::ok(rid, body))
}

fn write_entry(rid: RequestId, opnum: u32) -> OpLogEntry {
    OpLogEntry {
        rid,
        opnum: OpNum(opnum),
        contents: OpContents::RegisterWrite { value: vec![1] },
    }
}

fn read_entry(rid: RequestId, opnum: u32) -> OpLogEntry {
    OpLogEntry {
        rid,
        opnum: OpNum(opnum),
        contents: OpContents::RegisterRead,
    }
}

fn reports(ol_a: Vec<OpLogEntry>, ol_b: Vec<OpLogEntry>) -> Reports {
    Reports {
        // One group per request: f and g are different subroutines.
        groupings: vec![(CtlFlowTag(1), vec![R1]), (CtlFlowTag(2), vec![R2])],
        op_logs: OpLogs::from_pairs(vec![
            (ObjectName("reg:A".into()), OpLog::from_entries(ol_a)),
            (ObjectName("reg:B".into()), OpLog::from_entries(ol_b)),
        ]),
        op_counts: [(R1, 2), (R2, 2)].into_iter().collect(),
        nondet: Default::default(),
    }
}

fn config() -> AuditConfig {
    let mut config = AuditConfig::new();
    // Registers initialized to 0 (the examples' assumption).
    config.initial_registers.insert("reg:A".into(), vec![0]);
    config.initial_registers.insert("reg:B".into(), vec![0]);
    config
}

/// The toy executor implementing f and g through the audit context.
fn fg_executor() -> impl orochi::core::exec::GroupExecutor {
    FnExecutor::new(|requests, ctx| {
        let mut outputs = Vec::new();
        for (rid, req) in requests {
            let (write_obj, read_obj) = if req.path == "/f.php" {
                ("reg:A", "reg:B")
            } else {
                ("reg:B", "reg:A")
            };
            ctx.register_write(*rid, &ObjectName(write_obj.into()), vec![1])?;
            let got = ctx.register_read(*rid, &ObjectName(read_obj.into()))?;
            let value = match got {
                SimResult::Register(Some(bytes)) => bytes[0],
                SimResult::Register(None) => 0,
                other => panic!("register read returned {other:?}"),
            };
            outputs.push((*rid, HttpResponse::ok(*rid, value.to_string())));
        }
        Ok(outputs)
    })
}

#[test]
fn example_a_rejected() {
    // r1 completed before r2 arrived; responses (1, 0). The only output
    // consistent with that schedule is (0, 1) — accepting would violate
    // Soundness. The logs put r2's operations before r1's, which
    // contradicts the trace's time precedence: cycle.
    let trace = Trace {
        events: vec![
            req(R1, "/f.php"),
            resp(R1, "1"),
            req(R2, "/g.php"),
            resp(R2, "0"),
        ],
    };
    let r = reports(
        vec![read_entry(R2, 2), write_entry(R1, 1)],
        vec![write_entry(R2, 1), read_entry(R1, 2)],
    );
    let verdict = audit(&trace, &r, &mut fg_executor(), &config());
    assert_eq!(
        verdict.unwrap_err(),
        Rejection::Graph(GraphRejection::CycleDetected)
    );
}

#[test]
fn example_b_rejected() {
    // Concurrent requests; responses (0, 0): each read must precede the
    // other's write, a cycle in program+log order.
    let trace = Trace {
        events: vec![
            req(R1, "/f.php"),
            req(R2, "/g.php"),
            resp(R1, "0"),
            resp(R2, "0"),
        ],
    };
    let r = reports(
        vec![read_entry(R2, 2), write_entry(R1, 1)],
        vec![read_entry(R1, 2), write_entry(R2, 1)],
    );
    let verdict = audit(&trace, &r, &mut fg_executor(), &config());
    assert_eq!(
        verdict.unwrap_err(),
        Rejection::Graph(GraphRejection::CycleDetected)
    );
}

#[test]
fn example_c_accepted() {
    // Concurrent requests; responses (1, 1): a well-behaved executor
    // produces this by running both writes before either read.
    // Rejecting would violate Completeness.
    let trace = Trace {
        events: vec![
            req(R1, "/f.php"),
            req(R2, "/g.php"),
            resp(R1, "1"),
            resp(R2, "1"),
        ],
    };
    let r = reports(
        vec![write_entry(R1, 1), read_entry(R2, 2)],
        vec![write_entry(R2, 1), read_entry(R1, 2)],
    );
    audit(&trace, &r, &mut fg_executor(), &config())
        .unwrap_or_else(|rej| panic!("example c must be accepted, got: {rej}"));
}

#[test]
fn example_c_with_wrong_responses_rejected() {
    // Same consistent logs as c, but the executor claims (0, 1): the
    // simulated reads produce (1, 1), so the output check fires.
    let trace = Trace {
        events: vec![
            req(R1, "/f.php"),
            req(R2, "/g.php"),
            resp(R1, "0"),
            resp(R2, "1"),
        ],
    };
    let r = reports(
        vec![write_entry(R1, 1), read_entry(R2, 2)],
        vec![write_entry(R2, 1), read_entry(R1, 2)],
    );
    let verdict = audit(&trace, &r, &mut fg_executor(), &config());
    assert!(matches!(
        verdict.unwrap_err(),
        Rejection::OutputMismatch { .. }
    ));
}

#[test]
fn sequential_schedule_accepted() {
    // The legal sequential execution: r1 entirely before r2 gives
    // outputs (0, 1) — must be accepted with truthful logs.
    let trace = Trace {
        events: vec![
            req(R1, "/f.php"),
            resp(R1, "0"),
            req(R2, "/g.php"),
            resp(R2, "1"),
        ],
    };
    let r = reports(
        vec![write_entry(R1, 1), read_entry(R2, 2)],
        vec![read_entry(R1, 2), write_entry(R2, 1)],
    );
    audit(&trace, &r, &mut fg_executor(), &config())
        .unwrap_or_else(|rej| panic!("sequential schedule must be accepted, got: {rej}"));
}

#[test]
fn initial_values_feed_first_reads() {
    // A single request reading before any write sees the initial 0.
    let trace = Trace {
        events: vec![req(R1, "/f.php"), resp(R1, "0")],
    };
    let r = Reports {
        groupings: vec![(CtlFlowTag(1), vec![R1])],
        op_logs: OpLogs::from_pairs(vec![
            (
                ObjectName("reg:A".into()),
                OpLog::from_entries(vec![write_entry(R1, 1)]),
            ),
            (
                ObjectName("reg:B".into()),
                OpLog::from_entries(vec![read_entry(R1, 2)]),
            ),
        ]),
        op_counts: [(R1, 2)].into_iter().collect(),
        nondet: Default::default(),
    };
    audit(&trace, &r, &mut fg_executor(), &config())
        .unwrap_or_else(|rej| panic!("initial-value read must be accepted, got: {rej}"));
}
