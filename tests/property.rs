//! Property-based tests on the core invariants (proptest).
//!
//! * The frontier algorithm's reachability is exactly the trace's
//!   time-precedence relation (Lemma 2), matching both the dense oracle
//!   and `BalancedTrace::precedes`.
//! * Wire codecs roundtrip for PHP values and report bundles.
//! * The versioned KV equals the replay-prefix model at every position.
//! * The versioned DB redo reproduces the online engine's state at every
//!   transaction boundary.
//! * PHP arrays behave like an ordered-map reference model.
//! * End-to-end completeness: honest random workloads always pass the
//!   audit (the Completeness property of §2, fuzzed).

use orochi::core::graph::{process_op_reports, two_phase};
use orochi::core::precedence::{create_time_precedence_graph, dense_time_precedence};
use orochi::core::reports::Reports;
use orochi::php::{ArrayKey, PhpArray, Value};
use orochi::sqldb::{Database, VersionedDb, MAXQ};
use orochi::state::{ObjectName, OpContents, OpLog, OpLogEntry, OpLogs, VersionedKv};
use orochi::trace::{BalancedTrace, Event, HttpRequest, HttpResponse, Trace};
use orochi_common::codec::Wire;
use orochi_common::ids::{OpNum, RequestId, SeqNum};
use proptest::prelude::*;

/// Generates a random balanced trace: a sequence of open/close actions
/// over up to `max_requests` requests.
fn balanced_trace_strategy(max_requests: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(any::<(bool, u8)>(), 0..max_requests * 2).prop_map(|actions| {
        let mut events = Vec::new();
        let mut open: Vec<RequestId> = Vec::new();
        let mut next = 1u64;
        for (do_open, pick) in actions {
            if do_open || open.is_empty() {
                let rid = RequestId(next);
                next += 1;
                events.push(Event::Request(rid, HttpRequest::get("/x", &[])));
                open.push(rid);
            } else {
                let idx = pick as usize % open.len();
                let rid = open.swap_remove(idx);
                events.push(Event::Response(rid, HttpResponse::ok(rid, "ok")));
            }
        }
        for rid in open {
            events.push(Event::Response(rid, HttpResponse::ok(rid, "ok")));
        }
        Trace { events }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frontier_reachability_equals_time_precedence(
        trace in balanced_trace_strategy(12)
    ) {
        let balanced = trace.ensure_balanced().unwrap();
        let fast = create_time_precedence_graph(&balanced);
        let dense = dense_time_precedence(&balanced);
        let rids: Vec<RequestId> = balanced.request_ids().collect();
        for &a in &rids {
            for &b in &rids {
                if a == b {
                    continue;
                }
                let expected = balanced.precedes(a, b);
                prop_assert_eq!(fast.has_path(a, b), expected, "frontier {} -> {}", a, b);
                prop_assert_eq!(dense.has_path(a, b), expected, "dense {} -> {}", a, b);
            }
        }
        // Minimality (Lemma 12): the frontier graph never has more edges
        // than the dense one, and no edge is redundant with the direct
        // relation.
        prop_assert!(fast.edges.len() <= dense.edges.len());
        for (a, b) in &fast.edges {
            prop_assert!(balanced.precedes(*a, *b));
        }
    }

    /// Lemma 12, exactly: on an epoch trace (each epoch's requests
    /// mutually concurrent, adjacent epochs fully ordered) the minimum
    /// edge set is the union of the complete bipartite graphs between
    /// adjacent epochs — and the frontier algorithm emits precisely
    /// that many edges, for randomized epoch widths.
    #[test]
    fn lemma12_frontier_edge_count_is_bipartite_minimum(
        widths in proptest::collection::vec(1usize..6, 1..8)
    ) {
        let mut events = Vec::new();
        let mut next = 1u64;
        for &w in &widths {
            let base = next;
            for i in 0..w as u64 {
                events.push(Event::Request(RequestId(base + i), HttpRequest::get("/x", &[])));
            }
            for i in 0..w as u64 {
                let rid = RequestId(base + i);
                events.push(Event::Response(rid, HttpResponse::ok(rid, "ok")));
            }
            next += w as u64;
        }
        let balanced = Trace { events }.ensure_balanced().unwrap();
        let g = create_time_precedence_graph(&balanced);
        let minimum: usize = widths.windows(2).map(|w| w[0] * w[1]).sum();
        prop_assert_eq!(g.edges.len(), minimum);
    }
}

/// Builds fuzzed (often hostile) reports for a trace: random per-request
/// op counts, the operations dealt across two register logs by `picks`,
/// and an optional tampering that pushes the graph layer down one of its
/// rejection paths.
fn fuzzed_reports(balanced: &BalancedTrace, picks: &[u8], tamper: u8) -> Reports {
    let rids: Vec<RequestId> = balanced.request_ids().collect();
    let mut op_counts = std::collections::HashMap::new();
    let mut logs: Vec<Vec<OpLogEntry>> = vec![Vec::new(), Vec::new()];
    let mut j = 0usize;
    for (i, rid) in rids.iter().enumerate() {
        let m = (picks.get(i).copied().unwrap_or(1) % 3) as u32;
        op_counts.insert(*rid, m);
        for opnum in 1..=m {
            let which = (picks.get(j % picks.len().max(1)).copied().unwrap_or(0) / 3 % 2) as usize;
            logs[which].push(OpLogEntry {
                rid: *rid,
                opnum: OpNum(opnum),
                contents: OpContents::RegisterWrite {
                    value: vec![opnum as u8],
                },
            });
            j += 1;
        }
    }
    match tamper {
        1 => {
            // Drop an entry: MissingOperation.
            logs[0].pop();
        }
        2 => {
            // Replay an entry: DuplicateOperation or LogOrderViolation.
            if let Some(e) = logs[0].first().cloned() {
                logs[0].push(e);
            }
        }
        // Swap adjacent entries: LogOrderViolation or a cycle.
        3 if logs[0].len() >= 2 => logs[0].swap(0, 1),
        _ => {}
    }
    Reports {
        groupings: vec![(orochi_common::ids::CtlFlowTag(1), rids)],
        op_logs: OpLogs::from_pairs(vec![
            (
                ObjectName(String::from("reg:A")),
                OpLog::from_entries(logs.remove(0)),
            ),
            (
                ObjectName(String::from("reg:B")),
                OpLog::from_entries(logs.remove(0)),
            ),
        ]),
        op_counts,
        nondet: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The streamed two-pass CSR builder is observationally identical
    /// to the preserved two-phase construction: same verdict, same
    /// diagnostic, and — on acceptance — the same node count and edge
    /// multiset, for fuzzed traces and (often hostile) reports.
    #[test]
    fn streamed_csr_equals_two_phase_construction(
        trace in balanced_trace_strategy(10),
        picks in proptest::collection::vec(any::<u8>(), 1..24),
        tamper in 0u8..4,
    ) {
        let balanced = trace.ensure_balanced().unwrap();
        let reports = fuzzed_reports(&balanced, &picks, tamper);
        let streamed = process_op_reports(&balanced, &reports);
        let reference = two_phase::process_op_reports(&balanced, &reports);
        match (streamed, reference) {
            (Ok((graph, opmap)), Ok((ref_graph, ref_opmap_len))) => {
                prop_assert_eq!(graph.num_nodes(), ref_graph.num_nodes());
                prop_assert_eq!(graph.num_edges(), ref_graph.num_edges());
                prop_assert_eq!(opmap.len(), ref_opmap_len);
                let mut csr_edges: Vec<_> = graph.edges().collect();
                let mut ref_edges = ref_graph.edges();
                csr_edges.sort();
                ref_edges.sort();
                prop_assert_eq!(csr_edges, ref_edges);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "verdicts diverged: streamed {:?} vs two-phase {:?}",
                a.map(|_| "accept").map_err(|e| e.to_string()),
                b.map(|_| "accept").map_err(|e| e.to_string()),
            ),
        }
    }
}

/// Recursive strategy for arbitrary PHP values.
fn php_value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks identical() reflexivity, which
        // PHP shares.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z0-9]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        proptest::collection::vec(
            (
                prop_oneof![
                    any::<i32>().prop_map(|i| ArrayKey::Int(i as i64)),
                    "[a-z]{1,6}".prop_map(ArrayKey::Str),
                ],
                inner,
            ),
            0..6,
        )
        .prop_map(|pairs| {
            let mut a = PhpArray::new();
            for (k, v) in pairs {
                a.set(k, v);
            }
            Value::array(a)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn php_value_codec_roundtrips(v in php_value_strategy()) {
        let bytes = v.to_wire_bytes();
        let back = Value::from_wire_bytes(&bytes).unwrap();
        prop_assert!(v.identical(&back));
    }

    #[test]
    fn loose_equality_is_symmetric(a in php_value_strategy(), b in php_value_strategy()) {
        prop_assert_eq!(a.loose_eq(&b), b.loose_eq(&a));
    }

    #[test]
    fn identical_is_reflexive(v in php_value_strategy()) {
        prop_assert!(v.identical(&v));
    }
}

/// Ops for the versioned KV model test.
#[derive(Debug, Clone)]
enum KvOp {
    Set(u8, Option<u8>),
    Get(u8),
}

fn kv_ops_strategy() -> impl Strategy<Value = Vec<KvOp>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<Option<u8>>()).prop_map(|(k, v)| KvOp::Set(k % 8, v)),
            any::<u8>().prop_map(|k| KvOp::Get(k % 8)),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn versioned_kv_matches_replay_model(ops in kv_ops_strategy()) {
        let mut log = OpLog::new();
        for op in &ops {
            let contents = match op {
                KvOp::Set(k, v) => OpContents::KvSet {
                    key: format!("k{k}"),
                    value: v.map(|b| vec![b]),
                },
                KvOp::Get(k) => OpContents::KvGet { key: format!("k{k}") },
            };
            log.push(OpLogEntry { rid: RequestId(1), opnum: OpNum(1), contents });
        }
        let kv = VersionedKv::build(&log);
        // Model: replay prefix into a plain map.
        for s in 1..=(log.len() as u64 + 1) {
            let mut model: std::collections::HashMap<String, Vec<u8>> = Default::default();
            for (seq, entry) in log.iter() {
                if seq.0 >= s {
                    break;
                }
                if let OpContents::KvSet { key, value } = &entry.contents {
                    match value {
                        Some(v) => { model.insert(key.clone(), v.clone()); }
                        None => { model.remove(key); }
                    }
                }
            }
            for k in 0..8u8 {
                let key = format!("k{k}");
                prop_assert_eq!(
                    kv.get(&key, SeqNum(s)),
                    model.get(&key).cloned(),
                    "key {} at seq {}", key, s
                );
            }
        }
    }
}

/// Random single-statement transactions over a small schema.
fn sql_ops_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..20, 0i64..100)
                .prop_map(|(k, v)| format!("INSERT INTO t (k, v) VALUES ({k}, {v})")),
            (0u8..20, 0i64..100).prop_map(|(k, v)| format!("UPDATE t SET v = {v} WHERE k = {k}")),
            (0u8..20).prop_map(|k| format!("DELETE FROM t WHERE k = {k}")),
            (0i64..100).prop_map(|v| format!("UPDATE t SET v = v + 1 WHERE v < {v}")),
        ],
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn versioned_redo_matches_online_engine(ops in sql_ops_strategy()) {
        let schema = "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, k INT, v INT, INDEX(k))";
        let mut online = Database::new();
        online.execute_autocommit(schema).0.unwrap();
        let mut base = Database::new();
        base.execute_autocommit(schema).0.unwrap();
        let mut vdb = VersionedDb::from_snapshot(&base);
        for sql in &ops {
            let (result, seq) = online.execute_autocommit(sql);
            let logged = match &result {
                Ok(out) => vec![out.write()],
                Err(_) => vec![None],
            };
            vdb.redo_transaction(seq, std::slice::from_ref(sql), result.is_ok(), &logged)
                .unwrap();
            // The versioned view at this point equals the online state.
            let (want, _) = online.execute_autocommit("SELECT id, k, v FROM t ORDER BY id");
            let got = vdb
                .query_at("SELECT id, k, v FROM t ORDER BY id", seq * MAXQ + MAXQ - 1)
                .unwrap();
            prop_assert_eq!(got, want.unwrap());
        }
        // And the migrated snapshot matches the final online state.
        let mut migrated = vdb.latest_snapshot();
        let (want, _) = online.execute_autocommit("SELECT id, k, v FROM t ORDER BY id");
        let (got, _) = migrated.execute_autocommit("SELECT id, k, v FROM t ORDER BY id");
        prop_assert_eq!(got.unwrap(), want.unwrap());
    }
}

/// Ordered-map reference model for PHP arrays.
#[derive(Debug, Clone)]
enum ArrOp {
    Set(ArrayKey, i64),
    Push(i64),
    Remove(ArrayKey),
}

fn arr_ops_strategy() -> impl Strategy<Value = Vec<ArrOp>> {
    let key = prop_oneof![
        (0i64..10).prop_map(ArrayKey::Int),
        "[a-c]{1,2}".prop_map(ArrayKey::Str),
    ];
    proptest::collection::vec(
        prop_oneof![
            (key.clone(), any::<i64>()).prop_map(|(k, v)| ArrOp::Set(k, v)),
            any::<i64>().prop_map(ArrOp::Push),
            key.prop_map(ArrOp::Remove),
        ],
        0..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn php_array_matches_ordered_map_model(ops in arr_ops_strategy()) {
        let mut arr = PhpArray::new();
        // Model: insertion-ordered (key, value) list + next-int tracker.
        let mut model: Vec<(ArrayKey, i64)> = Vec::new();
        let mut next_int = 0i64;
        for op in ops {
            match op {
                ArrOp::Set(k, v) => {
                    if let ArrayKey::Int(i) = k {
                        if i >= next_int {
                            next_int = i + 1;
                        }
                    }
                    arr.set(k.clone(), Value::Int(v));
                    match model.iter_mut().find(|(mk, _)| *mk == k) {
                        Some(slot) => slot.1 = v,
                        None => model.push((k, v)),
                    }
                }
                ArrOp::Push(v) => {
                    let key = ArrayKey::Int(next_int);
                    next_int += 1;
                    arr.push(Value::Int(v));
                    model.push((key, v));
                }
                ArrOp::Remove(k) => {
                    arr.remove(&k);
                    model.retain(|(mk, _)| *mk != k);
                }
            }
            prop_assert_eq!(arr.len(), model.len());
            let got: Vec<(ArrayKey, i64)> = arr
                .iter()
                .map(|(k, v)| (k.clone(), v.to_php_int()))
                .collect();
            prop_assert_eq!(&got, &model);
        }
    }
}

/// End-to-end fuzzed completeness: honest servers always pass the audit,
/// whatever mix of wiki requests arrives.
#[derive(Debug, Clone)]
enum WikiAction {
    View(u8),
    Edit(u8, u8),
    Login(u8),
}

fn wiki_actions_strategy() -> impl Strategy<Value = Vec<WikiAction>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6).prop_map(WikiAction::View),
            (0u8..6, any::<u8>()).prop_map(|(p, b)| WikiAction::Edit(p, b)),
            (0u8..3).prop_map(WikiAction::Login),
        ],
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn honest_random_workloads_always_accepted(actions in wiki_actions_strategy()) {
        use orochi::accphp::AccPhpExecutor;
        use orochi::core::audit::{audit, AuditConfig};
        use orochi::server::{Server, ServerConfig};

        let app = orochi::apps::wiki::app();
        let scripts = app.compile().unwrap();
        let server = Server::new(ServerConfig {
            scripts: scripts.clone(),
            initial_db: app.initial_db(),
            recording: true,
            seed: 5,
            ..Default::default()
        });
        // Editors must be logged in before edits take effect; issue the
        // logins first so some edits succeed and some hit the 403 path.
        server.handle(
            HttpRequest::post("/login.php", &[], &[("user", "u0")]).with_cookie("sess", "u0"),
        );
        for action in &actions {
            match action {
                WikiAction::View(p) => {
                    server.handle(HttpRequest::get(
                        "/wiki.php",
                        &[("title", &format!("P{p}"))],
                    ));
                }
                WikiAction::Edit(p, b) => {
                    server.handle(
                        HttpRequest::post(
                            "/edit.php",
                            &[],
                            &[
                                ("title", &format!("P{p}")),
                                ("body", &format!("body {b}")),
                            ],
                        )
                        .with_cookie("sess", "u0"),
                    );
                }
                WikiAction::Login(u) => {
                    let user = format!("u{u}");
                    server.handle(
                        HttpRequest::post("/login.php", &[], &[("user", &user)])
                            .with_cookie("sess", &user),
                    );
                }
            }
        }
        let bundle = server.into_bundle();
        let mut config = AuditConfig::new();
        config.initial_dbs.insert("db:main".to_string(), app.initial_db());
        let mut verifier = AccPhpExecutor::new(scripts);
        let verdict = audit(&bundle.trace, &bundle.reports, &mut verifier, &config);
        prop_assert!(verdict.is_ok(), "honest run rejected: {}", verdict.unwrap_err());
    }
}

/// Shared fixture for the partition-fuzzing property: serving a wiki
/// workload per proptest case would dominate the suite, so one honest
/// bundle is built once and every case re-audits it under a different
/// (often hostile) grouping report.
mod partition_fuzz {
    use super::*;
    use orochi::accphp::AccPhpExecutor;
    use orochi::core::audit::{audit, audit_parallel, AuditConfig, AuditOutcome, Rejection};
    use orochi::core::reports::Reports;
    use orochi::php::CompiledScript;
    use orochi::server::server::AuditBundle;
    use orochi::server::{Server, ServerConfig};
    use orochi_common::ids::CtlFlowTag;
    use std::collections::HashMap;
    use std::sync::OnceLock;

    type Fixture = (AuditBundle, HashMap<String, CompiledScript>, AuditConfig);

    pub fn fixture() -> &'static Fixture {
        static CELL: OnceLock<Fixture> = OnceLock::new();
        CELL.get_or_init(|| {
            use orochi::workload::wiki;
            let app = orochi::apps::wiki::app();
            let scripts = app.compile().unwrap();
            let server = Server::new(ServerConfig {
                scripts: scripts.clone(),
                initial_db: app.initial_db(),
                recording: true,
                seed: 13,
                ..Default::default()
            });
            let workload = wiki::generate(&wiki::Params::scaled(0.01), 17);
            for req in workload.setup.iter().chain(workload.requests.iter()) {
                server.handle(req.clone());
            }
            let bundle = server.into_bundle();
            let mut config = AuditConfig::new();
            config
                .initial_dbs
                .insert("db:main".to_string(), app.initial_db());
            (bundle, scripts, config)
        })
    }

    /// Audits the fixture under `groupings`, sequentially or pooled.
    pub fn verdict(
        groupings: Vec<(CtlFlowTag, Vec<RequestId>)>,
        threads: usize,
    ) -> Result<AuditOutcome, Rejection> {
        let (bundle, scripts, config) = fixture();
        let mut reports: Reports = bundle.reports.clone();
        reports.groupings = groupings;
        if threads == 1 {
            let mut executor = AccPhpExecutor::new(scripts.clone());
            audit(&bundle.trace, &reports, &mut executor, config)
        } else {
            let mut executors: Vec<AccPhpExecutor> = (0..threads)
                .map(|_| AccPhpExecutor::new(scripts.clone()))
                .collect();
            audit_parallel(&bundle.trace, &reports, &mut executors, config)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel audit agrees with the sequential oracle on the
    /// verdict *and* the diagnostic for arbitrary — including hostile —
    /// control-flow partitions: requests regrouped at random, duplicated
    /// across and within groups, dropped entirely (→ `MissingOutput`),
    /// or pointing at requests the trace never saw
    /// (→ `GroupUnknownRequest`).
    #[test]
    fn fuzzed_partitions_match_sequential_oracle(
        picks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..10),
            0..8,
        ),
        ghost in any::<bool>(),
    ) {
        use orochi_common::ids::CtlFlowTag;

        let (bundle, _, _) = partition_fuzz::fixture();
        let rids: Vec<RequestId> = bundle
            .trace
            .ensure_balanced()
            .unwrap()
            .request_ids()
            .collect();
        let mut groupings: Vec<(CtlFlowTag, Vec<RequestId>)> = picks
            .iter()
            .enumerate()
            .map(|(g, idxs)| {
                let members = idxs
                    .iter()
                    .map(|i| rids[*i as usize % rids.len()])
                    .collect();
                (CtlFlowTag(g as u64 + 1), members)
            })
            .collect();
        if ghost {
            groupings.push((CtlFlowTag(0xdead), vec![RequestId(u64::MAX)]));
        }

        let seq = partition_fuzz::verdict(groupings.clone(), 1);
        for threads in [2usize, 4] {
            let par = partition_fuzz::verdict(groupings.clone(), threads);
            match (&seq, &par) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(
                        s.stats.requests_reexecuted,
                        p.stats.requests_reexecuted,
                        "threads {}", threads
                    );
                }
                (Err(s), Err(p)) => {
                    prop_assert_eq!(s, p, "threads {}", threads);
                    prop_assert_eq!(s.to_string(), p.to_string(), "threads {}", threads);
                }
                (s, p) => prop_assert!(
                    false,
                    "verdict diverged at {} threads: {:?} vs {:?}",
                    threads,
                    s.as_ref().err().map(|e| e.to_string()),
                    p.as_ref().err().map(|e| e.to_string())
                ),
            }
        }
    }
}

/// Ticket-merge accuracy for the striped collector: whatever stripe
/// each event lands in, the merged trace is exactly the order in which
/// the record calls were issued (the §2 "accurate trace" property —
/// the ticket, not the buffer, carries observation order).
#[derive(Debug, Clone)]
enum CollectorAction {
    /// Open a request in the given stripe.
    Open(u8),
    /// Close the pick-th open request in the given stripe.
    Close(u8, u8),
}

fn collector_actions_strategy() -> impl Strategy<Value = Vec<CollectorAction>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(CollectorAction::Open),
            (any::<u8>(), any::<u8>()).prop_map(|(s, p)| CollectorAction::Close(s, p)),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collector_merge_preserves_observation_order(
        actions in collector_actions_strategy()
    ) {
        use orochi::trace::Collector;

        let collector = Collector::new();
        let mut open: Vec<RequestId> = Vec::new();
        // The oracle: (rid, is_request) in issue order.
        let mut expected: Vec<(u64, bool)> = Vec::new();
        for action in actions {
            match action {
                CollectorAction::Open(stripe) => {
                    let rid = collector
                        .record_request_in(stripe as usize, HttpRequest::get("/x", &[]));
                    expected.push((rid.0, true));
                    open.push(rid);
                }
                CollectorAction::Close(stripe, pick) => {
                    if open.is_empty() {
                        continue;
                    }
                    let rid = open.swap_remove(pick as usize % open.len());
                    collector.record_response_in(
                        stripe as usize,
                        rid,
                        HttpResponse::ok(rid, "ok"),
                    );
                    expected.push((rid.0, false));
                }
            }
        }
        prop_assert_eq!(collector.len(), expected.len());
        let snapshot = collector.snapshot();
        let trace = collector.into_trace();
        for t in [&snapshot, &trace] {
            let got: Vec<(u64, bool)> = t
                .events
                .iter()
                .map(|e| (e.rid().0, matches!(e, Event::Request(..))))
                .collect();
            prop_assert_eq!(&got, &expected);
        }
    }
}

/// Front-end completeness (§2 Completeness, fuzzed over the serving
/// stack): an honest server behind *any* bounded front-end — random
/// worker counts, queue depths, and submission bursts — always yields a
/// balanced trace the audit accepts, because backpressure admission
/// never drops work and the ticketed collector keeps the trace
/// accurate under pool concurrency.
#[derive(Debug, Clone)]
struct FrontendShape {
    workers: usize,
    queue_depth: usize,
    burst: usize,
}

fn frontend_shape_strategy() -> impl Strategy<Value = FrontendShape> {
    (1usize..7, prop_oneof![Just(0usize), 1usize..9], 1usize..8).prop_map(
        |(workers, queue_depth, burst)| FrontendShape {
            workers,
            queue_depth,
            burst,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn honest_runs_survive_any_frontend_shape(
        actions in wiki_actions_strategy(),
        shape in frontend_shape_strategy(),
    ) {
        use orochi::accphp::AccPhpExecutor;
        use orochi::core::audit::{audit, AuditConfig};
        use orochi::server::{Frontend, FrontendConfig, Server, ServerConfig, ShedPolicy};

        let app = orochi::apps::wiki::app();
        let scripts = app.compile().unwrap();
        let server = Server::new(ServerConfig {
            scripts: scripts.clone(),
            initial_db: app.initial_db(),
            recording: true,
            seed: 5,
            ..Default::default()
        });
        // Setup runs sequentially before the pool starts, like the
        // harness drivers.
        server.handle(
            HttpRequest::post("/login.php", &[], &[("user", "u0")]).with_cookie("sess", "u0"),
        );
        let frontend = Frontend::start(
            server,
            FrontendConfig {
                workers: shape.workers,
                queue_depth: shape.queue_depth,
                shed: ShedPolicy::Block,
            },
        );
        let mut submitted = 0u64;
        for (i, action) in actions.iter().enumerate() {
            let req = match action {
                WikiAction::View(p) => {
                    HttpRequest::get("/wiki.php", &[("title", &format!("P{p}"))])
                }
                WikiAction::Edit(p, b) => HttpRequest::post(
                    "/edit.php",
                    &[],
                    &[("title", &format!("P{p}")), ("body", &format!("body {b}"))],
                )
                .with_cookie("sess", "u0"),
                WikiAction::Login(u) => {
                    let user = format!("u{u}");
                    HttpRequest::post("/login.php", &[], &[("user", &user)])
                        .with_cookie("sess", &user)
                }
            };
            prop_assert!(frontend.submit(req), "backpressure admission never sheds");
            submitted += 1;
            // Arrival bursts: yield between bursts so workers interleave
            // with admission in varying patterns.
            if i % shape.burst == shape.burst - 1 {
                std::thread::yield_now();
            }
        }
        let report = frontend.drain();
        prop_assert_eq!(report.handled, submitted);
        prop_assert_eq!(report.shed, 0);
        let bundle = report.server.into_bundle();
        let balanced = bundle.trace.ensure_balanced();
        prop_assert!(balanced.is_ok(), "unbalanced trace: {:?}", balanced.err());
        let mut config = AuditConfig::new();
        config.initial_dbs.insert("db:main".to_string(), app.initial_db());
        let mut verifier = AccPhpExecutor::new(scripts);
        let verdict = audit(&bundle.trace, &bundle.reports, &mut verifier, &config);
        prop_assert!(verdict.is_ok(), "honest run rejected: {}", verdict.unwrap_err());
    }
}

// Striped vs single-lock shared objects: the same (sequential) request
// stream served over 1-shard and N-shard stores yields byte-identical
// reports and audit-identical verdicts — the stripes move lock
// contention, never the per-object linearization order the audit
// consumes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn striped_stores_are_audit_identical_to_single_lock(
        actions in wiki_actions_strategy()
    ) {
        use orochi::accphp::AccPhpExecutor;
        use orochi::core::audit::{audit, AuditConfig};
        use orochi::server::{Server, ServerConfig};

        let app = orochi::apps::wiki::app();
        let scripts = app.compile().unwrap();
        let serve_at = |state_shards: usize| {
            let server = Server::new(ServerConfig {
                scripts: scripts.clone(),
                initial_db: app.initial_db(),
                recording: true,
                seed: 5,
                state_shards,
            });
            server.handle(
                HttpRequest::post("/login.php", &[], &[("user", "u0")])
                    .with_cookie("sess", "u0"),
            );
            for action in &actions {
                match action {
                    WikiAction::View(p) => {
                        server.handle(HttpRequest::get(
                            "/wiki.php",
                            &[("title", &format!("P{p}"))],
                        ));
                    }
                    WikiAction::Edit(p, b) => {
                        server.handle(
                            HttpRequest::post(
                                "/edit.php",
                                &[],
                                &[
                                    ("title", &format!("P{p}")),
                                    ("body", &format!("body {b}")),
                                ],
                            )
                            .with_cookie("sess", "u0"),
                        );
                    }
                    WikiAction::Login(u) => {
                        let user = format!("u{u}");
                        server.handle(
                            HttpRequest::post("/login.php", &[], &[("user", &user)])
                                .with_cookie("sess", &user),
                        );
                    }
                }
            }
            server.into_bundle()
        };
        let single = serve_at(1);
        let striped = serve_at(8);
        // Byte-identical untrusted reports and final object state.
        prop_assert_eq!(&single.reports, &striped.reports);
        prop_assert_eq!(&single.final_registers, &striped.final_registers);
        prop_assert_eq!(&single.final_kv, &striped.final_kv);
        // And audit-identical verdicts.
        let mut config = AuditConfig::new();
        config.initial_dbs.insert("db:main".to_string(), app.initial_db());
        let verdict_of = |bundle: &orochi::server::server::AuditBundle| {
            let mut verifier = AccPhpExecutor::new(scripts.clone());
            audit(&bundle.trace, &bundle.reports, &mut verifier, &config)
                .map(|o| o.stats.requests_reexecuted)
                .map_err(|r| r.to_string())
        };
        prop_assert_eq!(verdict_of(&single), verdict_of(&striped));
    }
}

/// The object-name constructors stay aligned with what the runtime
/// generates (a regression guard for the CheckOp name comparison).
#[test]
fn object_name_conventions() {
    assert_eq!(ObjectName::session("x").as_str(), "reg:sess:x");
    assert_eq!(ObjectName::kv("apc").as_str(), "kv:apc");
    assert_eq!(ObjectName::db("main").as_str(), "db:main");
}

/// Differential harness for the two scalar PHP engines: an in-memory
/// backend that records every state and nondeterminism call, so the
/// register VM and the retained stack VM can be compared on outputs,
/// replay digests, *and* the exact state-op sequence they issue.
mod vm_diff {
    use orochi::php::backend::{BackendError, DbResult, NondetProvider, StateBackend};
    use std::collections::HashMap;

    #[derive(Default)]
    pub struct RecordingBackend {
        regs: HashMap<String, Vec<u8>>,
        kv: HashMap<String, Vec<u8>>,
        /// Every backend call, in issue order.
        pub ops: Vec<String>,
        ticks: i64,
    }

    impl StateBackend for RecordingBackend {
        fn register_read(&mut self, object: &str) -> Result<Option<Vec<u8>>, BackendError> {
            self.ops.push(format!("reg_read {object}"));
            Ok(self.regs.get(object).cloned())
        }
        fn register_write(&mut self, object: &str, value: Vec<u8>) -> Result<(), BackendError> {
            self.ops.push(format!("reg_write {object} {value:?}"));
            self.regs.insert(object.to_string(), value);
            Ok(())
        }
        fn kv_get(&mut self, object: &str, key: &str) -> Result<Option<Vec<u8>>, BackendError> {
            self.ops.push(format!("kv_get {object} {key}"));
            Ok(self.kv.get(&format!("{object}\u{0}{key}")).cloned())
        }
        fn kv_set(
            &mut self,
            object: &str,
            key: &str,
            value: Option<Vec<u8>>,
        ) -> Result<(), BackendError> {
            self.ops.push(format!("kv_set {object} {key} {value:?}"));
            let slot = format!("{object}\u{0}{key}");
            match value {
                Some(v) => {
                    self.kv.insert(slot, v);
                }
                None => {
                    self.kv.remove(&slot);
                }
            }
            Ok(())
        }
        fn db_begin(&mut self, _object: &str) -> Result<(), BackendError> {
            self.ops.push("db_begin".into());
            Err(BackendError::Fatal("no db in fuzz backend".into()))
        }
        fn db_query(&mut self, _object: &str, sql: &str) -> Result<DbResult, BackendError> {
            self.ops.push(format!("db_query {sql}"));
            Err(BackendError::Fatal("no db in fuzz backend".into()))
        }
        fn db_commit(&mut self, _object: &str) -> Result<bool, BackendError> {
            self.ops.push("db_commit".into());
            Err(BackendError::Fatal("no db in fuzz backend".into()))
        }
        fn db_rollback(&mut self, _object: &str) -> Result<(), BackendError> {
            self.ops.push("db_rollback".into());
            Err(BackendError::Fatal("no db in fuzz backend".into()))
        }
        fn in_txn(&self) -> bool {
            false
        }
    }

    impl NondetProvider for RecordingBackend {
        fn time(&mut self) -> Result<i64, BackendError> {
            self.ticks += 1;
            self.ops.push(format!("time {}", self.ticks));
            Ok(1_500_000_000 + self.ticks)
        }
        fn microtime(&mut self) -> Result<f64, BackendError> {
            self.ticks += 1;
            self.ops.push(format!("microtime {}", self.ticks));
            Ok(self.ticks as f64 * 0.125)
        }
        fn getpid(&mut self) -> Result<i64, BackendError> {
            self.ops.push("getpid".into());
            Ok(1234)
        }
        fn mt_rand(&mut self) -> Result<i64, BackendError> {
            self.ticks += 1;
            self.ops.push(format!("mt_rand {}", self.ticks));
            Ok(self.ticks.wrapping_mul(2654435761) & 0x7fff_ffff)
        }
        fn uniqid(&mut self) -> Result<String, BackendError> {
            self.ticks += 1;
            self.ops.push(format!("uniqid {}", self.ticks));
            Ok(format!("uid{:08x}", self.ticks))
        }
    }
}

/// Random expressions over the fuzz script's variable pool.
fn php_expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..40).prop_map(|i| i.to_string()),
        "[a-z]{0,4}".prop_map(|s| format!("'{s}'")),
        prop_oneof![Just("$a"), Just("$b"), Just("$c"), Just("$d")].prop_map(String::from),
        Just(String::from("$_GET['p']")),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..8).prop_map(|(l, r, i)| {
                let op = ["+", "-", "*", ".", "==", "<", "===", "!="][i];
                format!("({l} {op} {r})")
            }),
            inner.clone().prop_map(|e| format!("(!{e})")),
            inner.clone().prop_map(|e| format!("(({e}) % 7)")),
            inner.prop_map(|e| format!("strlen(strval({e}))")),
        ]
    })
}

/// Random statements: scalar and array assignments, control flow,
/// key-value and nondeterminism builtins, and user-function calls — the
/// surface where the two bytecode engines could plausibly diverge.
///
/// `depth` indexes the loop counter (`$i1`, `$i2`, ...) so nested loops
/// never share one: a shared counter can ping-pong forever, and a
/// runaway script dies on the step limit at an ISA-dependent branch
/// ordinal — a digest divergence by design, not a bug.
fn php_stmt_strategy(depth: u32) -> BoxedStrategy<String> {
    let var = || prop_oneof![Just("$a"), Just("$b"), Just("$c"), Just("$d")];
    let e = php_expr_strategy;
    let leaf = prop_oneof![
        (var(), e()).prop_map(|(v, x)| format!("{v} = {x};")),
        e().prop_map(|x| format!("echo {x};")),
        e().prop_map(|x| format!("$arr[] = {x};")),
        (e(), e()).prop_map(|(k, v)| format!("$arr[{k}] = {v};")),
        e().prop_map(|k| format!("echo isset($arr[{k}]) ? 'y' : 'n';")),
        e().prop_map(|k| format!("unset($arr[{k}]);")),
        (e(), e()).prop_map(|(k, v)| format!("apc_store('k' . (({k}) % 5), strval({v}));")),
        e().prop_map(|k| format!("$c = apc_fetch('k' . (({k}) % 5));")),
        Just(String::from("$d = time();")),
        Just(String::from("$d = mt_rand(0, 9);")),
        Just(String::from("$b = uniqid();")),
        (var(), e()).prop_map(|(v, x)| format!("{v} = fuzz_join({x}, $a);")),
        e().prop_map(|x| format!("echo count($arr) . {x};")),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let block =
        || proptest::collection::vec(php_stmt_strategy(depth - 1), 1..4).prop_map(|v| v.join(" "));
    prop_oneof![
        leaf,
        (php_expr_strategy(), block(), block())
            .prop_map(|(c, t, f)| format!("if ({c}) {{ {t} }} else {{ {f} }}")),
        (1usize..4, block()).prop_map(move |(n, b)| {
            format!("for ($i{depth} = 0; $i{depth} < {n}; $i{depth}++) {{ {b} }}")
        }),
        block().prop_map(|b| format!("foreach ($arr as $k => $v) {{ echo $k . ':'; {b} }}")),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The register-bytecode VM is observationally identical to the
    /// retained stack VM on fuzzed scripts: same verdict, same response
    /// (status, headers, body), same replay digest, and the same state-
    /// and nondet-op sequence against the backend. Instruction counts
    /// are *not* compared — the ISAs cost the same program differently
    /// by design.
    #[test]
    fn register_vm_matches_stack_oracle_on_fuzzed_scripts(
        stmts in proptest::collection::vec(php_stmt_strategy(2), 0..10),
        p in "[a-z0-9]{0,6}",
    ) {
        use orochi::php::vm::{self, RequestInput};
        use orochi::php::{compile, parse_script};

        let src = format!(
            "<?php\n\
             function fuzz_join($x, $y) {{\n\
                 return strval($x) . '|' . strval($y);\n\
             }}\n\
             $a = 1; $b = 'x'; $c = 0; $d = 2; $arr = array();\n\
             {}\n\
             echo '|' . strval($a) . '|' . strval($b) . '|' . strval($c) . '|' . strval($d);\n\
             foreach ($arr as $k => $v) {{ echo $k . '=' . strval($v) . ';'; }}\n",
            stmts.join("\n"),
        );
        let parsed = parse_script(&src).unwrap_or_else(|e| panic!("fuzz script parse: {e}\n{src}"));
        let script = compile("/fuzz.php", &parsed)
            .unwrap_or_else(|e| panic!("fuzz script compile: {e}\n{src}"));
        let input = RequestInput {
            method: "GET".into(),
            path: "/fuzz.php".into(),
            get: vec![("p".into(), p)],
            ..Default::default()
        };
        let mut reg_backend = vm_diff::RecordingBackend::default();
        let reg = vm::run_request(&script, &mut reg_backend, &input);
        let mut stack_backend = vm_diff::RecordingBackend::default();
        let stack = vm::stack::run_request(&script, &mut stack_backend, &input);
        match (&reg, &stack) {
            (Ok(r), Ok(s)) => {
                prop_assert_eq!(&r.output, &s.output, "outputs diverged\n{}", src);
                prop_assert_eq!(r.digest, s.digest, "digests diverged\n{}", src);
            }
            (Err(r), Err(s)) => prop_assert_eq!(r, s, "rejections diverged\n{}", src),
            (r, s) => prop_assert!(
                false,
                "verdicts diverged: register {:?} vs stack {:?}\n{}",
                r.as_ref().map(|_| "ok").map_err(|e| e.clone()),
                s.as_ref().map(|_| "ok").map_err(|e| e.clone()),
                src,
            ),
        }
        prop_assert_eq!(&reg_backend.ops, &stack_backend.ops, "state ops diverged\n{}", src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whole-audit differential over the evaluation applications: a
    /// served workload from any of the four apps audits to the same
    /// verdict under the register engine and the stack baseline, at one
    /// audit thread and pooled. Acceptance is the strong check — the
    /// server records with the register VM, so the stack group VM must
    /// reproduce the recorded outputs, state ops, and control-flow
    /// digests exactly (and vice versa) for the audit to pass.
    #[test]
    fn app_workloads_audit_identically_under_both_engines(
        app_idx in 0usize..4,
        seed in 0u64..64,
    ) {
        use orochi::accphp::VmEngine;
        use orochi::harness::driver::{
            run_audit_with, serve, AppWorkload, AuditOptions, ServeOptions,
        };
        use orochi::workload::{forum, hotcrp, shop, wiki};

        let work = match app_idx {
            0 => AppWorkload {
                app: orochi::apps::wiki::app(),
                workload: wiki::generate(&wiki::Params::scaled(0.004), seed),
                seed_sql: Vec::new(),
            },
            1 => AppWorkload {
                app: orochi::apps::forum::app(),
                workload: forum::generate(&forum::Params::scaled(0.004), seed),
                seed_sql: Vec::new(),
            },
            2 => AppWorkload {
                app: orochi::apps::shop::app(),
                workload: shop::generate(&shop::Params::scaled(0.004), seed),
                seed_sql: Vec::new(),
            },
            _ => AppWorkload {
                app: orochi::apps::hotcrp::app(),
                workload: hotcrp::generate(&hotcrp::Params::scaled(0.004), seed),
                seed_sql: Vec::new(),
            },
        };
        let served = serve(&work, &ServeOptions { seed, ..Default::default() });
        for threads in [1usize, 4] {
            let mut runs = Vec::new();
            for engine in [VmEngine::Register, VmEngine::Stack] {
                let opts = AuditOptions {
                    grouped: true,
                    dedup: true,
                    threads,
                    engine,
                };
                let run = run_audit_with(&served.bundle, &work, &opts)
                    .map(|r| r.outcome.stats.requests_reexecuted)
                    .map_err(|r| r.to_string());
                runs.push((engine, run));
            }
            prop_assert_eq!(
                &runs[0].1, &runs[1].1,
                "engines diverged at {} threads (app {})", threads, app_idx
            );
            prop_assert!(
                runs[0].1.is_ok(),
                "honest run rejected at {} threads (app {}): {:?}",
                threads, app_idx, runs[0].1
            );
        }
    }
}
